"""Run sweeps through the long-running service (``repro.service``).

The service wraps the experiment pipeline in a daemon: specs are
POSTed as JSON jobs, executed through the same caching executor stack
as ``api.run_experiment``, and served back from the store.  This
example boots a real server in-process (:class:`ServerThread` — the
same code path ``python -m repro serve`` runs) and demonstrates the
service's headline contracts:

* the served result is **byte-identical** to a local
  ``run_experiment`` on the same store;
* resubmitting a spec **dedups** onto the finished job — no cell is
  recomputed, even across a server restart (the job journal);
* an overlapping grid submitted later only computes the cells the
  first job never produced (store-backed per-cell dedup);
* per-cell progress streams as Server-Sent Events.

Run with::

    python examples/service_sweep.py
"""

import shutil
import tempfile

from repro import api
from repro.service import ServerThread, ServiceClient

SPEC = {
    "name": "service-sweep",
    "workloads": ["fib", "gcd"],
    "base": {"codec": "shared-dict", "decompression": "ondemand"},
    "axes": {"grid": {"k_compress": [1, 2, "inf"]}},
    "engine": "trace",
}

#: Overlaps SPEC in 2 of its 4 k-values per workload.
OVERLAPPING = {**SPEC, "name": "service-sweep-overlap",
               "axes": {"grid": {"k_compress": [2, "inf", 8]}}}


def main() -> None:
    root = tempfile.mkdtemp(prefix="repro-service-example-")
    try:
        with ServerThread(store=root) as server:
            client = ServiceClient(server.host, server.port)

            reply = client.submit(SPEC)
            print(f"submitted {reply['job']} "
                  f"({reply['cells']} cells) -> {reply['state']}")
            final = client.wait(reply["job"])
            assert final["state"] == "done", final
            progress = final["progress"]
            print(f"finished: {progress['done']}/{progress['total']} "
                  f"cells, {progress['computed']} computed")

            served = client.result(reply["job"])

            # Per-cell progress is also available as SSE.
            events = list(client.events(reply["job"]))
            assert len(events) == progress["total"] + 1  # + end frame
            print(f"SSE: {len(events) - 1} cell events, e.g. "
                  f"{events[0]['workload']}/{events[0]['label']} "
                  f"({events[0]['source']})")

            # Resubmitting is a dedup hit: same job, no recompute.
            again = client.submit(SPEC)
            assert again["deduped"] and again["job"] == reply["job"]
            print("resubmit deduplicated onto the finished job")

            # An overlapping grid only computes the unseen cells.
            overlap = client.submit(OVERLAPPING)
            done = client.wait(overlap["job"])
            assert done["state"] == "done", done
            print(f"overlapping grid: {done['progress']['hits']} from "
                  f"cache, {done['progress']['computed']} computed")
            assert done["progress"]["hits"] == 4          # 2 k's x 2 wl
            assert done["progress"]["computed"] == 2      # k=8 x 2 wl
            client.close()

        # The contract that makes the service trustworthy: the HTTP
        # body is byte-identical to a local run on the same store.
        local = api.run_experiment(
            api.ExperimentSpec.from_dict(SPEC), store=root
        )
        assert served == local.canonical_json()
        print("served result is byte-identical to local "
              "run_experiment: OK")
    finally:
        shutil.rmtree(root, ignore_errors=True)


if __name__ == "__main__":
    main()
