"""Quickstart: compress, simulate, and inspect one small program,
then sweep a parameter grid through the declarative ``repro.api``.

Run with::

    python examples/quickstart.py
"""

from repro import SimulationConfig, assemble, build_cfg, simulate
from repro import api

SOURCE = """
; sum the numbers 1..100, then post-process in a helper function
main:
    li   r1, 100            ; counter
    li   r2, 0              ; accumulator
loop:
    add  r2, r2, r1
    subi r1, r1, 1
    bne  r1, r0, loop
    call scale
    halt
scale:
    muli r3, r2, 2
    ret
"""


def main() -> None:
    program = assemble(SOURCE, "quickstart")

    # Look at the structure the compression strategy operates on.
    cfg = build_cfg(program)
    print(cfg.render())
    print()

    # The uncompressed baseline: full-size image, no overhead.
    baseline = simulate(
        program, SimulationConfig(decompression="none")
    )
    print(baseline.render())
    print()

    # The paper's scheme: on-demand decompression + k-edge compression.
    result = simulate(
        program,
        SimulationConfig(
            codec="shared-dict",
            decompression="ondemand",
            k_compress=2,
        ),
    )
    print(result.render())
    print()

    # Compression is transparent: same architectural results.
    assert result.registers == baseline.registers
    print(f"sum(1..100) * 2 = {result.registers[3]} (registers match "
          f"the uncompressed run)")
    print(f"peak memory: {result.peak_footprint} B vs "
          f"{baseline.peak_footprint} B uncompressed")
    print()

    # The declarative API: describe a grid once, get a ResultSet with
    # table helpers back (registered workloads can also run in
    # parallel processes — see examples/parallel_sweep.py).
    spec = api.ExperimentSpec(
        workloads=["fib", "gcd"],
        base={"codec": "shared-dict", "decompression": "ondemand",
              "trace_events": False, "record_trace": False},
        axes=api.grid(k_compress=[1, 4, "inf"]),
        engine="trace",
    )
    grid_result = api.run_experiment(spec)
    print(grid_result.pivot(
        value="cycle_overhead", cols="k_compress",
        title="cycle overhead by workload x k",
    ).render())


if __name__ == "__main__":
    main()
