"""Bring your own kernel: build a program with the builder API, trace the
compression events, and verify transparency against the uncompressed run.

Shows the lower-level APIs a systems researcher would script against:
``ProgramBuilder``, the event log, per-block compression stats, and the
footprint timeline.

Run with::

    python examples/custom_kernel.py
"""

from repro import ProgramBuilder, SimulationConfig, api, build_cfg
from repro.compress import measure_image, get_codec
from repro.isa import instructions as ins
from repro.runtime import EventKind


def build_program():
    """A two-phase kernel: a hot loop, then a cold post-processing tail."""
    b = ProgramBuilder("custom")
    b.label("main")
    b.emit(ins.li(1, 64), ins.li(2, 0))

    b.label("hot_loop")
    b.emit(
        ins.add(2, 2, 1),
        ins.andi(3, 1, 1),
        ins.beq(3, 0, "even"),
        ins.addi(2, 2, 3),
        ins.jmp("next"),
    )
    b.label("even")
    b.emit(ins.subi(2, 2, 1))
    b.label("next")
    b.emit(ins.subi(1, 1, 1), ins.bne(1, 0, "hot_loop"))

    # Cold tail: executed once; the k-edge policy recompresses the loop
    # blocks while this runs.
    b.label("cold_tail")
    for step in range(6):
        b.emit(
            ins.muli(4, 2, step + 2),
            ins.xori(4, 4, 0x55),
            ins.add(5, 5, 4),
        )
    b.emit(ins.mov(14, 5), ins.halt())
    return b.build()


def main() -> None:
    program = build_program()
    cfg = build_cfg(program)
    print(f"built '{program.name}': {len(program)} instructions, "
          f"{len(cfg.blocks)} basic blocks\n")

    # Static compressibility per block.
    stats = measure_image(cfg.blocks, get_codec("shared-dict"))
    print(f"static image: {stats.original_size} B -> "
          f"{stats.compressed_size} B "
          f"(ratio {stats.ratio:.2f})")

    # Uncompressed reference.
    _, baseline = api.run_instrumented(
        cfg, SimulationConfig(decompression="none")
    )

    # Compressed run with full event tracing; the live manager gives
    # access to the event log afterwards.
    manager, result = api.run_instrumented(
        cfg,
        SimulationConfig(
            decompression="pre-single", k_compress=3, k_decompress=2,
            trace_events=True,
        ),
    )

    assert result.registers == baseline.registers, "transparency violated!"
    print(f"result r14 = {result.registers[14]} (matches baseline)\n")

    print("first 20 compression events:")
    print(manager.log.render(limit=20))

    recompressions = manager.log.of_kind(EventKind.RECOMPRESS)
    print(f"\n{len(recompressions)} recompressions; "
          f"{result.counters.faults} faults; "
          f"overhead {result.cycle_overhead:.1%}; "
          f"avg footprint {result.average_footprint:.0f} B "
          f"of {cfg.total_size_bytes()} B uncompressed")

    print("\nfootprint timeline (cycle, bytes):")
    samples = result.footprint.samples
    step = max(1, len(samples) // 10)
    for cycle, footprint in samples[::step]:
        print(f"  @{cycle:>7}  {footprint:>5} B")


if __name__ == "__main__":
    main()
