"""Scratchpad-budget scenario: run an application under a hard memory cap.

The paper's Section 2: in a system with a fixed scratchpad, "check before
each basic block decompression whether this decompression could result in
exceeding the maximum allowable memory space consumption, and if so,
compress one of the decompressed basic blocks (LRU)".

This example sweeps the cap for the composite application and shows the
memory/overhead trade-off a system integrator would look at when sizing
an SRAM.

Run with::

    python examples/scratchpad_budget.py
"""

from repro import SimulationConfig, api, build_cfg
from repro.analysis import Table, percent
from repro.core.manager import CodeCompressionManager
from repro.workloads import get_workload


def main() -> None:
    workload = get_workload("composite")
    cfg = build_cfg(workload.program)

    probe = CodeCompressionManager(
        cfg, SimulationConfig(trace_events=False)
    )
    compressed = probe.image.compressed_image_size
    uncompressed = cfg.total_size_bytes()
    print(
        f"'{workload.name}': {uncompressed} B of code, compresses to "
        f"{compressed} B ({compressed / uncompressed:.0%})"
    )
    print(
        "sweeping the scratchpad size from 'barely fits' up to "
        "'everything fits':\n"
    )

    largest = max(block.size_bytes for block in cfg.blocks)
    table = Table(
        "scratchpad sizing (LRU eviction, on-demand decompression)",
        ["budget_bytes", "peak_used", "evictions", "faults",
         "cycle_overhead"],
    )
    floor = compressed + 2 * largest + 16
    for budget in (floor, floor + 100, floor + 250, floor + 500,
                   uncompressed + compressed):
        # One validated cell through the repro.api facade.
        run = api.run_cell(
            workload,
            SimulationConfig(
                decompression="ondemand",
                k_compress=None,       # rely on evictions only
                memory_budget=budget,
                eviction="lru",
                trace_events=False,
                record_trace=False,
            ),
            cfg=cfg,
        )
        assert run.ok, run.validation
        result = run.result
        table.add_row(
            budget,
            int(result.peak_footprint),
            int(result.counters.evictions),
            int(result.counters.faults),
            percent(result.cycle_overhead),
        )
    print(table.render())
    print(
        "\nreading: a scratchpad about half the uncompressed code size "
        "runs with modest slowdown; squeezing it to the compressed floor "
        "trades memory for eviction churn."
    )


if __name__ == "__main__":
    main()
