"""Parallel design-space exploration with the declarative API.

The same :class:`repro.api.ExperimentSpec` can run serially or fan out
across worker processes (one task per workload partition) — the result
is guaranteed identical, so parallelism is purely a wall-clock decision.
This example runs the paper's k-edge grid over several workloads both
ways, checks the equality, and writes the versioned result JSON + CSV.

The same grid as a JSON spec file lives at
``examples/specs/kedge_grid.json``; run it from the CLI with::

    python -m repro exp --spec examples/specs/kedge_grid.json --jobs 4

Run this script with::

    python examples/parallel_sweep.py
"""

import os
import tempfile

from repro import api


def main() -> None:
    spec = api.ExperimentSpec(
        name="parallel-kedge-grid",
        workloads=["composite", "cold_paths", "fsm", "dijkstra"],
        base={"codec": "shared-dict", "decompression": "ondemand"},
        axes=api.grid(k_compress=[1, 2, 4, 8, 16, "inf"]),
        engine="trace",
    )
    print(f"grid: {len(spec.cells())} cells over "
          f"{len(spec.workload_names())} workloads\n")

    serial = api.run_experiment(spec, executor="serial")
    # Worker processes, not cores: jobs > 1 engages the parallel
    # executor even on small machines (transparency is the point here;
    # wall-clock wins scale with real cores).
    parallel = api.run_experiment(spec, jobs=max(2, os.cpu_count() or 1))
    for result in (serial, parallel):
        meta = result.meta
        print(f"{meta['executor']:8s} (jobs={meta['jobs']}): "
              f"{meta['timing']['elapsed_s']:.2f}s")

    # Executors are result-transparent: same cells, same metrics, same
    # serialised JSON once the execution-provenance block is dropped.
    assert serial.to_dict(include_execution=False) == \
        parallel.to_dict(include_execution=False)
    print("\nserial and parallel results are identical "
          f"(schema v{api.SCHEMA_VERSION})\n")

    print(parallel.pivot(
        value="average_saving", cols="k_compress",
        title="average memory saving by workload x k",
        fmt=lambda v: f"{v * 100:.1f}%",
    ).render())

    out_dir = tempfile.mkdtemp(prefix="repro-results-")
    json_path = os.path.join(out_dir, "kedge_grid.json")
    csv_path = os.path.join(out_dir, "kedge_grid.csv")
    parallel.to_json(json_path)
    parallel.to_csv(csv_path)
    print(f"\nresults written to {json_path} and {csv_path}")


if __name__ == "__main__":
    main()
