"""Persistent caching and resumable sweeps with ``repro.store``.

Every cell of an experiment grid has a deterministic fingerprint over
(code version, workload program bytes, full config, engine).  Passing
``store=DIR`` to :func:`repro.api.run_experiment` wraps the executor in
the :class:`~repro.store.executor.CachingExecutor`: results land in a
content-addressed on-disk store, and re-running the same spec — today,
tomorrow, from another process — only computes cells the store has not
seen.  This example demonstrates the three headline behaviours:

* a warm re-run computes **zero** cells and is byte-identical to the
  cold run;
* an **interrupted** sweep resumes: a later, larger spec only computes
  the cells the first (partial) run never produced;
* changing anything that matters (here: k) misses the cache instead of
  serving a stale result.

Run with::

    python examples/cached_sweep.py
"""

import shutil
import tempfile

from repro import api


def cache_line(result) -> str:
    cache = result.meta["cache"]
    return (f"{cache['hits']} hit(s), {cache['misses']} miss(es) "
            f"in {result.meta['timing']['elapsed_s']:.2f}s")


def main() -> None:
    store = tempfile.mkdtemp(prefix="repro-store-example-")
    try:
        spec = api.ExperimentSpec(
            name="cached-kedge-grid",
            workloads=["composite", "fsm"],
            base={"codec": "shared-dict", "decompression": "ondemand"},
            axes=api.grid(k_compress=[1, 4, "inf"]),
            engine="trace",
        )

        cold = api.run_experiment(spec, store=store)
        print(f"cold run : {cache_line(cold)}")
        warm = api.run_experiment(spec, store=store)
        print(f"warm run : {cache_line(warm)}")
        assert warm.meta["cache"]["misses"] == 0
        assert warm.canonical_json() == cold.canonical_json(), \
            "a fully cached run must be byte-identical to a cold one"

        # Resume: a larger grid over the same base computes only the
        # new k points; the six cached cells are served from disk.
        larger = api.ExperimentSpec(
            name="cached-kedge-grid",
            workloads=["composite", "fsm"],
            base={"codec": "shared-dict", "decompression": "ondemand"},
            axes=api.grid(k_compress=[1, 2, 4, 8, "inf"]),
            engine="trace",
        )
        resumed = api.run_experiment(larger, store=store)
        print(f"resumed  : {cache_line(resumed)} "
              f"({len(resumed)} cells)")
        assert resumed.meta["cache"]["hits"] == len(cold)
        assert resumed.meta["cache"]["misses"] == \
            len(resumed) - len(cold)

        print()
        print(resumed.pivot(
            value="average_saving", cols="k_compress",
            title="average memory saving by workload x k (from cache "
                  "+ fresh cells)",
            fmt=lambda v: f"{v * 100:.1f}%",
        ).render())
        print("\ncached sweep example OK")
    finally:
        shutil.rmtree(store, ignore_errors=True)


if __name__ == "__main__":
    main()
