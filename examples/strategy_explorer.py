"""Strategy explorer: the paper's Figure 3 design space on your workload.

Runs one workload (default: the FSM tokenizer) through every point of the
decompression design space x a k-edge sweep and prints the memory /
performance landscape, so you can pick an operating point for a target.

Run with::

    python examples/strategy_explorer.py [workload]
"""

import sys

from repro import SimulationConfig, api
from repro.analysis import Table, percent
from repro.workloads import available_workloads, get_workload


def explore(name: str) -> None:
    workload = get_workload(name)
    print(f"workload: {name} — {workload.description}\n")

    configs = []
    for k_compress in (2, 8, 32):
        configs.append(
            SimulationConfig(
                decompression="ondemand", k_compress=k_compress,
                label=f"ondemand/k={k_compress}",
            )
        )
        for strategy in ("pre-all", "pre-single"):
            configs.append(
                SimulationConfig(
                    decompression=strategy, k_compress=k_compress,
                    k_decompress=2,
                    label=f"{strategy}/k={k_compress}",
                )
            )
    result = api.run_grid([workload], configs)
    failures = result.failures()
    assert not failures, failures[0].validation

    table = Table(
        f"design space for '{name}' (shared-dict codec)",
        ["strategy", "avg_saving", "peak_saving", "overhead",
         "stall_cycles", "prediction_accuracy"],
    )
    best_memory, best_speed = None, None
    for run in result.runs:
        r = run.result
        table.add_row(
            run.config.label,
            percent(r.average_saving), percent(r.peak_saving),
            percent(r.cycle_overhead), int(r.counters.stall_cycles),
            percent(r.counters.prediction_accuracy)
            if r.counters.predictions else "-",
        )
        if best_memory is None or r.average_saving > \
                best_memory[1].average_saving:
            best_memory = (run.config.label, r)
        if best_speed is None or r.cycle_overhead < \
                best_speed[1].cycle_overhead:
            best_speed = (run.config.label, r)
    print(table.render())
    print(f"\nmost memory saved : {best_memory[0]} "
          f"({percent(best_memory[1].average_saving)})")
    print(f"lowest overhead   : {best_speed[0]} "
          f"({percent(best_speed[1].cycle_overhead)})")


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "fsm"
    if name not in available_workloads():
        print(f"unknown workload '{name}'; "
              f"available: {', '.join(available_workloads())}")
        raise SystemExit(1)
    explore(name)


if __name__ == "__main__":
    main()
