"""Fast design-space exploration with trace-driven simulation.

Records one uncompressed execution trace, then replays it through many
configurations (k values x strategies) — the compression metrics are
bit-identical to full simulation, but the sweep runs much faster because
instructions are not re-interpreted.  Finishes with an ASCII footprint
timeline of the chosen operating point and the Section 2 energy numbers.

Run with::

    python examples/trace_sweep.py [workload]
"""

import sys
import time

from repro import SimulationConfig, build_cfg
from repro.analysis import EnergyModel, Table, percent, plot_timeline
from repro.core.manager import CodeCompressionManager
from repro.runtime import simulate_trace
from repro.workloads import available_workloads, get_workload


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "composite"
    if name not in available_workloads():
        print(f"unknown workload '{name}'; "
              f"available: {', '.join(available_workloads())}")
        raise SystemExit(1)
    workload = get_workload(name)
    cfg = build_cfg(workload.program)

    # 1. One full (interpreting) run records the trace.
    started = time.perf_counter()
    base = CodeCompressionManager(
        cfg,
        SimulationConfig(decompression="none", trace_events=False,
                         record_trace=True),
    ).run()
    trace_time = time.perf_counter() - started
    print(f"recorded trace: {len(base.block_trace)} block entries "
          f"({trace_time * 1000:.0f} ms)\n")

    # 2. Replay the trace across the design space.
    table = Table(
        f"trace-driven sweep for '{name}'",
        ["strategy", "k", "avg_saving", "overhead", "energy_nj"],
    )
    model = EnergyModel()
    best = None
    started = time.perf_counter()
    runs = 0
    for strategy in ("ondemand", "pre-all", "pre-single"):
        for k in (1, 2, 4, 8, 16, 32):
            result = simulate_trace(
                cfg, base.block_trace,
                SimulationConfig(
                    decompression=strategy, k_compress=k,
                    k_decompress=2, trace_events=False,
                    record_trace=False,
                ),
            )
            runs += 1
            table.add_row(
                strategy, k, percent(result.average_saving),
                percent(result.cycle_overhead),
                round(model.total_energy(result)),
            )
            # pick the best memory saving under 2x slowdown
            if result.cycle_overhead < 1.0 and (
                best is None
                or result.average_saving > best[2].average_saving
            ):
                best = (strategy, k, result)
    sweep_time = time.perf_counter() - started
    print(table.render())
    print(f"\n{runs} configurations replayed in "
          f"{sweep_time * 1000:.0f} ms "
          f"({sweep_time / runs * 1000:.1f} ms each)")

    # 3. Inspect the chosen operating point.
    if best is not None:
        strategy, k, result = best
        print(f"\nchosen operating point: {strategy}, k={k} "
              f"(saving {percent(result.average_saving)}, "
              f"overhead {percent(result.cycle_overhead)})\n")
        print(plot_timeline(
            result.footprint, width=64, height=8,
            title=f"code memory footprint over time ({strategy}, k={k})",
        ))


if __name__ == "__main__":
    main()
