"""Fast design-space exploration with the declarative experiment API.

One :class:`repro.api.ExperimentSpec` describes the whole design space
(strategies x k values); the trace engine interprets each workload once
and replays the recorded block trace through every other configuration —
the compression metrics are bit-identical to full simulation, but the
sweep runs much faster because instructions are not re-interpreted.
Finishes with an ASCII footprint timeline of the chosen operating point
and the Section 2 energy numbers.

Run with::

    python examples/trace_sweep.py [workload]
"""

import sys

from repro import api
from repro.analysis import EnergyModel, Table, percent, plot_timeline
from repro.workloads import available_workloads


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "composite"
    if name not in available_workloads():
        print(f"unknown workload '{name}'; "
              f"available: {', '.join(available_workloads())}")
        raise SystemExit(1)

    # 1. Describe the grid declaratively: 3 strategies x 6 k values.
    spec = api.ExperimentSpec(
        name=f"trace-sweep/{name}",
        workloads=[name],
        base={"k_decompress": 2, "trace_events": False,
              "record_trace": False},
        axes=api.grid(
            decompression=["ondemand", "pre-all", "pre-single"],
            k_compress=[1, 2, 4, 8, 16, 32],
        ),
        engine="trace",
    )

    # 2. Execute it: the first cell records the block trace, the other
    #    cells replay it.
    result = api.run_experiment(spec)
    elapsed = result.meta["timing"]["elapsed_s"]
    print(f"{len(result.runs)} configurations via the trace engine in "
          f"{elapsed * 1000:.0f} ms "
          f"({elapsed / len(result.runs) * 1000:.1f} ms each)\n")

    table = Table(
        f"trace-driven sweep for '{name}'",
        ["strategy", "k", "avg_saving", "overhead", "energy_nj"],
    )
    model = EnergyModel()
    best = None
    for run in result.runs:
        r = run.result
        table.add_row(
            run.config.decompression, run.config.k_compress,
            percent(r.average_saving), percent(r.cycle_overhead),
            round(model.total_energy(r)),
        )
        # pick the best memory saving under 2x slowdown
        if r.cycle_overhead < 1.0 and (
            best is None
            or r.average_saving > best.result.average_saving
        ):
            best = run
    print(table.render())

    # 3. Inspect the chosen operating point.
    if best is not None:
        strategy = best.config.decompression
        k = best.config.k_compress
        r = best.result
        print(f"\nchosen operating point: {strategy}, k={k} "
              f"(saving {percent(r.average_saving)}, "
              f"overhead {percent(r.cycle_overhead)})\n")
        print(plot_timeline(
            r.footprint, width=64, height=8,
            title=f"code memory footprint over time ({strategy}, k={k})",
        ))


if __name__ == "__main__":
    main()
