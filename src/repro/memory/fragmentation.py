"""Fragmentation measurement helpers (experiment E8).

The paper's Section 5 design is motivated by fragmentation avoidance; this
module turns allocator state into the summary numbers the E8 benchmark
reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .allocator import FreeListAllocator


@dataclass(frozen=True)
class FragmentationReport:
    """Point-in-time fragmentation summary of an allocator."""

    used_bytes: int
    free_bytes: int
    extent_bytes: int
    hole_count: int
    largest_hole: int
    external_fragmentation: float

    @property
    def occupancy(self) -> float:
        """Used fraction of the touched address space."""
        if self.extent_bytes == 0:
            return 1.0
        return self.used_bytes / self.extent_bytes


def snapshot(allocator: FreeListAllocator) -> FragmentationReport:
    """Capture a :class:`FragmentationReport` from ``allocator`` now."""
    return FragmentationReport(
        used_bytes=allocator.used_bytes,
        free_bytes=allocator.free_bytes,
        extent_bytes=allocator.extent_bytes,
        hole_count=allocator.hole_count,
        largest_hole=allocator.largest_hole,
        external_fragmentation=allocator.external_fragmentation(),
    )


class FragmentationTimeline:
    """Collects fragmentation snapshots over a run and aggregates them."""

    def __init__(self) -> None:
        self.samples: List[FragmentationReport] = []

    def record(self, allocator: FreeListAllocator) -> None:
        """Append a snapshot of ``allocator``."""
        self.samples.append(snapshot(allocator))

    @property
    def peak_hole_count(self) -> int:
        """Maximum simultaneous hole count seen."""
        return max((s.hole_count for s in self.samples), default=0)

    @property
    def mean_external_fragmentation(self) -> float:
        """Average external fragmentation across samples."""
        if not self.samples:
            return 0.0
        return sum(s.external_fragmentation for s in self.samples) / len(
            self.samples
        )

    @property
    def peak_extent(self) -> int:
        """Largest address-space extent seen."""
        return max((s.extent_bytes for s in self.samples), default=0)
