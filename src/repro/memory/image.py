"""Code memory images: the paper's separate-area scheme and an in-place
alternative.

Section 5 of the paper: "we start with a memory image wherein all basic
blocks are stored in their compressed form.  Note that this is the minimum
memory that is required to store the application code."  Decompressed copies
go to "a separate location" while "the locations of the compressed blocks do
not change during execution", so deleting a decompressed copy is cheap and
the free space does not fragment the compressed area.

:class:`SeparateAreaImage` implements exactly that scheme.
:class:`InPlaceImage` implements the naive alternative the paper argues
against (blocks expand/contract in a single area), so experiment E8 can
measure the fragmentation difference.
"""

from __future__ import annotations

import abc
import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..cfg.builder import ProgramCFG
from ..compress.codec import (
    Codec,
    CodecError,
    compress_for_image,
    decompress_for_image,
    get_codec,
)
from ..compress.stats import block_bytes
from ..obs.tracer import NULL_TRACER
from .allocator import AllocationError, FreeListAllocator


@dataclass
class CompressionArtifacts:
    """Immutable per-(CFG, codec) compression products, shared by every
    simulation that uses the same program and codec.

    Block bytes never change during a simulation and codecs are
    deterministic, so the encoded block bytes, the trained codec model,
    the compressed payloads, and the decompressed plaintexts are all pure
    functions of (CFG, codec name).  Parameter sweeps construct one
    manager — and therefore one code image — per grid cell; without this
    cache every cell re-trains the codec and re-compresses every block
    from scratch.

    ``plaintext`` memoizes decompressed block bytes on first fault so
    repeated faults on the same unit (within a run or across grid cells)
    never re-run the codec.

    ``codec_map`` (optional) is the mixed-codec view built by
    :func:`repro.selection.assignment.assignment_artifacts`: a per-block
    codec instance overriding ``codec`` for payload decode dispatch.
    When absent, every block uses ``codec`` — the uniform case.
    """

    codec: Codec
    block_data: List[bytes]
    payloads: List[bytes]
    plaintext: Dict[int, bytes] = field(default_factory=dict)
    codec_map: Optional[Dict[int, Codec]] = None
    #: Memoized per-unit decode timing/geometry, shared across every
    #: manager built from these artifacts.  Keyed on
    #: ``(granularity, hierarchy name)`` — the two axes unit geometry
    #: and fill costs depend on besides the codec itself (``codec_map``
    #: dispatch is baked into the values, so mixed-codec images benefit
    #: too).  Values are ``unit -> (alloc_bytes, fill_cycles,
    #: read_bytes, block_count, blocks_sorted)`` dicts built lazily by
    #: :meth:`repro.core.residency.ResidencySubsystem.replay_geometry`.
    unit_timing: Dict[Tuple[str, str], Dict[int, tuple]] = field(
        default_factory=dict
    )


class ArtifactCache:
    """A bounded LRU over (CFG, codec name) -> artifacts.

    The in-process memo used to grow without limit over long grid runs
    (one entry per program x codec, each holding every compressed
    payload and decompressed plaintext).  This cache caps the entry
    count: least-recently-used (CFG, codec) pairs are dropped and simply
    rebuilt on the next request.  Entries hold their CFG weakly, so a
    dead CFG's artifacts leave the cache immediately rather than waiting
    to age out.
    """

    def __init__(self, capacity: int = 32) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        # key -> (weakref to the cfg, artifacts); keys use id() with the
        # weakref guarding against id reuse after a CFG dies.
        self._entries: "OrderedDict[Tuple[int, str], Tuple[weakref.ref, CompressionArtifacts]]" = (
            OrderedDict()
        )
        # The process-wide instance is shared by the sweep service's
        # worker threads; OrderedDict reordering is not atomic, so all
        # mutation goes through this lock.
        self._mutex = threading.Lock()

    @property
    def capacity(self) -> int:
        """Maximum number of (CFG, codec) entries kept."""
        return self._capacity

    def set_capacity(self, capacity: int) -> None:
        """Resize the cache, evicting LRU entries if it shrank."""
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        with self._mutex:
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)

    def get(
        self, cfg: ProgramCFG, codec_name: str
    ) -> Optional[CompressionArtifacts]:
        """The cached artifacts, refreshed as most-recently used."""
        key = (id(cfg), codec_name)
        with self._mutex:
            entry = self._entries.get(key)
            if entry is None:
                return None
            ref, artifacts = entry
            if ref() is not cfg:  # id reused by a different (new) CFG
                del self._entries[key]
                return None
            self._entries.move_to_end(key)
            return artifacts

    def put(
        self,
        cfg: ProgramCFG,
        codec_name: str,
        artifacts: CompressionArtifacts,
    ) -> None:
        """Insert/refresh an entry, evicting LRU entries over capacity."""
        key = (id(cfg), codec_name)

        def _drop(_ref: weakref.ref, key=key) -> None:
            self._entries.pop(key, None)

        with self._mutex:
            self._entries[key] = (weakref.ref(cfg, _drop), artifacts)
            self._entries.move_to_end(key)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry (long-lived processes reclaim memory now)."""
        with self._mutex:
            self._entries.clear()


#: The process-wide shared-artifact memo (see :class:`ArtifactCache`).
_ARTIFACTS = ArtifactCache()


def artifact_cache() -> ArtifactCache:
    """The process-wide (CFG, codec) artifact memo, for capacity tuning
    and explicit :meth:`ArtifactCache.clear` calls."""
    return _ARTIFACTS


#: Optional persistent artifact provider (installed by ``repro.store``):
#: an object with ``load(codec_name, block_data) -> payloads | None``
#: and ``save(codec_name, block_data, payloads)``.  Lets a fresh process
#: reuse compressed payloads another process already built.
_artifact_provider = None


def set_artifact_provider(provider):
    """Install (or with None, remove) the persistent artifact provider.

    Returns the previously installed provider so callers can restore it.
    """
    global _artifact_provider
    previous = _artifact_provider
    _artifact_provider = provider
    return previous


def compression_artifacts(
    cfg: ProgramCFG, codec_name: str
) -> CompressionArtifacts:
    """Return (building on first use) the shared artifacts for
    ``(cfg, codec_name)``.

    The returned codec instance is trained (for shared-model codecs) and
    must be treated as read-only; the payload list is indexed by block
    id.  Lookup order: the in-process LRU memo, then the persistent
    provider (when installed), then a full train-and-compress build —
    whose payloads are offered back to the provider, best-effort.
    """
    artifacts = _ARTIFACTS.get(cfg, codec_name)
    if artifacts is not None:
        return artifacts
    codec = get_codec(codec_name)
    block_data = [block_bytes(block) for block in cfg.blocks]
    # Shared-model codecs must train either way: the trained model is
    # needed to *decompress*, whatever produced the payloads.
    if hasattr(codec, "train") and not getattr(codec, "is_trained", True):
        codec.train(block_data)
    payloads = None
    provider = _artifact_provider
    if provider is not None:
        try:
            payloads = provider.load(codec_name, block_data)
        except Exception:
            payloads = None
    if payloads is None:
        payloads = [
            compress_for_image(codec, data) for data in block_data
        ]
        if provider is not None:
            try:
                provider.save(codec_name, block_data, payloads)
            except Exception:
                pass  # persistence is best-effort, never fatal
    artifacts = CompressionArtifacts(
        codec=codec, block_data=block_data, payloads=payloads
    )
    _ARTIFACTS.put(cfg, codec_name, artifacts)
    return artifacts


class ImageError(RuntimeError):
    """Raised on invalid image operations (double decompress, etc.)."""


class CompressedCodeFault(Exception):
    """The memory-protection exception of Section 5.

    Raised when the execution thread fetches from a block that has no
    decompressed copy; the simulator's exception handler reacts by
    decompressing the block (on-demand decompression).
    """

    def __init__(self, block_id: int) -> None:
        super().__init__(f"fetch from compressed block B{block_id}")
        self.block_id = block_id


@dataclass
class BlockImage:
    """Per-block storage state inside a code image."""

    block_id: int
    compressed_payload: bytes
    compressed_addr: int
    uncompressed_size: int
    resident_addr: Optional[int] = None

    @property
    def compressed_size(self) -> int:
        """Size of the compressed payload in bytes."""
        return len(self.compressed_payload)

    @property
    def is_resident(self) -> bool:
        """True when a decompressed copy currently exists."""
        return self.resident_addr is not None


class CodeImage(abc.ABC):
    """Interface shared by the two image schemes.

    Passing precomputed ``artifacts`` (see :func:`compression_artifacts`)
    skips per-image codec training and block compression and shares the
    decompressed-bytes memo across every image built for the same
    (CFG, codec) pair — the sweep fast path.

    Mixed-codec images (per-unit codec assignment) are built from
    artifacts carrying a ``codec_map``; :meth:`codec_for` dispatches
    every per-block decode/latency/verify to the block's own codec, and
    the shared-model overhead is charged once per *distinct* codec in
    use instead of once for the uniform codec.  Mapped codecs must
    arrive trained (the artifact builders guarantee this).
    """

    def __init__(
        self,
        cfg: ProgramCFG,
        codec: Codec,
        artifacts: Optional[CompressionArtifacts] = None,
    ) -> None:
        self.cfg = cfg
        self.codec = codec
        self.blocks: List[BlockImage] = []
        self.decompress_count = 0
        self.release_count = 0
        # Armed by the residency subsystem when a run is traced; the
        # null default keeps block_data's hot path to one attribute
        # check on the (rare) memo-miss branch only.
        self.tracer = NULL_TRACER
        self._artifacts = artifacts
        self._plaintext = artifacts.plaintext if artifacts else {}
        self._codec_map = artifacts.codec_map if artifacts else None
        # Payload sizes never change after construction; the image-size
        # sums below are cached on first use (footprint_bytes queries
        # them on every materialise/release).
        self._compressed_image_size: Optional[int] = None
        self._uncompressed_image_size: Optional[int] = None
        # Shared-model codecs (CodePack-style) train on the whole image
        # at link time; the model's size is charged once per distinct
        # codec storing payloads, below.
        if hasattr(codec, "train") and not getattr(
            codec, "is_trained", True
        ):
            codec.train([block_bytes(block) for block in cfg.blocks])
        if self._codec_map is not None:
            # One model per *distinct codec name* (flat or canonical
            # pipeline spec): two instances of the same trained codec
            # would share one decoder model in a real image, while two
            # pipelines differing only in parameters are distinct
            # models and both charge.
            distinct = {
                getattr(c, "name", repr(c)): c
                for c in self._codec_map.values()
            }
            self.model_overhead = sum(
                int(getattr(c, "model_overhead_bytes", 0))
                for c in distinct.values()
            )
        else:
            self.model_overhead = int(
                getattr(codec, "model_overhead_bytes", 0)
            )

    def codec_for(self, block_id: int) -> Codec:
        """The codec that owns ``block_id``'s payload (mixed-codec
        images dispatch per block; uniform images return the one codec)."""
        if self._codec_map is not None:
            return self._codec_map[block_id]
        return self.codec

    def _payload(self, block) -> bytes:
        """Compressed payload for ``block`` (precomputed when shared)."""
        if self._artifacts is not None:
            return self._artifacts.payloads[block.block_id]
        return compress_for_image(self.codec, block_bytes(block))

    # -- abstract -------------------------------------------------------

    @abc.abstractmethod
    def decompress(self, block_id: int) -> int:
        """Materialise a decompressed copy; returns its address.

        Raises :class:`ImageError` if already resident and
        :class:`~repro.memory.allocator.AllocationError` when the area is
        bounded and full.
        """

    @abc.abstractmethod
    def release(self, block_id: int) -> int:
        """Delete the decompressed copy; returns the freed byte count."""

    @property
    @abc.abstractmethod
    def footprint_bytes(self) -> int:
        """Bytes of memory currently holding code (the paper's metric)."""

    @property
    @abc.abstractmethod
    def address_space_bytes(self) -> int:
        """Bytes of contiguous address space consumed, holes included."""

    # -- shared ---------------------------------------------------------

    def block(self, block_id: int) -> BlockImage:
        """Storage state of ``block_id``."""
        return self.blocks[block_id]

    def is_resident(self, block_id: int) -> bool:
        """True when ``block_id`` has a decompressed copy."""
        return self.blocks[block_id].is_resident

    def fetch_check(self, block_id: int) -> None:
        """Raise :class:`CompressedCodeFault` when fetching compressed code."""
        if not self.is_resident(block_id):
            raise CompressedCodeFault(block_id)

    def resident_blocks(self) -> Set[int]:
        """Ids of all currently decompressed blocks."""
        return {b.block_id for b in self.blocks if b.is_resident}

    def resident_bytes(self) -> int:
        """Total uncompressed bytes of resident copies."""
        return sum(
            b.uncompressed_size for b in self.blocks if b.is_resident
        )

    @property
    def compressed_image_size(self) -> int:
        """Total compressed payload bytes (plus the shared codec model,
        if any) — the paper's minimum image."""
        if self._compressed_image_size is None:
            self._compressed_image_size = (
                sum(len(b.compressed_payload) for b in self.blocks)
                + self.model_overhead
            )
        return self._compressed_image_size

    @property
    def uncompressed_image_size(self) -> int:
        """Total uncompressed code bytes — the no-compression image."""
        if self._uncompressed_image_size is None:
            self._uncompressed_image_size = sum(
                b.uncompressed_size for b in self.blocks
            )
        return self._uncompressed_image_size

    @property
    def compression_ratio(self) -> float:
        """Whole-image compressed/uncompressed ratio."""
        total = self.uncompressed_image_size
        if total == 0:
            return 1.0
        return self.compressed_image_size / total

    def decompress_latency(self, block_id: int) -> int:
        """Modelled cycles to decompress ``block_id`` (with its own
        codec, under a mixed-codec assignment)."""
        return self.codec_for(block_id).costs.decompress_latency(
            self.blocks[block_id].uncompressed_size
        )

    def block_data(self, block_id: int) -> bytes:
        """Decompressed bytes of ``block_id``'s payload, memoized.

        Payloads are immutable for the lifetime of an image, so the codec
        runs at most once per block — repeated faults on the same unit
        (and, when the image was built from shared artifacts, the same
        block in other grid cells of a sweep) are served from the memo.
        Use :meth:`verify_block` for integrity checks; this accessor
        trusts the cache.
        """
        data = self._plaintext.get(block_id)
        if data is None:
            block = self.blocks[block_id]
            codec = self.codec_for(block_id)
            data = decompress_for_image(
                codec, block.compressed_payload,
                block.uncompressed_size,
            )
            self._plaintext[block_id] = data
            if self.tracer.enabled:
                self.tracer.decode(
                    block_id, getattr(codec, "name", "?"), len(data)
                )
        return data

    def verify_block(self, block_id: int) -> bool:
        """Check payload integrity: decompressing yields the block bytes.

        Returns False (instead of raising) when the payload is corrupt or
        undecodable, so integrity scans can report rather than abort.
        """
        block = self.blocks[block_id]
        original = block_bytes(self.cfg.block(block_id))
        try:
            recovered = decompress_for_image(
                self.codec_for(block_id), block.compressed_payload,
                block.uncompressed_size,
            )
        except CodecError:
            return False
        return recovered == original


class SeparateAreaImage(CodeImage):
    """The paper's scheme: immutable compressed area + separate
    allocator-managed decompressed area.

    ``capacity`` bounds the decompressed area (None = unbounded; memory
    budgets are normally enforced by the budget *strategy* instead).
    """

    def __init__(
        self,
        cfg: ProgramCFG,
        codec: Codec,
        capacity: Optional[int] = None,
        alignment: int = 4,
        artifacts: Optional[CompressionArtifacts] = None,
    ) -> None:
        super().__init__(cfg, codec, artifacts=artifacts)
        cursor = 0
        for block in cfg.blocks:
            payload = self._payload(block)
            self.blocks.append(
                BlockImage(
                    block_id=block.block_id,
                    compressed_payload=payload,
                    compressed_addr=cursor,
                    uncompressed_size=block.size_bytes,
                )
            )
            cursor += len(payload)
        # The decompressed area starts right above the compressed area.
        base = cursor + (-cursor % alignment)
        self.allocator = FreeListAllocator(
            base=base, capacity=capacity, alignment=alignment
        )

    def decompress(self, block_id: int) -> int:
        block = self.blocks[block_id]
        if block.is_resident:
            raise ImageError(f"block B{block_id} is already decompressed")
        address = self.allocator.allocate(max(block.uncompressed_size, 1))
        block.resident_addr = address
        self.decompress_count += 1
        return address

    def release(self, block_id: int) -> int:
        block = self.blocks[block_id]
        if not block.is_resident:
            raise ImageError(f"block B{block_id} is not decompressed")
        self.allocator.free(block.resident_addr)  # type: ignore[arg-type]
        block.resident_addr = None
        self.release_count += 1
        return block.uncompressed_size

    def absorb_replay(
        self,
        resident_blocks: Sequence[int],
        decompressed_blocks: int,
        released_blocks: int,
    ) -> None:
        """Bring storage state in line after a batched trace replay.

        The batched kernel (:mod:`repro.core.replay`) tracks residency
        and footprint arithmetically instead of allocating per block;
        this settles the final state: blocks resident before the kernel
        ran (the entry unit, materialised by the pre-kernel fault) but
        since released give up their allocations, every block in
        ``resident_blocks`` gets a live one, and the decompress/release
        tallies absorb the kernel's per-block counts.  Footprint
        (``used_bytes``) ends up exactly where the per-block path would
        have left it; transient allocator details a replay never
        observes (hole layout, peak, extent) may differ.
        """
        keep = set(resident_blocks)
        for block in self.blocks:
            if block.is_resident and block.block_id not in keep:
                self.allocator.free(block.resident_addr)
                block.resident_addr = None
        for block_id in resident_blocks:
            block = self.blocks[block_id]
            if not block.is_resident:
                block.resident_addr = self.allocator.allocate(
                    max(block.uncompressed_size, 1)
                )
        self.decompress_count += decompressed_blocks
        self.release_count += released_blocks

    @property
    def footprint_bytes(self) -> int:
        return self.compressed_image_size + self.allocator.used_bytes

    @property
    def address_space_bytes(self) -> int:
        return self.compressed_image_size + self.allocator.extent_bytes


class InPlaceImage(CodeImage):
    """Naive single-area scheme for the E8 comparison.

    Every block lives in one area; decompressing frees its compressed slot
    and allocates an uncompressed one, recompressing does the reverse.
    Because slot sizes differ, the area fragments and blocks migrate —
    exactly the problem Section 5's design avoids.  Branch patches are
    needed on *every* move (tracked by ``relocations``).
    """

    def __init__(
        self,
        cfg: ProgramCFG,
        codec: Codec,
        capacity: Optional[int] = None,
        alignment: int = 4,
        artifacts: Optional[CompressionArtifacts] = None,
    ) -> None:
        super().__init__(cfg, codec, artifacts=artifacts)
        self.allocator = FreeListAllocator(
            base=0, capacity=capacity, alignment=alignment
        )
        self.relocations = 0
        self.compactions = 0
        self.compaction_bytes_moved = 0
        self._slot: Dict[int, int] = {}  # block id -> current slot address
        for block in cfg.blocks:
            payload = self._payload(block)
            address = self.allocator.allocate(max(len(payload), 1))
            self.blocks.append(
                BlockImage(
                    block_id=block.block_id,
                    compressed_payload=payload,
                    compressed_addr=address,
                    uncompressed_size=block.size_bytes,
                )
            )
            self._slot[block.block_id] = address

    def _reallocate(self, block_id: int, size: int) -> int:
        """Free the current slot and allocate ``size`` bytes, compacting on
        failure when the area is bounded."""
        self.allocator.free(self._slot[block_id])
        try:
            address = self.allocator.allocate(max(size, 1))
        except AllocationError:
            moved, relocation_map = self.allocator.compact()
            self.compactions += 1
            self.compaction_bytes_moved += moved
            for old, new in relocation_map.items():
                for other_id, slot in self._slot.items():
                    if slot == old and other_id != block_id:
                        self._slot[other_id] = new
                        self.relocations += 1
            address = self.allocator.allocate(max(size, 1))
        self._slot[block_id] = address
        return address

    def decompress(self, block_id: int) -> int:
        block = self.blocks[block_id]
        if block.is_resident:
            raise ImageError(f"block B{block_id} is already decompressed")
        address = self._reallocate(block_id, block.uncompressed_size)
        if address != block.compressed_addr:
            self.relocations += 1
        block.resident_addr = address
        self.decompress_count += 1
        return address

    def release(self, block_id: int) -> int:
        block = self.blocks[block_id]
        if not block.is_resident:
            raise ImageError(f"block B{block_id} is not decompressed")
        previous = block.resident_addr
        address = self._reallocate(block_id, block.compressed_size)
        if address != previous:
            self.relocations += 1
        block.compressed_addr = address
        block.resident_addr = None
        self.release_count += 1
        return block.uncompressed_size

    @property
    def footprint_bytes(self) -> int:
        return self.allocator.used_bytes + self.model_overhead

    @property
    def address_space_bytes(self) -> int:
        return self.allocator.extent_bytes + self.model_overhead
