"""Memory system: images, allocator, remember sets, fragmentation metrics."""

from .allocator import AllocationError, FreeHole, FreeListAllocator
from .fragmentation import (
    FragmentationReport,
    FragmentationTimeline,
    snapshot,
)
from .image import (
    BlockImage,
    CodeImage,
    CompressedCodeFault,
    CompressionArtifacts,
    ImageError,
    InPlaceImage,
    SeparateAreaImage,
    compression_artifacts,
)
from .remember_set import BranchSite, RememberSets

__all__ = [
    "AllocationError",
    "BlockImage",
    "BranchSite",
    "CodeImage",
    "CompressedCodeFault",
    "CompressionArtifacts",
    "compression_artifacts",
    "FragmentationReport",
    "FragmentationTimeline",
    "FreeHole",
    "FreeListAllocator",
    "ImageError",
    "InPlaceImage",
    "RememberSets",
    "SeparateAreaImage",
    "snapshot",
]
