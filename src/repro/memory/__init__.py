"""Memory system: images, allocator, remember sets, fragmentation metrics."""

from .allocator import AllocationError, FreeHole, FreeListAllocator
from .fragmentation import (
    FragmentationReport,
    FragmentationTimeline,
    snapshot,
)
from .image import (
    BlockImage,
    CodeImage,
    CompressedCodeFault,
    ImageError,
    InPlaceImage,
    SeparateAreaImage,
)
from .remember_set import BranchSite, RememberSets

__all__ = [
    "AllocationError",
    "BlockImage",
    "BranchSite",
    "CodeImage",
    "CompressedCodeFault",
    "FragmentationReport",
    "FragmentationTimeline",
    "FreeHole",
    "FreeListAllocator",
    "ImageError",
    "InPlaceImage",
    "RememberSets",
    "SeparateAreaImage",
    "snapshot",
]
