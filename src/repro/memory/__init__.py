"""Memory system: images, allocator, remember sets, fragmentation metrics."""

from .allocator import AllocationError, FreeHole, FreeListAllocator
from .fragmentation import (
    FragmentationReport,
    FragmentationTimeline,
    snapshot,
)
from .hierarchy import (
    HIERARCHIES,
    MemoryHierarchy,
    MemoryLevel,
    available_hierarchies,
    get_hierarchy,
    register_hierarchy,
)
from .image import (
    ArtifactCache,
    BlockImage,
    CodeImage,
    CompressedCodeFault,
    CompressionArtifacts,
    ImageError,
    InPlaceImage,
    SeparateAreaImage,
    artifact_cache,
    compression_artifacts,
    set_artifact_provider,
)
from .remember_set import BranchSite, RememberSets

__all__ = [
    "AllocationError",
    "ArtifactCache",
    "artifact_cache",
    "BlockImage",
    "BranchSite",
    "CodeImage",
    "CompressedCodeFault",
    "CompressionArtifacts",
    "compression_artifacts",
    "set_artifact_provider",
    "FragmentationReport",
    "FragmentationTimeline",
    "FreeHole",
    "FreeListAllocator",
    "HIERARCHIES",
    "ImageError",
    "InPlaceImage",
    "MemoryHierarchy",
    "MemoryLevel",
    "RememberSets",
    "SeparateAreaImage",
    "available_hierarchies",
    "get_hierarchy",
    "register_hierarchy",
    "snapshot",
]
