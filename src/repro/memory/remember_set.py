"""Remember sets for branch-target patching.

Section 5: "for each decompressed block, we also maintain a 'remember set'
that records the addresses of the branch instructions that jump to this
block" — when a decompressed copy is discarded, exactly those branches must
be re-pointed at the compressed entry (so the next execution faults and
re-decompresses).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Set, Tuple


@dataclass(frozen=True)
class BranchSite:
    """A branch instruction location: (block id, instruction index within
    that block's decompressed copy)."""

    block_id: int
    instr_index: int


class RememberSets:
    """Tracks, per target block, the branch sites currently patched to its
    decompressed copy.

    The runtime calls :meth:`add_reference` whenever the exception handler
    "updates the target address of the branch instruction" (Figure 5 steps
    4 and 6), and :meth:`drop_target` when a decompressed copy is deleted
    (step 9), which returns the sites that must be patched back.

    Invariant kept for the property tests: a branch site appears in at most
    one target's remember set — a branch instruction holds one address.
    """

    def __init__(self) -> None:
        self._by_target: Dict[int, Set[BranchSite]] = {}
        self._site_target: Dict[BranchSite, int] = {}
        self.total_patches = 0

    def add_reference(self, target_block: int, site: BranchSite) -> None:
        """Record that ``site`` now jumps to ``target_block``'s copy."""
        previous = self._site_target.get(site)
        if previous == target_block:
            return
        if previous is not None:
            self._by_target[previous].discard(site)
        self._by_target.setdefault(target_block, set()).add(site)
        self._site_target[site] = target_block
        self.total_patches += 1

    def drop_target(self, target_block: int) -> List[BranchSite]:
        """Remove ``target_block``'s set; returns the sites needing
        patch-back (each patch-back is counted in :attr:`total_patches`)."""
        sites = sorted(
            self._by_target.pop(target_block, set()),
            key=lambda s: (s.block_id, s.instr_index),
        )
        for site in sites:
            del self._site_target[site]
        self.total_patches += len(sites)
        return sites

    def drop_sites_in_block(self, block_id: int) -> int:
        """Forget all sites *located in* ``block_id`` (its decompressed copy
        is going away, so the branches it contained no longer exist).

        Returns the number of sites removed; these need no patching — the
        memory holding them is freed.
        """
        removed = 0
        for site in [
            s for s in self._site_target if s.block_id == block_id
        ]:
            target = self._site_target.pop(site)
            self._by_target[target].discard(site)
            removed += 1
        return removed

    def references_to(self, target_block: int) -> Set[BranchSite]:
        """Sites currently pointing at ``target_block``'s copy."""
        return set(self._by_target.get(target_block, set()))

    def target_of(self, site: BranchSite) -> int:
        """Block the given site currently points to (KeyError if unknown)."""
        return self._site_target[site]

    def points_to(self, site: BranchSite, target_block: int) -> bool:
        """True if ``site`` is currently patched to ``target_block``."""
        return self._site_target.get(site) == target_block

    @property
    def tracked_sites(self) -> int:
        """Total number of tracked branch sites."""
        return len(self._site_target)

    def validate(self) -> List[str]:
        """Return invariant violations (empty when consistent)."""
        problems: List[str] = []
        for target, sites in self._by_target.items():
            for site in sites:
                if self._site_target.get(site) != target:
                    problems.append(
                        f"site {site} in set of B{target} but maps to "
                        f"{self._site_target.get(site)}"
                    )
        for site, target in self._site_target.items():
            if site not in self._by_target.get(target, set()):
                problems.append(
                    f"site {site} maps to B{target} but missing from its set"
                )
        return problems
