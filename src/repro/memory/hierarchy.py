"""Explicit memory-hierarchy model (paper Section 2's two-level picture).

The paper's claims assume two levels of memory: a *front* memory that
holds the currently decompressed copies (scratchpad/cache — hit on every
re-entry of a resident block) and a *target* memory holding the
compressed image, which is read only when a unit is (re)materialised.
Historically that hierarchy existed in this repo only as scattered
counters (``target_memory_bytes``) and hard-coded energy constants; this
module makes it a first-class, configurable layer.

A :class:`MemoryHierarchy` names two :class:`MemoryLevel` geometries plus
a CPU energy constant.  Levels model:

* **read granularity** — the bus/burst transaction size: a read of
  ``n`` bytes moves ``ceil(n / granularity) * granularity`` bytes, so
  wide-burst targets (DRAM) read more than the payload asks for;
* **bus width and access latency** — cycles to move the (rounded)
  bytes, charged on top of the codec's decompression latency when a
  unit is filled from the target memory;
* **energy** — nJ per byte moved and nJ per access, from which
  :meth:`repro.analysis.energy.EnergyModel.for_hierarchy` derives the
  run energy model.

Presets live in the :data:`HIERARCHIES` registry (part of the unified
component catalog, so ``repro list`` enumerates them and the store
fingerprints them).  The default preset ``flat`` models an un-timed,
exact-byte memory — it reproduces the seed cost model exactly, so
default-config results are byte-identical to the pre-hierarchy code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from ..registry import Registry

#: Memory-hierarchy presets, in the unified component catalog.
HIERARCHIES = Registry("hierarchies", item="memory hierarchy")


@dataclass(frozen=True)
class MemoryLevel:
    """Geometry and energy of one level of the memory system.

    Attributes:
        name: human-readable level name ("spm", "dram", ...).
        access_cycles: fixed cycles charged per read transaction
            (0 = un-timed, the seed model).
        bytes_per_cycle: bus width; 0 leaves the transfer un-timed so
            only ``access_cycles`` is charged.
        read_granularity: bus/burst transaction size in bytes — reads
            round up to a multiple of this (1 = exact bytes).
        nj_per_byte: energy per byte moved over this level's bus.
        nj_per_access: fixed energy per read transaction.
    """

    name: str
    access_cycles: int = 0
    bytes_per_cycle: int = 0
    read_granularity: int = 1
    nj_per_byte: float = 1.0
    nj_per_access: float = 0.0

    def __post_init__(self) -> None:
        if self.access_cycles < 0:
            raise ValueError(
                f"access_cycles must be >= 0, got {self.access_cycles}"
            )
        if self.bytes_per_cycle < 0:
            raise ValueError(
                f"bytes_per_cycle must be >= 0, got {self.bytes_per_cycle}"
            )
        if self.read_granularity < 1:
            raise ValueError(
                f"read_granularity must be >= 1, got "
                f"{self.read_granularity}"
            )
        if self.nj_per_byte < 0 or self.nj_per_access < 0:
            raise ValueError("energy constants must be non-negative")

    def bytes_moved(self, nbytes: int) -> int:
        """Bytes actually moved for an ``nbytes`` read (burst-rounded)."""
        if nbytes <= 0:
            return 0
        gran = self.read_granularity
        return -(-nbytes // gran) * gran

    def transfer_cycles(self, nbytes: int) -> int:
        """Cycles to read ``nbytes`` from this level (0 when un-timed)."""
        if nbytes <= 0:
            return 0
        cycles = self.access_cycles
        if self.bytes_per_cycle > 0:
            moved = self.bytes_moved(nbytes)
            cycles += -(-moved // self.bytes_per_cycle)
        return cycles


@dataclass(frozen=True)
class MemoryHierarchy:
    """A named two-level memory geometry.

    ``front`` holds decompressed copies (hit on every entry of a
    resident block); ``target`` holds the compressed image and is read
    only on (re)materialisation — exactly the paper's Section 2 model.
    ``cpu_nj_per_cycle`` is the decompressor's energy per busy cycle.
    """

    name: str
    front: MemoryLevel
    target: MemoryLevel
    cpu_nj_per_cycle: float = 0.1
    description: str = ""

    def __post_init__(self) -> None:
        if self.cpu_nj_per_cycle < 0:
            raise ValueError("cpu_nj_per_cycle must be non-negative")

    # -- target-memory reads (materialisation traffic) ----------------

    def target_read_bytes(self, nbytes: int) -> int:
        """Target-memory bytes moved for an ``nbytes`` payload read."""
        return self.target.bytes_moved(nbytes)

    def target_read_cycles(self, nbytes: int) -> int:
        """Extra cycles a target-memory read of ``nbytes`` costs."""
        return self.target.transfer_cycles(nbytes)


def register_hierarchy(hierarchy: MemoryHierarchy) -> MemoryHierarchy:
    """Register a preset under its own name; returns it for chaining."""
    HIERARCHIES.add(hierarchy.name, hierarchy)
    return hierarchy


def get_hierarchy(
    hierarchy: Union[str, MemoryHierarchy]
) -> MemoryHierarchy:
    """Resolve a preset name (or pass a hierarchy through)."""
    if isinstance(hierarchy, MemoryHierarchy):
        return hierarchy
    value = HIERARCHIES.get(hierarchy)
    if not isinstance(value, MemoryHierarchy):
        raise TypeError(
            f"registered hierarchy '{hierarchy}' is not a "
            f"MemoryHierarchy: {value!r}"
        )
    return value


def available_hierarchies() -> "list[str]":
    """Registered preset names (registration order)."""
    return HIERARCHIES.names(sort=False)


#: The seed cost model: a single un-timed memory with exact-byte reads.
#: Reproduces pre-hierarchy numbers exactly (zero extra cycles, 1 nJ/B
#: bus energy, 0.1 nJ/cycle decompressor energy).
FLAT = register_hierarchy(
    MemoryHierarchy(
        name="flat",
        front=MemoryLevel("front", nj_per_byte=0.0),
        target=MemoryLevel("target", nj_per_byte=1.0),
        cpu_nj_per_cycle=0.1,
        description="un-timed single memory (seed-equivalent cost model)",
    )
)

#: Scratchpad front over NOR-flash-like target: slow narrow bus, word
#: transactions, expensive per-byte reads — the embedded-SoC shape the
#: paper targets.
SPM_FRONT = register_hierarchy(
    MemoryHierarchy(
        name="spm-front",
        front=MemoryLevel("spm", access_cycles=1, nj_per_byte=0.2),
        target=MemoryLevel(
            "flash",
            access_cycles=8,
            bytes_per_cycle=4,
            read_granularity=4,
            nj_per_byte=2.0,
            nj_per_access=4.0,
        ),
        cpu_nj_per_cycle=0.1,
        description="SRAM scratchpad front, word-wide flash target",
    )
)

#: Cache-like front over burst-oriented DRAM: long access latency, wide
#: bus, 32-byte bursts that over-fetch small compressed payloads.
TWO_LEVEL_DRAM = register_hierarchy(
    MemoryHierarchy(
        name="two-level-dram",
        front=MemoryLevel("cache", access_cycles=1, nj_per_byte=0.3),
        target=MemoryLevel(
            "dram",
            access_cycles=40,
            bytes_per_cycle=8,
            read_granularity=32,
            nj_per_byte=1.5,
            nj_per_access=8.0,
        ),
        cpu_nj_per_cycle=0.1,
        description="cache front, burst-oriented DRAM target",
    )
)
