"""First-fit free-list allocator with coalescing.

Manages the *decompressed code area* of the memory image (Section 5 of the
paper: decompressed blocks are "stored in a separate location").  The
allocator exposes the fragmentation metrics the paper's design rationale
appeals to — "an excessively fragmented free space either cannot be used
for allocating large objects or requires memory compaction".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


class AllocationError(RuntimeError):
    """Raised when a request cannot be satisfied within the capacity."""


@dataclass(frozen=True)
class FreeHole:
    """A contiguous free region ``[start, start + size)``."""

    start: int
    size: int

    @property
    def end(self) -> int:
        return self.start + self.size


class FreeListAllocator:
    """Address-ordered first-fit allocator over ``[base, base + capacity)``.

    ``capacity=None`` means unbounded: the extent grows on demand (models
    the paper's default "no restriction on the total memory space" mode;
    the budget strategy imposes the cap at the policy level instead).

    The allocator never moves live allocations; :meth:`compact` exists for
    the E8 in-place comparison and reports how many bytes it had to move.
    """

    def __init__(self, base: int = 0, capacity: Optional[int] = None,
                 alignment: int = 4) -> None:
        if alignment < 1:
            raise ValueError(f"alignment must be >= 1, got {alignment}")
        if capacity is not None and capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.base = base
        self.capacity = capacity
        self.alignment = alignment
        self._allocations: Dict[int, int] = {}  # start -> size
        self._holes: List[FreeHole] = []
        if capacity is not None:
            self._holes.append(FreeHole(base, capacity))
        self._extent = base  # exclusive upper bound of touched space
        self.used_bytes = 0
        self.peak_used_bytes = 0
        self.allocation_count = 0
        self.failed_allocations = 0

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------

    def _align(self, size: int) -> int:
        remainder = size % self.alignment
        return size if remainder == 0 else size + self.alignment - remainder

    def allocate(self, size: int) -> int:
        """Allocate ``size`` bytes; returns the start address.

        Raises :class:`AllocationError` when a bounded area has no hole big
        enough (the caller — the budget strategy — is expected to evict and
        retry).
        """
        if size <= 0:
            raise ValueError(f"allocation size must be positive, got {size}")
        size = self._align(size)
        for index, hole in enumerate(self._holes):
            if hole.size >= size:
                start = hole.start
                remaining = hole.size - size
                if remaining:
                    self._holes[index] = FreeHole(start + size, remaining)
                else:
                    self._holes.pop(index)
                self._commit(start, size)
                return start
        if self.capacity is None:
            start = self._extent
            self._commit(start, size)
            return start
        self.failed_allocations += 1
        raise AllocationError(
            f"cannot allocate {size} bytes: largest hole is "
            f"{self.largest_hole} of {self.free_bytes} free"
        )

    def _commit(self, start: int, size: int) -> None:
        self._allocations[start] = size
        self._extent = max(self._extent, start + size)
        self.used_bytes += size
        self.peak_used_bytes = max(self.peak_used_bytes, self.used_bytes)
        self.allocation_count += 1

    def free(self, start: int) -> int:
        """Free the allocation at ``start``; returns its size."""
        size = self._allocations.pop(start, None)
        if size is None:
            raise AllocationError(f"no allocation at address {start:#x}")
        self.used_bytes -= size
        self._insert_hole(FreeHole(start, size))
        return size

    def _insert_hole(self, hole: FreeHole) -> None:
        """Insert ``hole`` keeping the list address-sorted and coalesced."""
        holes = self._holes
        low, high = 0, len(holes)
        while low < high:
            mid = (low + high) // 2
            if holes[mid].start < hole.start:
                low = mid + 1
            else:
                high = mid
        holes.insert(low, hole)
        # Coalesce with the right neighbour, then the left one.
        if low + 1 < len(holes) and holes[low].end == holes[low + 1].start:
            holes[low] = FreeHole(
                holes[low].start, holes[low].size + holes[low + 1].size
            )
            holes.pop(low + 1)
        if low > 0 and holes[low - 1].end == holes[low].start:
            holes[low - 1] = FreeHole(
                holes[low - 1].start,
                holes[low - 1].size + holes[low].size,
            )
            holes.pop(low)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def free_bytes(self) -> int:
        """Total free bytes inside the current extent (or capacity)."""
        return sum(hole.size for hole in self._holes)

    @property
    def largest_hole(self) -> int:
        """Size of the biggest free hole."""
        return max((hole.size for hole in self._holes), default=0)

    @property
    def extent_bytes(self) -> int:
        """Bytes of address space touched so far (``extent - base``)."""
        return self._extent - self.base

    @property
    def hole_count(self) -> int:
        """Number of distinct free holes."""
        return len(self._holes)

    @property
    def live_allocations(self) -> int:
        """Number of outstanding allocations."""
        return len(self._allocations)

    def holes(self) -> List[FreeHole]:
        """Snapshot of the free list (address-ordered)."""
        return list(self._holes)

    def allocations(self) -> Dict[int, int]:
        """Snapshot of live allocations (start -> size)."""
        return dict(self._allocations)

    def external_fragmentation(self) -> float:
        """``1 - largest_hole / free_bytes`` (0 when free space is one
        hole or there is no free space)."""
        free = self.free_bytes
        if free == 0:
            return 0.0
        return 1.0 - self.largest_hole / free

    # ------------------------------------------------------------------
    # Compaction (used by the in-place comparison scheme, E8)
    # ------------------------------------------------------------------

    def compact(self) -> Tuple[int, Dict[int, int]]:
        """Slide all allocations down to be contiguous from ``base``.

        Returns ``(bytes_moved, relocation_map)`` where the map is
        old start -> new start for every allocation that moved.  The caller
        must fix any pointers (branch targets) into moved regions.
        """
        relocations: Dict[int, int] = {}
        bytes_moved = 0
        cursor = self.base
        new_allocations: Dict[int, int] = {}
        for start in sorted(self._allocations):
            size = self._allocations[start]
            if start != cursor:
                relocations[start] = cursor
                bytes_moved += size
            new_allocations[cursor] = size
            cursor += size
        self._allocations = new_allocations
        self._holes = []
        if self.capacity is not None:
            tail = self.base + self.capacity - cursor
            if tail > 0:
                self._holes.append(FreeHole(cursor, tail))
        self._extent = cursor
        return bytes_moved, relocations
