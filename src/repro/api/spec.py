"""Declarative experiment descriptions.

An :class:`ExperimentSpec` names *what* to run — workloads, a list of
configuration overrides (composed with :func:`grid`, :func:`zip_axes`,
and :func:`cases`), the sweep engine, and the executor — without saying
*how*; expansion to concrete (workload, config) cells and execution are
the executor layer's job.  Specs are plain data: they round-trip through
JSON (:meth:`ExperimentSpec.from_file`) so the same grid can live in the
repo, on the CLI (``repro exp --spec FILE``), or inline in a benchmark.

The paper's design space maps directly onto the axes: codec x
decompression strategy x k-edge parameters x budget/granularity
(conf_date_OzturkSKK05, Figures 3-5)::

    spec = ExperimentSpec(
        workloads=["composite", "fsm"],
        base={"codec": "shared-dict", "decompression": "ondemand"},
        axes=grid(k_compress=[1, 2, 4, 8, "inf"]),
        engine="trace",
    )
    result = repro.api.run_experiment(spec, jobs=4)
"""

from __future__ import annotations

import dataclasses
import itertools
import json
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..core.config import ConfigError, SimulationConfig
from ..analysis.sweep import ENGINES, available_engines
from ..workloads.suite import WORKLOADS, Workload, get_workload

#: Config fields a spec may set (everything on SimulationConfig).
CONFIG_FIELDS = tuple(
    f.name for f in dataclasses.fields(SimulationConfig)
)


class SpecError(ValueError):
    """Raised for malformed experiment specs (unknown fields, bad axis
    shapes, unknown workloads/engines/executors)."""


def parse_k(value: object, *, field_name: str = "k") -> Optional[int]:
    """Normalise a k-edge parameter: ``"inf"``/``"none"``/``None`` mean
    k = infinity (never recompress); positive integers pass through;
    everything else (including 0) is rejected loudly.
    """
    if value is None:
        return None
    if isinstance(value, str):
        token = value.strip().lower()
        if token in ("inf", "none"):
            return None
        try:
            value = int(token)
        except ValueError:
            raise SpecError(
                f"invalid {field_name} value {value!r}: expected a "
                f"positive integer or 'inf'/'none'"
            ) from None
    if isinstance(value, bool) or not isinstance(value, int):
        raise SpecError(
            f"invalid {field_name} value {value!r}: expected a "
            f"positive integer or 'inf'/'none'"
        )
    if value < 1:
        raise SpecError(
            f"invalid {field_name} value {value}: k must be >= 1 "
            f"(use 'inf' or 'none' for k = infinity)"
        )
    return value


# ----------------------------------------------------------------------
# Axis combinators
# ----------------------------------------------------------------------


def _check_axis_fields(names: Sequence[str]) -> None:
    for name in names:
        if name not in CONFIG_FIELDS:
            raise SpecError(
                f"unknown config field '{name}'; "
                f"valid fields: {sorted(CONFIG_FIELDS)}"
            )


def grid(**axes: Sequence[Any]) -> List[Dict[str, Any]]:
    """Cartesian product of the given axes, in axis declaration order.

    ``grid(k_compress=[1, 2], codec=["lzw", "rle"])`` yields four
    override dicts: (1, lzw), (1, rle), (2, lzw), (2, rle).
    """
    _check_axis_fields(list(axes))
    names = list(axes)
    value_lists = [list(axes[name]) for name in names]
    for name, values in zip(names, value_lists):
        if not values:
            raise SpecError(f"axis '{name}' has no values")
    return [
        dict(zip(names, combo))
        for combo in itertools.product(*value_lists)
    ]


def zip_axes(**axes: Sequence[Any]) -> List[Dict[str, Any]]:
    """Parallel (zipped) axes: the i-th override takes the i-th value of
    every axis.  All axes must have the same length."""
    _check_axis_fields(list(axes))
    if not axes:
        raise SpecError("zip_axes needs at least one axis")
    lengths = {name: len(list(values)) for name, values in axes.items()}
    if len(set(lengths.values())) != 1:
        raise SpecError(
            f"zip_axes requires equal-length axes, got {lengths}"
        )
    names = list(axes)
    return [
        dict(zip(names, combo))
        for combo in zip(*(list(axes[name]) for name in names))
    ]


def cases(*overrides: Mapping[str, Any]) -> List[Dict[str, Any]]:
    """An explicit list of override dicts (named design points)."""
    out: List[Dict[str, Any]] = []
    for override in overrides:
        if not isinstance(override, Mapping):
            raise SpecError(
                f"cases() takes mappings, got {type(override).__name__}"
            )
        _check_axis_fields(list(override))
        out.append(dict(override))
    return out


# ----------------------------------------------------------------------
# The spec
# ----------------------------------------------------------------------


@dataclass
class Cell:
    """One expanded (workload, config) point of an experiment grid."""

    index: int
    workload: str
    config: SimulationConfig


@dataclass
class ExperimentSpec:
    """A declarative experiment: workloads x config overrides.

    Attributes:
        workloads: registry names, or the string ``"all"``.
        axes: override dicts from :func:`grid`/:func:`zip_axes`/
            :func:`cases` (lists concatenate with ``+``); the default
            single empty override runs the base config once.
        base: config fields shared by every cell.
        engine: sweep engine name ("machine" or "trace").
        executor: executor name ("serial", "parallel", or "caching");
            ``None`` (the default) picks "parallel" when ``jobs`` > 1,
            else "serial".
        jobs: worker processes for the parallel executor.
        fast: disable event/trace recording in every cell.
        max_blocks: optional per-cell block budget.
        name: spec name, carried into the result-set metadata.
        store: persistent result-store directory (``repro.store``);
            ``""`` selects the default location, ``None`` leaves the
            choice to the runner (CLI flags / ``$REPRO_STORE_DIR``).
    """

    workloads: Union[str, Sequence[str]] = "all"
    axes: Sequence[Mapping[str, Any]] = field(
        default_factory=lambda: [{}]
    )
    base: Mapping[str, Any] = field(default_factory=dict)
    engine: str = "machine"
    executor: Optional[str] = None
    jobs: int = 1
    fast: bool = True
    max_blocks: Optional[int] = None
    name: str = "experiment"
    store: Optional[str] = None

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise SpecError(
                f"unknown sweep engine '{self.engine}'; "
                f"available: {tuple(available_engines())}"
            )
        from .executor import EXECUTORS  # late: avoid import cycle

        if self.jobs < 1:
            raise SpecError(f"jobs must be >= 1, got {self.jobs}")
        if self.executor is None:
            self.executor = "parallel" if self.jobs > 1 else "serial"
        if self.executor not in EXECUTORS:
            raise SpecError(
                f"unknown executor '{self.executor}'; "
                f"available: {EXECUTORS.names()}"
            )
        for name in self.workload_names():
            if name not in WORKLOADS:
                raise SpecError(
                    f"unknown workload '{name}'; "
                    f"available: {WORKLOADS.names()}"
                )
        # Fail fast on malformed configs at spec-build time, not midway
        # through a long grid.
        self.configs()

    # ------------------------------------------------------------------
    # Expansion
    # ------------------------------------------------------------------

    def workload_names(self) -> List[str]:
        """The resolved workload name list ("all" expands the registry)."""
        if isinstance(self.workloads, str):
            if self.workloads == "all":
                return WORKLOADS.names()
            return [self.workloads]
        return list(self.workloads)

    def configs(self) -> List[SimulationConfig]:
        """One validated :class:`SimulationConfig` per override dict."""
        configs = []
        for override in self.axes:
            fields = {**dict(self.base), **dict(override)}
            unknown = [k for k in fields if k not in CONFIG_FIELDS]
            if unknown:
                raise SpecError(
                    f"unknown config field(s) {unknown}; "
                    f"valid fields: {sorted(CONFIG_FIELDS)}"
                )
            if "k_compress" in fields:
                fields["k_compress"] = parse_k(
                    fields["k_compress"], field_name="k_compress"
                )
            try:
                configs.append(SimulationConfig(**fields))
            except ConfigError as exc:
                raise SpecError(f"invalid config {fields}: {exc}") from exc
        if not configs:
            raise SpecError("spec expands to zero configurations")
        return configs

    def cells(self) -> List[Cell]:
        """The full grid in deterministic, workload-major order."""
        configs = self.configs()
        out: List[Cell] = []
        for workload in self.workload_names():
            for config in configs:
                out.append(Cell(len(out), workload, config))
        return out

    def partitions(self) -> List[Tuple[str, List[SimulationConfig]]]:
        """Cells grouped by workload — the unit of parallel dispatch,
        preserving the trace-replay and shared-artifact reuse that works
        within one workload's grid row."""
        configs = self.configs()
        return [(name, configs) for name in self.workload_names()]

    # ------------------------------------------------------------------
    # JSON round-trip
    # ------------------------------------------------------------------

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        """Build a spec from a JSON-shaped mapping.

        ``axes`` may be ``{"grid": {...}}``, ``{"zip": {...}}``,
        ``{"cases": [...]}``, or a list of such blocks (concatenated).
        """
        if not isinstance(data, Mapping):
            raise SpecError(
                f"spec must be a mapping, got {type(data).__name__}"
            )
        known = {
            "workloads", "axes", "base", "engine", "executor",
            "jobs", "fast", "max_blocks", "name", "store",
        }
        unknown = [k for k in data if k not in known]
        if unknown:
            raise SpecError(
                f"unknown spec key(s) {unknown}; valid: {sorted(known)}"
            )
        kwargs: Dict[str, Any] = {
            k: data[k] for k in known & set(data) if k != "axes"
        }
        if "axes" in data:
            kwargs["axes"] = _expand_axes_blocks(data["axes"])
        return cls(**kwargs)

    @classmethod
    def from_file(cls, path: str) -> "ExperimentSpec":
        """Load a JSON spec file."""
        with open(path, "r", encoding="utf-8") as handle:
            try:
                data = json.load(handle)
            except json.JSONDecodeError as exc:
                raise SpecError(f"cannot parse spec {path}: {exc}") from exc
        spec = cls.from_dict(data)
        if "name" not in data:
            spec.name = path
        return spec

    def to_dict(self) -> Dict[str, Any]:
        """JSON-shaped form (axes already expanded to cases)."""
        return {
            "name": self.name,
            "workloads": self.workload_names(),
            "base": dict(self.base),
            "axes": {"cases": [dict(o) for o in self.axes]},
            "engine": self.engine,
            "executor": self.executor,
            "jobs": self.jobs,
            "fast": self.fast,
            "max_blocks": self.max_blocks,
            "store": self.store,
        }


def _expand_axes_blocks(data: Any) -> List[Dict[str, Any]]:
    """Expand the JSON ``axes`` value into a list of override dicts."""
    if isinstance(data, Mapping):
        blocks: Sequence[Mapping[str, Any]] = [data]
    elif isinstance(data, Sequence) and not isinstance(data, str):
        blocks = list(data)
    else:
        raise SpecError(
            f"axes must be an axis block or a list of blocks, "
            f"got {type(data).__name__}"
        )
    out: List[Dict[str, Any]] = []
    for block in blocks:
        if not isinstance(block, Mapping) or len(block) != 1:
            raise SpecError(
                "each axes block must be exactly one of "
                '{"grid": {...}}, {"zip": {...}}, {"cases": [...]}'
            )
        op, value = next(iter(block.items()))
        if op == "grid":
            out.extend(grid(**value))
        elif op == "zip":
            out.extend(zip_axes(**value))
        elif op == "cases":
            out.extend(cases(*value))
        else:
            raise SpecError(
                f"unknown axes operator '{op}'; "
                f"valid: 'grid', 'zip', 'cases'"
            )
    return out
