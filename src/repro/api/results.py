"""Versioned experiment results with table/series extraction.

A :class:`ResultSet` is the one return type of the ``repro.api`` layer:
the flat run list in deterministic cell order plus experiment metadata,
with the lookup helpers the benchmarks used to hand-roll per table
(:meth:`ResultSet.filter`, :meth:`ResultSet.pivot`,
:meth:`ResultSet.series`).

Serialisation is versioned: :data:`SCHEMA_VERSION` bumps on any
backwards-incompatible change to the JSON/CSV shape.  Stability policy —
within one schema version, existing keys never change meaning or
disappear; new keys may appear.  Execution provenance (executor, jobs,
wall-clock timing) lives only under the top-level ``"execution"`` key so
results from different machines or executors compare equal after
dropping it (``to_dict(include_execution=False)``) — executors are
required to be result-transparent, and the integration tests assert
exactly this equality.
"""

from __future__ import annotations

import csv
import dataclasses
import io
import json
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from ..analysis.report import Series, Table
from ..analysis.sweep import SweepRun
from ..core.config import SimulationConfig

#: Bumped on any backwards-incompatible schema change.
SCHEMA_VERSION = 1

#: Schema identifier embedded in every serialised result set.
SCHEMA_ID = "repro.api.resultset"


def config_to_dict(config: SimulationConfig) -> Dict[str, Any]:
    """JSON-safe form of a config.

    The offline edge profile is an in-memory training artefact, not
    data; it serialises as a presence marker.
    """
    out: Dict[str, Any] = {}
    for f in dataclasses.fields(config):
        value = getattr(config, f.name)
        if f.name == "profile":
            value = None if value is None else "<edge-profile>"
        out[f.name] = value
    out["strategy_name"] = config.strategy_name
    return out


def run_metrics(run: SweepRun) -> Dict[str, float]:
    """Flat metric dict for one run: the headline summary plus every raw
    counter (counter names that overlap the summary agree by
    construction)."""
    metrics = dict(run.result.summary())
    for f in dataclasses.fields(run.result.counters):
        metrics[f.name] = float(getattr(run.result.counters, f.name))
    return metrics


def metric_value(run: SweepRun, name: str) -> Any:
    """Resolve a metric by name: result summary/property first, then raw
    counters."""
    result = run.result
    summary = result.summary()
    if name in summary:
        return summary[name]
    if hasattr(result.counters, name):
        return getattr(result.counters, name)
    if hasattr(result, name):
        return getattr(result, name)
    raise KeyError(
        f"unknown metric '{name}'; available: "
        f"{sorted(set(summary) | {f.name for f in dataclasses.fields(run.result.counters)})}"
    )


def _field_value(run: SweepRun, name: str) -> Any:
    """Resolve a grouping field: workload, label, or any config field."""
    if name == "workload":
        return run.workload
    if name == "label":
        return run.config.strategy_name
    if hasattr(run.config, name):
        return getattr(run.config, name)
    raise KeyError(
        f"unknown field '{name}'; use 'workload', 'label', or a "
        f"SimulationConfig field"
    )


class ResultSet:
    """All runs of one experiment, with metadata and extraction helpers.

    ``runs`` is the live, deterministic-order run list;
    ``meta`` carries the spec name, engine, executor, jobs, and timing.
    """

    def __init__(
        self,
        runs: Sequence[SweepRun],
        meta: Optional[Mapping[str, Any]] = None,
    ) -> None:
        self.runs: List[SweepRun] = list(runs)
        self.meta: Dict[str, Any] = dict(meta or {})

    # ------------------------------------------------------------------
    # SweepResult-compatible lookups
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.runs)

    def __iter__(self):
        return iter(self.runs)

    def by_workload(self, name: str) -> List[SweepRun]:
        """Runs of one workload, in cell order."""
        return [run for run in self.runs if run.workload == name]

    def by_label(self, label: str) -> List[SweepRun]:
        """Runs whose config label/strategy name matches ``label``."""
        return [
            run for run in self.runs
            if run.config.strategy_name == label
        ]

    def workloads(self) -> List[str]:
        """Distinct workload names in first-seen order."""
        seen: List[str] = []
        for run in self.runs:
            if run.workload not in seen:
                seen.append(run.workload)
        return seen

    def failures(self) -> List[SweepRun]:
        """Runs whose oracle rejected the final machine state."""
        return [run for run in self.runs if not run.ok]

    def errors(self) -> List[SweepRun]:
        """Runs whose cell raised instead of completing (a subset of
        :meth:`failures`)."""
        return [run for run in self.runs if run.error is not None]

    # ------------------------------------------------------------------
    # Extraction
    # ------------------------------------------------------------------

    def filter(
        self,
        predicate: Optional[Callable[[SweepRun], bool]] = None,
        **field_filters: Any,
    ) -> "ResultSet":
        """Runs matching the predicate and/or field equalities.

        Field names resolve like :meth:`pivot` axes: ``workload``,
        ``label``, or any config field, e.g.
        ``rs.filter(workload="fsm", decompression="ondemand")``.
        """
        runs = []
        for run in self.runs:
            if predicate is not None and not predicate(run):
                continue
            if all(
                _field_value(run, name) == wanted
                for name, wanted in field_filters.items()
            ):
                runs.append(run)
        return ResultSet(runs, self.meta)

    def pivot(
        self,
        value: str,
        rows: str = "workload",
        cols: str = "label",
        title: Optional[str] = None,
        fmt: Optional[Callable[[Any], Any]] = None,
    ) -> Table:
        """A rows x cols table of one metric.

        ``rows``/``cols`` are grouping fields (``workload``, ``label``,
        or a config field); ``value`` is a metric name resolved against
        the result summary and counters.  Duplicate (row, col) cells keep
        the first run; missing combinations render as ``-``.
        """
        row_keys: List[Any] = []
        col_keys: List[Any] = []
        cells: Dict[Any, Dict[Any, Any]] = {}
        for run in self.runs:
            row, col = _field_value(run, rows), _field_value(run, cols)
            if row not in row_keys:
                row_keys.append(row)
            if col not in col_keys:
                col_keys.append(col)
            cells.setdefault(row, {}).setdefault(
                col, metric_value(run, value)
            )
        table = Table(
            title or f"{value} by {rows} x {cols}",
            [rows] + [str(col) for col in col_keys],
        )
        for row in row_keys:
            out_row: List[Any] = [row]
            for col in col_keys:
                got = cells.get(row, {}).get(col, "-")
                out_row.append(fmt(got) if fmt and got != "-" else got)
            table.add_row(*out_row)
        return table

    def series(
        self,
        x: str,
        y: str,
        by: str = "workload",
        x_transform: Optional[Callable[[Any], Any]] = None,
    ) -> Dict[str, Series]:
        """One (x, y) series per ``by`` group, keyed by group.

        ``x`` is a grouping field, ``y`` a metric; ``x_transform`` maps
        raw x values (e.g. k = None) onto plottable numbers.
        """
        out: Dict[str, Series] = {}
        for run in self.runs:
            group = str(_field_value(run, by))
            series = out.get(group)
            if series is None:
                series = out[group] = Series(group, x, y)
            raw_x = _field_value(run, x)
            series.add(
                x_transform(raw_x) if x_transform else raw_x,
                metric_value(run, y),
            )
        return out

    # ------------------------------------------------------------------
    # Versioned serialisation
    # ------------------------------------------------------------------

    #: Meta keys that describe *how* the grid ran rather than *what* it
    #: produced; serialised under "execution" and excluded from equality.
    #: Cache provenance (store hits/misses) is execution detail too: a
    #: fully cached run must compare equal to a cold one.
    EXECUTION_KEYS = ("executor", "jobs", "timing", "cache")

    def to_dict(self, include_execution: bool = True) -> Dict[str, Any]:
        """The versioned JSON-shaped form (see module docstring)."""
        meta = {
            k: v for k, v in self.meta.items()
            if k not in self.EXECUTION_KEYS
        }
        cells = []
        for run in self.runs:
            # Per-cell engine/registers stay off the serialised form on
            # purpose: engines are required to be result-transparent,
            # so a machine-run grid and a trace-run grid of the same
            # spec must serialise identically (the engine used lives in
            # meta, and on the live SimulationResult.engine tag).
            cell: Dict[str, Any] = {
                "workload": run.workload,
                "label": run.config.strategy_name,
                "config": config_to_dict(run.config),
                "metrics": run_metrics(run),
                "ok": run.ok,
                "validation": list(run.validation),
            }
            if run.error is not None:
                cell["error"] = run.error
                if run.attempts:
                    # Retry provenance rides only on exhausted error
                    # rows (recovered cells must stay byte-identical to
                    # untroubled ones — the chaos suite's invariant).
                    cell["attempts"] = [dict(a) for a in run.attempts]
            cells.append(cell)
        out: Dict[str, Any] = {
            "schema": SCHEMA_ID,
            "version": SCHEMA_VERSION,
            "meta": meta,
            "cells": cells,
        }
        if include_execution:
            out["execution"] = {
                "executor": self.meta.get("executor"),
                "jobs": self.meta.get("jobs"),
                "timing": dict(self.meta.get("timing", {})),
            }
            if "cache" in self.meta:
                out["execution"]["cache"] = dict(self.meta["cache"])
        return out

    def to_json(
        self,
        path: Optional[str] = None,
        include_execution: bool = True,
        indent: int = 2,
    ) -> str:
        """Serialise to JSON; also writes ``path`` when given.

        Serialisation is canonical — keys sorted, rows in deterministic
        cell order, floats emitted by the default repr — so identical
        experiments produce byte-identical files (given
        ``include_execution=False``, which drops wall-clock and
        executor provenance).
        """
        text = json.dumps(
            self.to_dict(include_execution=include_execution),
            indent=indent, sort_keys=True,
        )
        if path is not None:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
        return text

    def canonical_json(self, include_execution: bool = False) -> str:
        """The compact canonical form: sorted keys, no whitespace,
        execution provenance dropped by default.

        Two runs of the same experiment — cached, parallel, serial —
        produce byte-identical output here; the store smoke test and
        the cache-equivalence integration tests compare exactly this.
        """
        return json.dumps(
            self.to_dict(include_execution=include_execution),
            sort_keys=True, separators=(",", ":"), ensure_ascii=True,
        )

    def merge(self, *others: "ResultSet") -> "ResultSet":
        """Compose partial result sets into one schema-v1 set.

        Cells are identified by (workload, full config); the first
        occurrence wins, scanning ``self`` then ``others`` in order —
        so live results take precedence over (possibly older) cached
        or previously saved partial sets.  Meta comes from ``self``.
        """
        merged: List[SweepRun] = []
        seen = set()
        for result_set in (self, *others):
            for run in result_set.runs:
                key = (
                    run.workload,
                    json.dumps(config_to_dict(run.config),
                               sort_keys=True),
                )
                if key in seen:
                    continue
                seen.add(key)
                merged.append(run)
        return ResultSet(merged, self.meta)

    def to_csv(self, path: Optional[str] = None) -> str:
        """Flat CSV: one row per cell, config axes + all metrics."""
        config_cols = [
            "codec", "decompression", "k_compress", "k_decompress",
            "predictor", "granularity", "memory_budget", "eviction",
            "image_scheme", "hierarchy", "assignment",
        ]
        metric_cols = sorted(run_metrics(self.runs[0])) if self.runs \
            else []
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(
            ["workload", "label"] + config_cols + ["ok"] + metric_cols
        )
        for run in self.runs:
            metrics = run_metrics(run)
            writer.writerow(
                [run.workload, run.config.strategy_name]
                + [getattr(run.config, col) for col in config_cols]
                + [run.ok]
                + [metrics[col] for col in metric_cols]
            )
        text = buffer.getvalue()
        if path is not None:
            with open(path, "w", encoding="utf-8", newline="") as handle:
                handle.write(text)
        return text

    @staticmethod
    def load(path: str) -> Dict[str, Any]:
        """Load and schema-check a serialised result set.

        Returns the plain dict form (the stable interchange shape);
        live simulation objects are not reconstructed.
        """
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        if data.get("schema") != SCHEMA_ID:
            raise ValueError(
                f"{path} is not a {SCHEMA_ID} file "
                f"(schema={data.get('schema')!r})"
            )
        if data.get("version") != SCHEMA_VERSION:
            raise ValueError(
                f"{path} has schema version {data.get('version')!r}; "
                f"this build reads version {SCHEMA_VERSION}"
            )
        return data

    def __repr__(self) -> str:
        return (
            f"ResultSet({len(self.runs)} runs, "
            f"{len(self.workloads())} workloads)"
        )
