"""Pluggable experiment executors.

An executor takes the expanded grid as workload-major *partitions* (one
workload's full config row per partition) and produces the flat run list
in deterministic cell order.  Partitioning by workload is what preserves
the PR-1 fast paths under parallelism: within a partition the trace
engine records once and replays the rest, and the per-(CFG, codec)
shared-artifact cache never recompresses identical block bytes.

* :class:`SerialExecutor` runs partitions in order in this process — the
  reference behaviour.
* :class:`ParallelExecutor` fans partitions out to a
  ``ProcessPoolExecutor`` (one task per workload) and reassembles the
  results in submission order, so its output is byte-identical to the
  serial executor's (asserted by
  ``tests/integration/test_parallel_executor.py``).  Workloads are
  shipped to workers *by registry name*; unregistered
  :class:`~repro.workloads.suite.Workload` objects (whose oracle
  closures do not pickle) silently run in-process instead.

Fault tolerance (see :mod:`repro.faults` and ``docs/operations.md``):

* every executor carries an optional
  :class:`~repro.faults.retry.RetryPolicy`; failing cells are retried
  with deterministic backoff and per-cell wall-clock deadlines, and a
  cell that exhausts its attempts becomes a structured error row
  carrying its attempt provenance (never an abort, never cached);
* :class:`ParallelExecutor` survives worker crashes: a broken process
  pool is rebuilt once, and if it breaks again the remaining
  partitions fall back to in-process serial execution with a warning —
  a dying worker degrades throughput, not results;
* Ctrl-C is clean: any exception escaping the dispatch loop shuts the
  pool down with ``cancel_futures=True`` so no worker processes leak.

Simulation runs have no wall-clock or cross-cell dependence, so cell
results do not depend on which process computed them.
"""

from __future__ import annotations

import abc
import logging
import os
import pickle
import time
from concurrent.futures import BrokenExecutor
from concurrent.futures import ProcessPoolExecutor as _ProcessPool
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from ..analysis.sweep import SweepRun, run_one_safe, sweep
from ..core.config import SimulationConfig
from ..faults.retry import RetryPolicy
from ..faults.runtime import classify_fault, retry_scope
from ..log import kv
from ..obs.spans import span
from ..registry import Registry
from ..workloads.suite import Workload, get_workload

_log = logging.getLogger("repro.api.executor")

#: The executor family, in the unified component catalog.
EXECUTORS = Registry("executors")


@dataclass
class Partition:
    """One workload's full grid row — the unit of dispatch.

    ``workload`` is a registry name (shippable to worker processes) or a
    concrete :class:`Workload` object (runs wherever it pickles to).
    """

    workload: Union[str, Workload]
    configs: List[SimulationConfig] = field(default_factory=list)

    @property
    def workload_name(self) -> str:
        if isinstance(self.workload, str):
            return self.workload
        return self.workload.name


def _retry_cell(
    workload: Workload,
    run: SweepRun,
    retry: RetryPolicy,
    max_blocks: Optional[int],
) -> SweepRun:
    """Re-attempt one errored cell under ``retry``.

    Returns either a recovered run or the final error row; both carry
    the attempt provenance (attempt number, fault class, error message,
    per-attempt duration — the first attempt's duration is not
    measured, to keep the fault-free path instrumentation-free).
    """
    if run.error is None:
        return run
    key = f"{run.workload}:{run.config.strategy_name}"
    attempts: List[Dict[str, object]] = [{
        "attempt": 1,
        "fault": classify_fault(run.error),
        "error": run.error,
        "duration_ms": None,
    }]
    current = run
    for attempt in range(2, retry.attempts + 1):
        delay = retry.delay(attempt, key)
        if delay > 0:
            time.sleep(delay)
        started = time.perf_counter()
        with span("cell.retry", cat="retry", cell=key,
                  attempt=attempt):
            current = run_one_safe(workload, run.config,
                                   max_blocks=max_blocks)
        duration_ms = round((time.perf_counter() - started) * 1000, 3)
        attempts.append({
            "attempt": attempt,
            "fault": classify_fault(current.error),
            "error": current.error,
            "duration_ms": duration_ms,
        })
        if current.error is None:
            break
    current.attempts = attempts
    return current


def run_partition(
    workload: Union[str, Workload],
    configs: Sequence[SimulationConfig],
    engine: str,
    fast: bool,
    max_blocks: Optional[int],
    retry: Optional[RetryPolicy] = None,
) -> List[SweepRun]:
    """Run one partition through the sweep engine (any process).

    With a :class:`RetryPolicy`, the partition first runs normally
    (fast paths intact, per-cell deadlines armed); only cells that
    errored are then retried individually — so the fault-free path pays
    nothing for the retry machinery.
    """
    if isinstance(workload, str):
        workload = get_workload(workload)
    with retry_scope(retry), span(
        f"partition:{workload.name}", cat="compute",
        workload=workload.name, cells=len(configs), engine=engine,
    ):
        runs = sweep(
            [workload], list(configs), fast=fast, max_blocks=max_blocks,
            engine=engine,
        ).runs
        if retry is not None and retry.attempts > 1 and any(
            run.error is not None for run in runs
        ):
            runs = [
                _retry_cell(workload, run, retry, max_blocks)
                for run in runs
            ]
    return runs


class Executor(abc.ABC):
    """Runs expanded experiment partitions, deterministically ordered."""

    name: str = "abstract"

    def __init__(
        self,
        jobs: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.jobs = jobs if jobs is not None else 1
        self.retry = retry

    @abc.abstractmethod
    def run(
        self,
        partitions: Sequence[Partition],
        engine: str = "machine",
        fast: bool = True,
        max_blocks: Optional[int] = None,
    ) -> List[SweepRun]:
        """Execute every partition; returns runs in cell order (the
        partition order given, configs in order within each)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(jobs={self.jobs})"


@EXECUTORS.register("serial")
class SerialExecutor(Executor):
    """In-process, in-order execution — the reference executor."""

    def __init__(
        self,
        jobs: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        super().__init__(1, retry)  # always one job, whatever was asked

    def run(
        self,
        partitions: Sequence[Partition],
        engine: str = "machine",
        fast: bool = True,
        max_blocks: Optional[int] = None,
    ) -> List[SweepRun]:
        runs: List[SweepRun] = []
        for partition in partitions:
            runs.extend(
                run_partition(partition.workload, partition.configs,
                              engine, fast, max_blocks, self.retry)
            )
        return runs


def _shippable(partition: Partition) -> bool:
    """True when the partition can be sent to a worker process."""
    if isinstance(partition.workload, str):
        return True
    try:
        pickle.dumps(partition.workload)
        return True
    except Exception:
        return False


@EXECUTORS.register("parallel")
class ParallelExecutor(Executor):
    """Process-pool execution, one task per workload partition.

    ``jobs=None`` uses ``os.cpu_count()``.  Results are reassembled in
    partition order, so the output is identical to
    :class:`SerialExecutor` — parallelism changes wall-clock time only.

    Degradation ladder on a broken pool (a crashed/killed worker):
    rebuild the pool once and resubmit the unfinished partitions; if it
    breaks again, finish them serially in this process.  Both steps log
    a warning and count into :attr:`pool_rebuilds` /
    :attr:`serial_fallback`; neither changes any result.
    """

    #: Pool rebuilds attempted before degrading to serial execution.
    MAX_POOL_REBUILDS = 1

    def __init__(
        self,
        jobs: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        super().__init__(jobs if jobs is not None else os.cpu_count() or 1,
                         retry)
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        #: Cumulative count of pools rebuilt after worker crashes.
        self.pool_rebuilds = 0
        #: True once any partition had to fall back to serial execution.
        self.serial_fallback = False

    def _make_pool(self, workers: int) -> _ProcessPool:
        """Pool factory (separate so tests can substitute doubles)."""
        return _ProcessPool(max_workers=workers)

    def _run_local(
        self,
        partition: Partition,
        engine: str,
        fast: bool,
        max_blocks: Optional[int],
    ) -> List[SweepRun]:
        return run_partition(partition.workload, partition.configs,
                             engine, fast, max_blocks, self.retry)

    def run(
        self,
        partitions: Sequence[Partition],
        engine: str = "machine",
        fast: bool = True,
        max_blocks: Optional[int] = None,
    ) -> List[SweepRun]:
        partitions = list(partitions)
        shippable = [i for i, p in enumerate(partitions) if _shippable(p)]
        workers = min(self.jobs, len(shippable))
        per_partition: List[Optional[List[SweepRun]]] = (
            [None] * len(partitions)
        )
        local = [i for i in range(len(partitions))
                 if i not in set(shippable)]
        if workers > 1:
            pending = list(shippable)
            rebuilds = 0
            first_pass = True
            while pending:
                pool = self._make_pool(min(workers, len(pending)))
                broken = False
                try:
                    futures = {
                        i: pool.submit(
                            run_partition, partitions[i].workload,
                            partitions[i].configs, engine, fast,
                            max_blocks, self.retry,
                        )
                        for i in pending
                    }
                    if first_pass:
                        # Local (unpicklable) partitions overlap with
                        # the pool.
                        first_pass = False
                        for i in local:
                            per_partition[i] = self._run_local(
                                partitions[i], engine, fast, max_blocks
                            )
                    for i in list(pending):
                        try:
                            per_partition[i] = futures[i].result()
                            pending.remove(i)
                        except BrokenExecutor:
                            broken = True
                            break  # the pool is dead; stop draining
                except BrokenExecutor:
                    broken = True  # pool died during submission
                except BaseException:
                    # KeyboardInterrupt (and anything else unexpected):
                    # kill outstanding work so no worker process leaks,
                    # then let the exception propagate.
                    pool.shutdown(wait=False, cancel_futures=True)
                    raise
                pool.shutdown(wait=not broken, cancel_futures=broken)
                if not pending:
                    break
                if not broken:  # pragma: no cover - defensive
                    continue
                rebuilds += 1
                if rebuilds > self.MAX_POOL_REBUILDS:
                    _log.warning(kv(
                        "executor.serial_fallback",
                        reason="pool_broke_after_rebuild",
                        pending_partitions=len(pending),
                    ))
                    self.serial_fallback = True
                    for i in list(pending):
                        per_partition[i] = self._run_local(
                            partitions[i], engine, fast, max_blocks
                        )
                        pending.remove(i)
                    break
                self.pool_rebuilds += 1
                _log.warning(kv(
                    "executor.pool_rebuild",
                    reason="worker_died",
                    pending_partitions=len(pending),
                ))
        else:
            for i, partition in enumerate(partitions):
                per_partition[i] = self._run_local(
                    partition, engine, fast, max_blocks
                )
        runs: List[SweepRun] = []
        for result in per_partition:
            runs.extend(result or [])
        return runs


def make_executor(
    name_or_executor: Union[str, Executor, None],
    jobs: Optional[int] = None,
    store: Union[str, bool, None] = None,
    retry: Optional[RetryPolicy] = None,
) -> Executor:
    """Resolve an executor argument: an instance passes through, a name
    is instantiated from the registry, ``None`` picks serial for one job
    and parallel otherwise.

    ``store`` selects the persistent result cache
    (:mod:`repro.store`): a directory path (or ``True``/``""`` for the
    default directory) wraps the chosen executor in the
    :class:`~repro.store.executor.CachingExecutor`; ``None`` consults
    ``$REPRO_STORE_DIR`` (the opt-in used by the E1-E12 benchmarks);
    ``False`` disables caching outright.

    ``retry`` is the :class:`~repro.faults.retry.RetryPolicy` failing
    cells run under (None = fail fast, the zero-cost default).  It
    applies to registry-built executors; an explicit instance keeps
    whatever policy it was constructed with.
    """
    # Late imports: repro.store.executor imports this module.
    from ..store.cas import resolve_store_dir
    from ..store.executor import CachingExecutor

    kwargs = {"jobs": jobs}
    if retry is not None:
        kwargs["retry"] = retry
    resolved = resolve_store_dir(store)
    if isinstance(name_or_executor, Executor):
        # An explicitly requested store still applies to instance
        # executors (it would be silently lost otherwise).
        if resolved is not None and not isinstance(
            name_or_executor, CachingExecutor
        ):
            return CachingExecutor(
                jobs=jobs, store=resolved, inner=name_or_executor
            )
        return name_or_executor
    if name_or_executor is None:
        name_or_executor = "parallel" if jobs and jobs > 1 else "serial"
    if name_or_executor == "caching":
        if store is False:
            # --no-cache wins over a spec that named the caching
            # executor: fall back to the plain equivalent.
            name_or_executor = (
                "parallel" if jobs and jobs > 1 else "serial"
            )
            return EXECUTORS.create(name_or_executor, **kwargs)
        return CachingExecutor(store=resolved, **kwargs)
    if resolved is not None:
        return CachingExecutor(
            store=resolved, inner=name_or_executor, **kwargs
        )
    return EXECUTORS.create(name_or_executor, **kwargs)
