"""Pluggable experiment executors.

An executor takes the expanded grid as workload-major *partitions* (one
workload's full config row per partition) and produces the flat run list
in deterministic cell order.  Partitioning by workload is what preserves
the PR-1 fast paths under parallelism: within a partition the trace
engine records once and replays the rest, and the per-(CFG, codec)
shared-artifact cache never recompresses identical block bytes.

* :class:`SerialExecutor` runs partitions in order in this process — the
  reference behaviour.
* :class:`ParallelExecutor` fans partitions out to a
  ``ProcessPoolExecutor`` (one task per workload) and reassembles the
  results in submission order, so its output is byte-identical to the
  serial executor's (asserted by
  ``tests/integration/test_parallel_executor.py``).  Workloads are
  shipped to workers *by registry name*; unregistered
  :class:`~repro.workloads.suite.Workload` objects (whose oracle
  closures do not pickle) silently run in-process instead.

Simulation runs have no wall-clock or cross-cell dependence, so cell
results do not depend on which process computed them.
"""

from __future__ import annotations

import abc
import os
import pickle
from concurrent.futures import ProcessPoolExecutor as _ProcessPool
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from ..analysis.sweep import SweepRun, sweep
from ..core.config import SimulationConfig
from ..registry import Registry
from ..workloads.suite import Workload, get_workload

#: The executor family, in the unified component catalog.
EXECUTORS = Registry("executors")


@dataclass
class Partition:
    """One workload's full grid row — the unit of dispatch.

    ``workload`` is a registry name (shippable to worker processes) or a
    concrete :class:`Workload` object (runs wherever it pickles to).
    """

    workload: Union[str, Workload]
    configs: List[SimulationConfig] = field(default_factory=list)

    @property
    def workload_name(self) -> str:
        if isinstance(self.workload, str):
            return self.workload
        return self.workload.name


def run_partition(
    workload: Union[str, Workload],
    configs: Sequence[SimulationConfig],
    engine: str,
    fast: bool,
    max_blocks: Optional[int],
) -> List[SweepRun]:
    """Run one partition through the sweep engine (any process)."""
    if isinstance(workload, str):
        workload = get_workload(workload)
    return sweep(
        [workload], list(configs), fast=fast, max_blocks=max_blocks,
        engine=engine,
    ).runs


class Executor(abc.ABC):
    """Runs expanded experiment partitions, deterministically ordered."""

    name: str = "abstract"

    def __init__(self, jobs: Optional[int] = None) -> None:
        self.jobs = jobs if jobs is not None else 1

    @abc.abstractmethod
    def run(
        self,
        partitions: Sequence[Partition],
        engine: str = "machine",
        fast: bool = True,
        max_blocks: Optional[int] = None,
    ) -> List[SweepRun]:
        """Execute every partition; returns runs in cell order (the
        partition order given, configs in order within each)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(jobs={self.jobs})"


@EXECUTORS.register("serial")
class SerialExecutor(Executor):
    """In-process, in-order execution — the reference executor."""

    def __init__(self, jobs: Optional[int] = None) -> None:
        super().__init__(1)  # always one job, whatever the caller asked

    def run(
        self,
        partitions: Sequence[Partition],
        engine: str = "machine",
        fast: bool = True,
        max_blocks: Optional[int] = None,
    ) -> List[SweepRun]:
        runs: List[SweepRun] = []
        for partition in partitions:
            runs.extend(
                run_partition(partition.workload, partition.configs,
                              engine, fast, max_blocks)
            )
        return runs


def _shippable(partition: Partition) -> bool:
    """True when the partition can be sent to a worker process."""
    if isinstance(partition.workload, str):
        return True
    try:
        pickle.dumps(partition.workload)
        return True
    except Exception:
        return False


@EXECUTORS.register("parallel")
class ParallelExecutor(Executor):
    """Process-pool execution, one task per workload partition.

    ``jobs=None`` uses ``os.cpu_count()``.  Results are reassembled in
    partition order, so the output is identical to
    :class:`SerialExecutor` — parallelism changes wall-clock time only.
    """

    def __init__(self, jobs: Optional[int] = None) -> None:
        super().__init__(jobs if jobs is not None else os.cpu_count() or 1)
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")

    def run(
        self,
        partitions: Sequence[Partition],
        engine: str = "machine",
        fast: bool = True,
        max_blocks: Optional[int] = None,
    ) -> List[SweepRun]:
        partitions = list(partitions)
        shippable = [i for i, p in enumerate(partitions) if _shippable(p)]
        workers = min(self.jobs, len(shippable))
        per_partition: List[Optional[List[SweepRun]]] = (
            [None] * len(partitions)
        )
        if workers > 1:
            with _ProcessPool(max_workers=workers) as pool:
                futures = {
                    i: pool.submit(
                        run_partition, partitions[i].workload,
                        partitions[i].configs, engine, fast, max_blocks,
                    )
                    for i in shippable
                }
                # Local (unpicklable) partitions overlap with the pool.
                for i, partition in enumerate(partitions):
                    if i not in futures:
                        per_partition[i] = run_partition(
                            partition.workload, partition.configs,
                            engine, fast, max_blocks,
                        )
                for i, future in futures.items():
                    per_partition[i] = future.result()
        else:
            for i, partition in enumerate(partitions):
                per_partition[i] = run_partition(
                    partition.workload, partition.configs,
                    engine, fast, max_blocks,
                )
        runs: List[SweepRun] = []
        for result in per_partition:
            runs.extend(result or [])
        return runs


def make_executor(
    name_or_executor: Union[str, Executor, None],
    jobs: Optional[int] = None,
    store: Union[str, bool, None] = None,
) -> Executor:
    """Resolve an executor argument: an instance passes through, a name
    is instantiated from the registry, ``None`` picks serial for one job
    and parallel otherwise.

    ``store`` selects the persistent result cache
    (:mod:`repro.store`): a directory path (or ``True``/``""`` for the
    default directory) wraps the chosen executor in the
    :class:`~repro.store.executor.CachingExecutor`; ``None`` consults
    ``$REPRO_STORE_DIR`` (the opt-in used by the E1-E12 benchmarks);
    ``False`` disables caching outright.
    """
    # Late imports: repro.store.executor imports this module.
    from ..store.cas import resolve_store_dir
    from ..store.executor import CachingExecutor

    resolved = resolve_store_dir(store)
    if isinstance(name_or_executor, Executor):
        # An explicitly requested store still applies to instance
        # executors (it would be silently lost otherwise).
        if resolved is not None and not isinstance(
            name_or_executor, CachingExecutor
        ):
            return CachingExecutor(
                jobs=jobs, store=resolved, inner=name_or_executor
            )
        return name_or_executor
    if name_or_executor is None:
        name_or_executor = "parallel" if jobs and jobs > 1 else "serial"
    if name_or_executor == "caching":
        if store is False:
            # --no-cache wins over a spec that named the caching
            # executor: fall back to the plain equivalent.
            name_or_executor = (
                "parallel" if jobs and jobs > 1 else "serial"
            )
            return EXECUTORS.create(name_or_executor, jobs=jobs)
        return CachingExecutor(jobs=jobs, store=resolved)
    if resolved is not None:
        return CachingExecutor(
            jobs=jobs, store=resolved, inner=name_or_executor
        )
    return EXECUTORS.create(name_or_executor, jobs=jobs)
