"""``repro.api`` — the public experiment facade.

This package is the one entry point consumers (CLI subcommands, the
E1-E12 benchmarks, the examples) build on:

* **describe** a scenario grid declaratively with
  :class:`~repro.api.spec.ExperimentSpec` and the :func:`grid` /
  :func:`zip_axes` / :func:`cases` axis combinators (or a JSON spec
  file);
* **execute** it through a pluggable
  :class:`~repro.api.executor.Executor` — serial, or process-parallel
  across workloads with identical output;
* **consume** a versioned :class:`~repro.api.results.ResultSet` with
  ``filter``/``pivot``/``series`` helpers replacing per-benchmark table
  code.

``repro.analysis.sweep`` remains the internal engine layer underneath;
everything pluggable (codecs, decompression strategies, predictors,
workloads, sweep engines, executors) registers through the unified
:class:`~repro.registry.Registry` catalog, listed by
:func:`list_components`.

Quickstart::

    from repro import api

    spec = api.ExperimentSpec(
        workloads=["composite", "fsm"],
        base={"codec": "shared-dict", "decompression": "ondemand"},
        axes=api.grid(k_compress=[1, 2, 4, 8, "inf"]),
        engine="trace",
    )
    rs = api.run_experiment(spec, jobs=4)
    print(rs.pivot(value="average_saving", cols="k_compress").render())
    rs.to_json("results.json")
"""

from __future__ import annotations

import time
from typing import Any, List, Optional, Sequence, Union

from ..analysis.sweep import ENGINES, SweepRun, available_engines, run_one
from ..cfg.builder import ProgramCFG, build_cfg
from ..core.config import SimulationConfig
from ..core.manager import CodeCompressionManager
from ..faults import FaultPlan, FaultRule, RetryPolicy, install_plan
from ..registry import Registry, all_registries
from ..runtime.metrics import SimulationResult
from ..workloads.suite import Workload
from .executor import (
    EXECUTORS,
    Executor,
    ParallelExecutor,
    Partition,
    SerialExecutor,
    make_executor,
)
from .results import (
    SCHEMA_ID,
    SCHEMA_VERSION,
    ResultSet,
    config_to_dict,
)
from .spec import (
    Cell,
    ExperimentSpec,
    SpecError,
    cases,
    grid,
    parse_k,
    zip_axes,
)

def run_cell(
    workload: Union[str, Workload],
    config: SimulationConfig,
    cfg: Optional[ProgramCFG] = None,
    max_blocks: Optional[int] = None,
):
    """Run one (workload, config) cell and validate it against the
    workload oracle.

    The facade sibling of the internal
    :func:`~repro.analysis.sweep.run_one`: it additionally resolves
    workload registry names, like :func:`run_grid` does.
    """
    if isinstance(workload, str):
        from ..workloads.suite import get_workload

        workload = get_workload(workload)
    return run_one(workload, config, cfg=cfg, max_blocks=max_blocks)


def _cache_meta(executor: Executor) -> "dict[str, Any]":
    """Execution-provenance cache stats, when the executor keeps any."""
    hits = getattr(executor, "hits", None)
    misses = getattr(executor, "misses", None)
    if hits is None or misses is None:
        return {}
    store = getattr(executor, "store", None)
    return {
        "cache": {
            "hits": hits,
            "misses": misses,
            "store": getattr(store, "root", None),
        }
    }


def run_experiment(
    spec: ExperimentSpec,
    executor: Union[str, Executor, None] = None,
    jobs: Optional[int] = None,
    store: Union[str, bool, None] = None,
    retry: Optional[RetryPolicy] = None,
) -> ResultSet:
    """Expand and execute a spec; the declarative entry point.

    ``executor``/``jobs``/``store`` override the spec's own choices
    (the CLI's ``--jobs N`` and ``--store DIR``/``--no-cache`` flow
    through here).  A resolved store wraps the chosen executor in the
    :class:`~repro.store.executor.CachingExecutor`, so only missing or
    changed cells are computed.  ``retry`` is the
    :class:`~repro.faults.RetryPolicy` failing cells run under (the
    CLI's ``--retries``/``--cell-timeout``); None fails fast.
    """
    effective_jobs = jobs if jobs is not None else spec.jobs
    if executor is None:
        if jobs is not None and jobs > 1:
            executor = "parallel"
        else:
            executor = spec.executor
    if store is None:
        store = spec.store
    chosen = make_executor(executor, jobs=effective_jobs, store=store,
                           retry=retry)
    partitions = [
        Partition(workload=name, configs=configs)
        for name, configs in spec.partitions()
    ]
    started = time.perf_counter()
    runs = chosen.run(
        partitions, engine=spec.engine, fast=spec.fast,
        max_blocks=spec.max_blocks,
    )
    elapsed = time.perf_counter() - started
    return ResultSet(
        runs,
        meta={
            "name": spec.name,
            "engine": spec.engine,
            "executor": chosen.name,
            "jobs": chosen.jobs,
            "timing": {"elapsed_s": elapsed},
            **_cache_meta(chosen),
        },
    )


def run_grid(
    workloads: Sequence[Union[str, Workload]],
    configs: Sequence[SimulationConfig],
    engine: str = "machine",
    executor: Union[str, Executor, None] = None,
    jobs: Optional[int] = None,
    fast: bool = True,
    max_blocks: Optional[int] = None,
    store: Union[str, bool, None] = None,
    retry: Optional[RetryPolicy] = None,
) -> ResultSet:
    """Run an already-expanded (workloads x configs) grid.

    The imperative sibling of :func:`run_experiment`, for callers that
    build :class:`SimulationConfig` objects directly (the benchmarks) or
    hold unregistered :class:`Workload` objects (synthetic programs).
    ``store=None`` consults ``$REPRO_STORE_DIR`` — the opt-in that lets
    the E1-E12 benchmarks reuse cached cells with no code change.
    """
    if engine not in ENGINES:
        raise ValueError(
            f"unknown sweep engine '{engine}'; "
            f"available: {tuple(available_engines())}"
        )
    chosen = make_executor(executor, jobs=jobs, store=store, retry=retry)
    partitions = [
        Partition(workload=workload, configs=list(configs))
        for workload in workloads
    ]
    started = time.perf_counter()
    runs = chosen.run(
        partitions, engine=engine, fast=fast, max_blocks=max_blocks
    )
    elapsed = time.perf_counter() - started
    return ResultSet(
        runs,
        meta={
            "engine": engine,
            "executor": chosen.name,
            "jobs": chosen.jobs,
            "timing": {"elapsed_s": elapsed},
            **_cache_meta(chosen),
        },
    )


def run_instrumented(
    workload: Union[Workload, ProgramCFG],
    config: Optional[SimulationConfig] = None,
    max_blocks: Optional[int] = None,
):
    """Run one cell and keep the live manager for introspection.

    Returns ``(manager, result)`` — for consumers that need the event
    log, the memory image, or the machine state (E8/E9-style analyses);
    grid runs should use :func:`run_grid` instead.
    """
    if isinstance(workload, ProgramCFG):
        cfg = workload
    else:
        cfg = build_cfg(workload.program)
    manager = CodeCompressionManager(cfg, config)
    result = manager.run(max_blocks=max_blocks)
    return manager, result


def run_traced(
    workload: Union[str, Workload, ProgramCFG],
    config: Optional[SimulationConfig] = None,
    max_blocks: Optional[int] = None,
    engine: str = "machine",
):
    """Run one cell with cycle-domain span tracing armed.

    Returns ``(result, tracer)``: the normal
    :class:`~repro.runtime.metrics.SimulationResult` (with
    ``result.phases`` filled in) plus the
    :class:`~repro.obs.SpanTracer` holding the raw spans — feed it to
    :func:`repro.obs.chrome_trace` for a Perfetto-loadable file, or
    just read ``tracer.phases()``.  ``engine="trace"`` first records a
    block trace interpreted-uncompressed, then traces the replay — the
    same two-step the sweep trace engine performs.

    Tracing never changes the result: the returned metrics are
    byte-identical to an untraced run of the same cell.
    """
    from ..obs.tracer import SpanTracer
    from ..runtime.trace_sim import PreparedTrace, simulate_trace

    if isinstance(workload, ProgramCFG):
        cfg = workload
        name = cfg.name
    else:
        if isinstance(workload, str):
            from ..workloads.suite import get_workload

            workload = get_workload(workload)
        cfg = build_cfg(workload.program)
        name = workload.name
    tracer = SpanTracer(name)
    if engine == "trace":
        recording = CodeCompressionManager(
            cfg,
            SimulationConfig(
                decompression="none", codec="null",
                trace_events=False, record_trace=True,
            ),
        ).run(max_blocks=max_blocks)
        prepared = PreparedTrace.from_result(cfg, recording)
        result = simulate_trace(
            cfg, prepared, config, max_blocks=max_blocks,
            tracer=tracer,
        )
    elif engine == "machine":
        manager = CodeCompressionManager(cfg, config, tracer=tracer)
        result = manager.run(max_blocks=max_blocks)
    else:
        raise ValueError(
            f"unknown engine '{engine}'; run_traced supports "
            f"'machine' and 'trace'"
        )
    return result, tracer


def profile_workload(
    workload: Union[str, Workload],
    max_blocks: Optional[int] = None,
):
    """Record an offline edge profile for a workload.

    Runs the workload once, uncompressed and interpreted (the cheapest
    faithful run), and folds the recorded block trace into an
    :class:`~repro.cfg.profile.EdgeProfile` — the input the
    profile-guided codec-assignment policies
    (:mod:`repro.selection`) and the "static-profile" predictor expect
    in ``SimulationConfig.profile``.  Deterministic, so profiled
    configs still fingerprint stably in the experiment store.
    """
    from ..cfg.profile import profile_from_trace
    from ..workloads.suite import get_workload

    if isinstance(workload, str):
        workload = get_workload(workload)
    run = run_one(
        workload,
        SimulationConfig(
            decompression="none", codec="null",
            trace_events=False, record_trace=True,
        ),
        max_blocks=max_blocks,
    )
    if run.result.trace_truncated:
        # A truncated trace would under-count everything executed
        # after the cap and silently mis-rank hot units; refuse, like
        # PreparedTrace does for replays.
        raise ValueError(
            "profiling run hit the block-trace recording cap, so the "
            "profile would silently miss late execution; profile a "
            "bounded prefix explicitly via max_blocks instead"
        )
    return profile_from_trace(run.result.block_trace)


def list_components() -> "dict[str, List[str]]":
    """Every pluggable component family, from the unified registry
    catalog (codecs, strategies, predictors, workloads, engines,
    executors, hierarchies, assignment policies)."""
    return {
        kind: registry.names()
        for kind, registry in all_registries().items()
    }


# Registers the "caching" executor in EXECUTORS.  A module (not name)
# import: repro.store.executor imports this package, and during that
# circular first import the name would not be bound yet.
from ..store import executor as _store_executor  # noqa: E402


def __getattr__(name: str):
    if name == "CachingExecutor":
        return _store_executor.CachingExecutor
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )


__all__ = [
    "CachingExecutor",
    "Cell",
    "EXECUTORS",
    "ENGINES",
    "Executor",
    "ExperimentSpec",
    "FaultPlan",
    "FaultRule",
    "ParallelExecutor",
    "Partition",
    "Registry",
    "RetryPolicy",
    "ResultSet",
    "SCHEMA_ID",
    "SCHEMA_VERSION",
    "SerialExecutor",
    "SpecError",
    "SweepRun",
    "all_registries",
    "available_engines",
    "cases",
    "config_to_dict",
    "grid",
    "install_plan",
    "list_components",
    "make_executor",
    "parse_k",
    "profile_workload",
    "run_cell",
    "run_experiment",
    "run_grid",
    "run_instrumented",
    "run_traced",
    "zip_axes",
]
