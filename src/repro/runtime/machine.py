"""Cycle-accounted interpreter for the target ISA.

The machine interprets every instruction (so kernels compute real,
assertable results) but reports control flow at basic-block granularity:
:meth:`Machine.run_block` executes one block and returns the successor
block plus the cycles spent.  The *compression* machinery lives above, in
the simulator — the machine itself is oblivious to whether blocks are
compressed; it only sees decoded instructions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..cfg.basic_block import BasicBlock
from ..cfg.builder import ProgramCFG
from ..isa.instructions import (
    INSTRUCTION_SIZE,
    Instruction,
    NUM_REGISTERS,
    Opcode,
    RA,
    SP,
)

_WORD_MASK = 0xFFFFFFFF


class MachineError(RuntimeError):
    """Raised on runtime faults: division by zero, bad memory access,
    runaway execution."""


@dataclass(frozen=True)
class BlockOutcome:
    """Result of executing one basic block."""

    block_id: int
    next_block_id: Optional[int]  # None when the program halted
    cycles: int
    instructions: int
    edge_kind: str = "none"  # fallthrough / taken / jump / call / return


def _to_signed(value: int) -> int:
    value &= _WORD_MASK
    return value - 0x100000000 if value >= 0x80000000 else value


class Machine:
    """The execution thread's CPU model.

    ``data_words`` sizes the byte-addressed data memory (word granular).
    ``max_steps`` bounds total executed instructions to catch runaway
    kernels deterministically.
    """

    #: Engine tag carried into :class:`SimulationResult.engine`.
    engine_name = "machine"

    def __init__(
        self,
        cfg: ProgramCFG,
        data_words: int = 1 << 16,
        max_steps: int = 50_000_000,
    ) -> None:
        self.cfg = cfg
        self.registers: List[int] = [0] * NUM_REGISTERS
        self.memory: List[int] = [0] * data_words
        self.max_steps = max_steps
        self.steps = 0
        self.halted = False
        # Stack pointer starts at the top of data memory.
        self.registers[SP] = (data_words - 1) * 4

    # ------------------------------------------------------------------
    # Memory helpers
    # ------------------------------------------------------------------

    def load_word(self, address: int) -> int:
        """Read the 32-bit word at byte ``address`` (must be aligned)."""
        index = self._word_index(address)
        return self.memory[index]

    def store_word(self, address: int, value: int) -> None:
        """Write the 32-bit word at byte ``address`` (must be aligned)."""
        index = self._word_index(address)
        self.memory[index] = _to_signed(value)

    def _word_index(self, address: int) -> int:
        if address % 4:
            raise MachineError(f"misaligned data access at {address:#x}")
        index = address // 4
        if not 0 <= index < len(self.memory):
            raise MachineError(f"data address {address:#x} out of range")
        return index

    # ------------------------------------------------------------------
    # Register helpers
    # ------------------------------------------------------------------

    def _set(self, register: int, value: int) -> None:
        self.registers[register] = _to_signed(value)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def reset(self) -> None:
        """Reset registers, memory, halt flag and step counter."""
        self.registers = [0] * NUM_REGISTERS
        for index in range(len(self.memory)):
            self.memory[index] = 0
        self.registers[SP] = (len(self.memory) - 1) * 4
        self.steps = 0
        self.halted = False

    def run_block(self, block: BasicBlock) -> BlockOutcome:
        """Execute ``block`` to completion and report the successor.

        The successor is decided by the terminator (branch condition
        evaluated against live register state, RET via the link register,
        fall-through otherwise).
        """
        if self.halted:
            raise MachineError("machine is halted")
        registers = self.registers
        cycles = 0
        executed = 0

        for instr in block.instructions:
            op = instr.opcode
            cycles += instr.cycles
            executed += 1
            self.steps += 1
            if self.steps > self.max_steps:
                raise MachineError(
                    f"exceeded max_steps={self.max_steps} "
                    f"(infinite loop in '{self.cfg.name}'?)"
                )

            if op is Opcode.NOP:
                pass
            elif op is Opcode.ADD:
                self._set(instr.rd, registers[instr.rs1] + registers[instr.rs2])
            elif op is Opcode.SUB:
                self._set(instr.rd, registers[instr.rs1] - registers[instr.rs2])
            elif op is Opcode.MUL:
                self._set(instr.rd, registers[instr.rs1] * registers[instr.rs2])
            elif op is Opcode.DIV:
                divisor = registers[instr.rs2]
                if divisor == 0:
                    raise MachineError("division by zero")
                # Truncating division in exact integer arithmetic (C
                # semantics); float division would round for operands
                # beyond 2**53.
                dividend = registers[instr.rs1]
                quotient = abs(dividend) // abs(divisor)
                if (dividend < 0) != (divisor < 0):
                    quotient = -quotient
                self._set(instr.rd, quotient)
            elif op is Opcode.MOD:
                divisor = registers[instr.rs2]
                if divisor == 0:
                    raise MachineError("modulo by zero")
                dividend = registers[instr.rs1]
                quotient = abs(dividend) // abs(divisor)
                if (dividend < 0) != (divisor < 0):
                    quotient = -quotient
                self._set(instr.rd, dividend - quotient * divisor)
            elif op is Opcode.AND:
                self._set(instr.rd, registers[instr.rs1] & registers[instr.rs2])
            elif op is Opcode.OR:
                self._set(instr.rd, registers[instr.rs1] | registers[instr.rs2])
            elif op is Opcode.XOR:
                self._set(instr.rd, registers[instr.rs1] ^ registers[instr.rs2])
            elif op is Opcode.SHL:
                self._set(
                    instr.rd,
                    registers[instr.rs1] << (registers[instr.rs2] & 31),
                )
            elif op is Opcode.SHR:
                self._set(
                    instr.rd,
                    (registers[instr.rs1] & _WORD_MASK)
                    >> (registers[instr.rs2] & 31),
                )
            elif op is Opcode.SLT:
                self._set(
                    instr.rd,
                    1 if registers[instr.rs1] < registers[instr.rs2] else 0,
                )
            elif op is Opcode.ADDI:
                self._set(instr.rd, registers[instr.rs1] + instr.imm)
            elif op is Opcode.SUBI:
                self._set(instr.rd, registers[instr.rs1] - instr.imm)
            elif op is Opcode.MULI:
                self._set(instr.rd, registers[instr.rs1] * instr.imm)
            elif op is Opcode.ANDI:
                self._set(instr.rd, registers[instr.rs1] & instr.imm)
            elif op is Opcode.ORI:
                self._set(instr.rd, registers[instr.rs1] | instr.imm)
            elif op is Opcode.XORI:
                self._set(instr.rd, registers[instr.rs1] ^ instr.imm)
            elif op is Opcode.SHLI:
                self._set(instr.rd, registers[instr.rs1] << (instr.imm & 31))
            elif op is Opcode.SHRI:
                self._set(
                    instr.rd,
                    (registers[instr.rs1] & _WORD_MASK) >> (instr.imm & 31),
                )
            elif op is Opcode.SLTI:
                self._set(
                    instr.rd, 1 if registers[instr.rs1] < instr.imm else 0
                )
            elif op is Opcode.LI:
                self._set(instr.rd, instr.imm)
            elif op is Opcode.LUI:
                self._set(instr.rd, (instr.imm & 0xFFFF) << 16)
            elif op is Opcode.MOV:
                self._set(instr.rd, registers[instr.rs1])
            elif op is Opcode.LD:
                self._set(
                    instr.rd,
                    self.load_word(registers[instr.rs1] + instr.imm),
                )
            elif op is Opcode.ST:
                self.store_word(
                    registers[instr.rs1] + instr.imm, registers[instr.rs2]
                )
            elif op is Opcode.HALT:
                self.halted = True
                return BlockOutcome(
                    block.block_id, None, cycles, executed, "none"
                )
            elif op is Opcode.BEQ or op is Opcode.BNE or \
                    op is Opcode.BLT or op is Opcode.BGE:
                taken = self._evaluate_branch(instr)
                if taken:
                    dest = self.cfg.block_at_address(instr.imm)
                    return BlockOutcome(
                        block.block_id, dest.block_id, cycles, executed,
                        "taken",
                    )
                next_block = self.cfg.block_starting_at(block.end_index)
                return BlockOutcome(
                    block.block_id, next_block.block_id, cycles, executed,
                    "fallthrough",
                )
            elif op is Opcode.JMP:
                dest = self.cfg.block_at_address(instr.imm)
                return BlockOutcome(
                    block.block_id, dest.block_id, cycles, executed, "jump"
                )
            elif op is Opcode.CALL:
                return_address = block.end_index * INSTRUCTION_SIZE
                self._set(RA, return_address)
                dest = self.cfg.block_at_address(instr.imm)
                return BlockOutcome(
                    block.block_id, dest.block_id, cycles, executed, "call"
                )
            elif op is Opcode.RET:
                dest = self.cfg.block_starting_at(
                    self.cfg.program.index_of_address(registers[RA])
                )
                return BlockOutcome(
                    block.block_id, dest.block_id, cycles, executed,
                    "return",
                )
            else:  # pragma: no cover - all opcodes handled above
                raise MachineError(f"unhandled opcode {op!r}")

        # Block ended without a terminator: fall through in layout order.
        next_block = self.cfg.block_starting_at(block.end_index)
        return BlockOutcome(
            block.block_id, next_block.block_id, cycles, executed,
            "fallthrough",
        )

    def _evaluate_branch(self, instr: Instruction) -> bool:
        a = self.registers[instr.rs1]
        b = self.registers[instr.rs2]
        op = instr.opcode
        if op is Opcode.BEQ:
            return a == b
        if op is Opcode.BNE:
            return a != b
        if op is Opcode.BLT:
            return a < b
        return a >= b  # BGE
