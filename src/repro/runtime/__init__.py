"""Runtime substrate: machine, events, metrics, background threads."""

from .events import Event, EventKind, EventLog
from .machine import BlockOutcome, Machine, MachineError
from .metrics import Counters, FootprintTimeline, SimulationResult
from .threads import BackgroundWorker, Job
from .trace_sim import PreparedTrace, TraceMachine, simulate_trace

__all__ = [
    "BackgroundWorker",
    "BlockOutcome",
    "Counters",
    "Event",
    "EventKind",
    "EventLog",
    "FootprintTimeline",
    "Job",
    "Machine",
    "MachineError",
    "PreparedTrace",
    "SimulationResult",
    "TraceMachine",
    "simulate_trace",
]
