"""Deterministic background-thread timelines (Figure 4 of the paper).

The paper employs three threads: execution, decompression, compression.
We model the two background threads as single-server FIFO work queues on
the same cycle clock as the execution thread:

* a job scheduled at cycle ``t`` starts when the worker is free and
  completes ``latency`` cycles later;
* the execution thread stalls only when it *reaches* a block whose
  decompression has not completed (it waits for the remainder);
* cancelling a job (e.g. the k-edge policy recompresses a block whose
  pre-decompression never started) refunds the un-performed work and
  re-chains the queue — the worker only "spends" cycles it actually
  worked;
* "the compression thread utilizes the idle cycles of the execution
  thread" (Section 3) — by default background work is free for the
  execution thread (separate core / DMA engine); an optional
  ``contention`` factor charges the execution thread a fraction of every
  busy background cycle to model a shared single-issue core.

Determinism: no real threads, just arithmetic on completion times, so all
experiments reproduce exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass
class Job:
    """A background job for one block/unit."""

    block_id: int
    latency: int
    scheduled_at: int
    started_at: int
    completes_at: int
    seq: int

    @property
    def queue_delay(self) -> int:
        """Cycles the job waited before service."""
        return self.started_at - self.scheduled_at


class BackgroundWorker:
    """Single-server FIFO work queue on the global cycle clock.

    ``contention`` in [0, 1] is the fraction of each busy background cycle
    that the execution thread must additionally pay (0 = perfectly
    parallel, 1 = fully serialised on the main core).
    """

    def __init__(self, name: str, contention: float = 0.0) -> None:
        if not 0.0 <= contention <= 1.0:
            raise ValueError(
                f"contention must be in [0, 1], got {contention}"
            )
        self.name = name
        self.contention = contention
        self.free_at = 0
        self.busy_cycles = 0  # work actually performed (refunds applied)
        self.jobs_completed = 0
        self.jobs_cancelled = 0
        self._pending: Dict[int, Job] = {}
        self._seq = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(self, now: int, block_id: int, latency: int) -> Job:
        """Enqueue a job for ``block_id``; returns the Job with its
        completion time.  At most one outstanding job per block."""
        if latency < 0:
            raise ValueError(f"latency must be >= 0, got {latency}")
        existing = self._pending.get(block_id)
        if existing is not None:
            return existing
        started = max(now, self.free_at)
        job = Job(
            block_id=block_id,
            latency=latency,
            scheduled_at=now,
            started_at=started,
            completes_at=started + latency,
            seq=self._seq,
        )
        self._seq += 1
        self.free_at = job.completes_at
        self.busy_cycles += latency
        self._pending[block_id] = job
        return job

    def cancel(self, block_id: int, now: Optional[int] = None) -> Optional[Job]:
        """Drop the pending job for ``block_id``.

        With ``now`` given, un-performed work is refunded: a job that has
        not started yet costs nothing; a job in flight keeps only its
        elapsed service time.  Queued jobs behind it are re-chained to
        start earlier.
        """
        job = self._pending.pop(block_id, None)
        if job is None:
            return None
        self.jobs_cancelled += 1
        if now is None:
            return job
        if job.started_at >= now:
            refund = job.latency
        else:
            refund = max(0, job.completes_at - now)
        self.busy_cycles -= refund
        self._rechain(now)
        return job

    def _rechain(self, now: int) -> None:
        """Recompute start/completion times after a cancellation.

        Jobs already finished or in flight keep their times; jobs not yet
        started are re-packed FIFO behind them.
        """
        jobs = sorted(self._pending.values(), key=lambda job: job.seq)
        cursor = now
        for job in jobs:
            if job.started_at < now:
                # Finished or in flight: immovable.
                cursor = max(cursor, job.completes_at)
        for job in jobs:
            if job.started_at >= now:
                job.started_at = max(cursor, job.scheduled_at)
                job.completes_at = job.started_at + job.latency
                cursor = job.completes_at
        self.free_at = cursor

    def absorb_jobs(
        self,
        free_at: int,
        busy_delta: int,
        scheduled: int,
        completed: int,
        pending,
    ) -> None:
        """Absorb a batch of externally simulated jobs.

        The batched trace-replay kernel simulates this worker's FIFO
        arithmetic in local variables (same schedule/retire rules) and
        settles the result here: the clock (``free_at``), the performed
        work, the completed-job tally, and any still-outstanding jobs as
        ``(block_id, latency, scheduled_at, started_at, completes_at)``
        tuples in schedule order.
        """
        self.free_at = free_at
        self.busy_cycles += busy_delta
        self.jobs_completed += completed
        added = 0
        for block_id, latency, scheduled_at, started, completes in pending:
            self._pending[block_id] = Job(
                block_id=block_id,
                latency=latency,
                scheduled_at=scheduled_at,
                started_at=started,
                completes_at=completes,
                seq=self._seq,
            )
            self._seq += 1
            added += 1
        self._seq += scheduled - added

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def completion_time(self, block_id: int) -> Optional[int]:
        """Completion cycle of the pending job for ``block_id``, if any."""
        job = self._pending.get(block_id)
        return None if job is None else job.completes_at

    def is_pending(self, block_id: int, now: int) -> bool:
        """True if ``block_id`` has a job that completes after ``now``."""
        job = self._pending.get(block_id)
        return job is not None and job.completes_at > now

    def retire_completed(self, now: int) -> List[Job]:
        """Remove and return jobs completed by ``now``."""
        if not self._pending:
            return []
        done = [
            job for job in self._pending.values() if job.completes_at <= now
        ]
        for job in done:
            del self._pending[job.block_id]
            self.jobs_completed += 1
        return sorted(done, key=lambda job: (job.completes_at, job.seq))

    def pending_jobs(self) -> List[Job]:
        """Snapshot of outstanding jobs in FIFO order."""
        return sorted(self._pending.values(), key=lambda job: job.seq)

    def backlog(self) -> int:
        """Number of outstanding jobs."""
        return len(self._pending)

    def contention_cycles(self) -> int:
        """Execution-thread cycles charged for sharing the core."""
        return int(round(self.busy_cycles * self.contention))
