"""Event trace of a simulation run.

The Figure 5 walk-through of the paper is an *event sequence* (faults,
decompressions, branch patches, deletions).  The simulator emits these
events so tests and the E9 benchmark can replay and check the exact
scenario, and so users can debug strategy behaviour.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, List, Optional


class EventKind(enum.Enum):
    """Kinds of trace events emitted by the simulator."""

    BLOCK_ENTER = "block_enter"
    FAULT = "fault"                    # fetch hit a compressed block
    DECOMPRESS_START = "decompress_start"
    DECOMPRESS_DONE = "decompress_done"
    STALL = "stall"                    # execution waited on decompression
    RECOMPRESS = "recompress"          # decompressed copy deleted (k-edge)
    PATCH = "patch"                    # branch target updated
    EVICT = "evict"                    # budget policy evicted a block
    PREDICT = "predict"                # pre-decompress-single chose a block


@dataclass(frozen=True)
class Event:
    """One trace event.

    ``cycle`` is the execution-thread clock when the event was emitted;
    ``block_id`` the subject block; ``detail`` a small free-form payload
    (stall length, patch count, predicted id...).
    """

    cycle: int
    kind: EventKind
    block_id: int
    detail: int = 0

    def __str__(self) -> str:
        return (
            f"@{self.cycle:>8} {self.kind.value:<16} B{self.block_id}"
            + (f" ({self.detail})" if self.detail else "")
        )


class EventLog:
    """Append-only event trace with query helpers.

    Tracing costs time on big runs, so the log can be disabled (events are
    then dropped); counters in the metrics module are always maintained
    independently of the log.
    """

    def __init__(self, enabled: bool = True, capacity: int = 1_000_000) -> None:
        self.enabled = enabled
        self.capacity = capacity
        self.events: List[Event] = []
        self.dropped = 0

    def emit(
        self, cycle: int, kind: EventKind, block_id: int, detail: int = 0
    ) -> None:
        """Record an event (no-op when disabled or over capacity)."""
        if not self.enabled:
            return
        if len(self.events) >= self.capacity:
            self.dropped += 1
            return
        self.events.append(Event(cycle, kind, block_id, detail))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def of_kind(self, kind: EventKind) -> List[Event]:
        """All events of ``kind`` in order."""
        return [event for event in self.events if event.kind is kind]

    def for_block(self, block_id: int) -> List[Event]:
        """All events touching ``block_id`` in order."""
        return [event for event in self.events if event.block_id == block_id]

    def block_sequence(self) -> List[int]:
        """The executed block-id sequence (BLOCK_ENTER events)."""
        return [
            event.block_id
            for event in self.events
            if event.kind is EventKind.BLOCK_ENTER
        ]

    def kind_sequence(self) -> List[str]:
        """The kinds of all events in order (compact scenario checks)."""
        return [event.kind.value for event in self.events]

    def render(self, limit: Optional[int] = None) -> str:
        """Printable trace (first ``limit`` events)."""
        shown = self.events if limit is None else self.events[:limit]
        lines = [str(event) for event in shown]
        if limit is not None and len(self.events) > limit:
            lines.append(f"... ({len(self.events) - limit} more)")
        return "\n".join(lines)
