"""Metrics: footprint timeline, counters, and the per-run result record.

The paper's two axes are *memory space consumption* and *performance
overhead*; everything in this module exists to measure those two, plus the
secondary quantities (stalls, patches, predictor accuracy) the analysis
sections discuss.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class FootprintTimeline:
    """Piecewise-constant memory footprint over cycle time.

    ``record(cycle, bytes)`` appends a step; peak and time-weighted average
    are computed over [first record, close cycle].
    """

    def __init__(self) -> None:
        self._samples: List[Tuple[int, int]] = []

    def record(self, cycle: int, footprint: int) -> None:
        """Record that the footprint is ``footprint`` from ``cycle`` on."""
        if self._samples and self._samples[-1][0] == cycle:
            self._samples[-1] = (cycle, footprint)
            return
        if self._samples and cycle < self._samples[-1][0]:
            raise ValueError(
                f"footprint recorded out of order: {cycle} after "
                f"{self._samples[-1][0]}"
            )
        self._samples.append((cycle, footprint))

    @property
    def samples(self) -> List[Tuple[int, int]]:
        """The recorded (cycle, footprint) steps."""
        return list(self._samples)

    @classmethod
    def from_samples(
        cls, samples: List[Tuple[int, int]]
    ) -> "FootprintTimeline":
        """Rebuild a timeline from serialised (cycle, footprint) steps.

        Replays through :meth:`record`, so ordering is re-validated and
        a reconstructed timeline is indistinguishable from the original
        (the experiment store round-trips results through this).
        """
        timeline = cls()
        for cycle, footprint in samples:
            timeline.record(int(cycle), int(footprint))
        return timeline

    @property
    def peak(self) -> int:
        """Largest footprint ever recorded."""
        return max((value for _, value in self._samples), default=0)

    def average(self, end_cycle: Optional[int] = None) -> float:
        """Time-weighted average footprint up to ``end_cycle``."""
        if not self._samples:
            return 0.0
        if end_cycle is None:
            end_cycle = self._samples[-1][0]
        start = self._samples[0][0]
        if end_cycle <= start:
            return float(self._samples[0][1])
        total = 0.0
        for (cycle, value), (next_cycle, _) in zip(
            self._samples, self._samples[1:]
        ):
            span = min(next_cycle, end_cycle) - cycle
            if span > 0:
                total += value * span
        last_cycle, last_value = self._samples[-1]
        if end_cycle > last_cycle:
            total += last_value * (end_cycle - last_cycle)
        return total / (end_cycle - start)


@dataclass
class Counters:
    """Raw event counters maintained by the simulator."""

    blocks_executed: int = 0
    instructions: int = 0
    faults: int = 0
    decompressions: int = 0
    recompressions: int = 0
    stall_cycles: int = 0
    stalls: int = 0
    patches: int = 0
    evictions: int = 0
    predictions: int = 0
    correct_predictions: int = 0
    background_decompress_cycles: int = 0
    background_compress_cycles: int = 0
    wasted_decompressions: int = 0  # pre-decompressed, recompressed unused
    dropped_prefetches: int = 0  # shed when the thread backlog was full
    #: Bytes read from the target code memory (Section 2's traffic claim):
    #: block bytes per entry when uncompressed, compressed payload bytes
    #: per materialisation when compressed.  Bytes are rounded to the
    #: hierarchy target level's burst granularity.
    target_memory_bytes: int = 0
    #: Read transactions against the target memory — one per block read
    #: (materialisation in compressed mode, every entry in uncompressed
    #: mode).  Drives the hierarchy's per-access latency and energy.
    target_memory_accesses: int = 0

    @property
    def prediction_accuracy(self) -> float:
        """Fraction of pre-decompress-single predictions that were used."""
        if self.predictions == 0:
            return 0.0
        return self.correct_predictions / self.predictions

    def to_dict(self) -> Dict[str, int]:
        """All counter fields as a flat name -> value dict."""
        return {
            f.name: getattr(self, f.name)
            for f in dataclasses.fields(self)
        }

    @classmethod
    def from_dict(cls, data: Dict[str, int]) -> "Counters":
        """Rebuild counters from :meth:`to_dict` output.

        Strict: unknown or missing fields raise (the experiment store
        treats that as a cache miss — a record written by a different
        schema must never be half-read).
        """
        names = {f.name for f in dataclasses.fields(cls)}
        if set(data) != names:
            raise ValueError(
                f"counter fields {sorted(set(data) ^ names)} do not "
                f"round-trip"
            )
        return cls(**{name: int(data[name]) for name in names})


@dataclass
class SimulationResult:
    """Everything one simulation run produced.

    ``total_cycles`` includes decompression stalls; ``execution_cycles`` is
    pure compute.  Overhead versus an uncompressed baseline is
    ``total_cycles / execution_cycles - 1`` because the baseline executes
    the same instruction stream with no stalls.

    ``engine`` names the machine that produced the run ("machine" for
    the interpreting engine, "trace" for a trace replay).  Trace replays
    do not model register state, so their ``registers`` is ``None`` —
    consumers must never compare registers across engines.
    ``trace_truncated`` is True when ``block_trace`` hit the recording
    cap and is therefore incomplete; truncated traces must not be
    replayed (:class:`~repro.runtime.trace_sim.PreparedTrace` refuses
    them).
    """

    program: str
    strategy: str
    codec: str
    k_compress: Optional[int]
    k_decompress: Optional[int]
    total_cycles: int
    execution_cycles: int
    counters: Counters
    footprint: FootprintTimeline
    uncompressed_size: int
    compressed_size: int
    registers: Optional[List[int]] = field(default_factory=list)
    block_trace: List[int] = field(default_factory=list)
    trace_truncated: bool = False
    engine: str = "machine"
    #: Per-run phase breakdown (execute + per-kind stall cycles) filled
    #: in only when the run was traced (see :mod:`repro.obs`).  Live
    #: diagnostics only: excluded from :meth:`summary` and from every
    #: serialised form, so traced and untraced runs stay byte-identical.
    phases: Optional[Dict[str, int]] = None

    # ----------------------------------------------------------------
    # The paper's headline metrics
    # ----------------------------------------------------------------

    @property
    def cycle_overhead(self) -> float:
        """Fractional slowdown vs. running fully decompressed."""
        if self.execution_cycles == 0:
            return 0.0
        return self.total_cycles / self.execution_cycles - 1.0

    @property
    def peak_footprint(self) -> int:
        """Peak memory holding code during the run (bytes)."""
        return self.footprint.peak

    @property
    def average_footprint(self) -> float:
        """Time-weighted average code memory (bytes)."""
        return self.footprint.average(self.total_cycles)

    @property
    def peak_saving(self) -> float:
        """Peak-memory saving vs. the uncompressed image (fraction)."""
        if self.uncompressed_size == 0:
            return 0.0
        return 1.0 - self.peak_footprint / self.uncompressed_size

    @property
    def average_saving(self) -> float:
        """Average-memory saving vs. the uncompressed image (fraction)."""
        if self.uncompressed_size == 0:
            return 0.0
        return 1.0 - self.average_footprint / self.uncompressed_size

    def summary(self) -> Dict[str, float]:
        """Flat dict of headline numbers (table-friendly)."""
        return {
            "total_cycles": float(self.total_cycles),
            "execution_cycles": float(self.execution_cycles),
            "cycle_overhead": self.cycle_overhead,
            "peak_footprint": float(self.peak_footprint),
            "average_footprint": self.average_footprint,
            "peak_saving": self.peak_saving,
            "average_saving": self.average_saving,
            "faults": float(self.counters.faults),
            "decompressions": float(self.counters.decompressions),
            "recompressions": float(self.counters.recompressions),
            "stall_cycles": float(self.counters.stall_cycles),
            "patches": float(self.counters.patches),
            "evictions": float(self.counters.evictions),
            "prediction_accuracy": self.counters.prediction_accuracy,
        }

    def render(self) -> str:
        """Human-readable one-block summary."""
        lines = [
            f"{self.program} [{self.strategy}, codec={self.codec}"
            + (f", kc={self.k_compress}" if self.k_compress is not None
               else "")
            + (f", kd={self.k_decompress}" if self.k_decompress is not None
               else "")
            + "]",
            f"  cycles: {self.total_cycles} "
            f"(exec {self.execution_cycles}, "
            f"overhead {self.cycle_overhead:.1%})",
            f"  memory: peak {self.peak_footprint}B "
            f"(saving {self.peak_saving:.1%}), "
            f"avg {self.average_footprint:.0f}B "
            f"(saving {self.average_saving:.1%})",
            f"  image: {self.compressed_size}B compressed / "
            f"{self.uncompressed_size}B uncompressed",
            f"  events: {self.counters.faults} faults, "
            f"{self.counters.decompressions} decompressions, "
            f"{self.counters.recompressions} recompressions, "
            f"{self.counters.stall_cycles} stall cycles, "
            f"{self.counters.patches} patches",
        ]
        return "\n".join(lines)
