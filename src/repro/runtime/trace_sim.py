"""Trace-driven simulation: replay a recorded block trace.

Interpreting every instruction is the gold standard (results are
self-validating) but costs most of the simulation time.  For large
parameter sweeps the compression machinery only needs the *block
sequence* and per-block cycle costs — exactly what a recorded trace
provides.  :class:`TraceMachine` replays a trace through the standard
:class:`~repro.core.manager.CodeCompressionManager`, producing identical
compression behaviour (faults, stalls, footprint) at a fraction of the
cost.

Typical use::

    base = simulate(program, SimulationConfig(decompression="none"))
    for config in many_configs:
        result = simulate_trace(cfg, base.block_trace, config)

The integration tests assert that trace-driven metrics match
machine-driven metrics exactly for the same program and configuration.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from ..cfg.builder import ProgramCFG
from .machine import BlockOutcome, MachineError


class PreparedTrace:
    """A validated trace with its per-step outcomes precomputed.

    Sweeps replay the same trace through many configurations; validating
    edges and building :class:`~repro.runtime.machine.BlockOutcome`
    objects once — instead of once per grid cell — removes the dominant
    per-cell replay setup cost.  Outcomes are frozen dataclasses, so
    sharing them across :class:`TraceMachine` instances is safe.
    """

    def __init__(
        self,
        cfg: ProgramCFG,
        trace: Sequence[int],
        truncated: bool = False,
    ) -> None:
        if truncated:
            raise ValueError(
                "refusing to prepare a truncated trace: the recording "
                "hit the block-trace cap, so replaying it would "
                "silently simulate a shorter run; re-record with a "
                "higher cap or use the interpreting engine"
            )
        if not trace:
            raise ValueError("trace must contain at least one block")
        if trace[0] != cfg.entry_id:
            raise ValueError(
                f"trace must start at the entry block "
                f"B{cfg.entry_id}, got B{trace[0]}"
            )
        for src, dst in zip(trace, trace[1:]):
            if not cfg.has_edge(src, dst):
                raise ValueError(
                    f"trace contains impossible transition "
                    f"B{src} -> B{dst}"
                )
        self.cfg = cfg
        self.trace = list(trace)
        last = len(trace) - 1
        self.outcomes: List[BlockOutcome] = []
        for position, block_id in enumerate(self.trace):
            block = cfg.block(block_id)
            self.outcomes.append(
                BlockOutcome(
                    block_id,
                    self.trace[position + 1] if position < last else None,
                    block.cycle_cost,
                    len(block.instructions),
                )
            )

    @classmethod
    def from_result(cls, cfg: ProgramCFG, result) -> "PreparedTrace":
        """Prepare the trace a :class:`SimulationResult` recorded.

        Refuses (with a clear error) results whose trace was truncated
        by the recording cap — a truncated trace would replay a shorter
        run than the one that produced the metrics.
        """
        return cls(
            cfg,
            result.block_trace,
            truncated=getattr(result, "trace_truncated", False),
        )


class TraceMachine:
    """Drop-in replacement for :class:`~repro.runtime.machine.Machine`
    that replays a prerecorded block trace.

    Register/memory state is not modelled: ``registers`` is ``None``, so
    a replayed run's :class:`SimulationResult.registers` is explicitly
    absent instead of presenting zeroed garbage as real machine state.
    Cycle costs come from each block's static instruction costs, which is
    exactly what the interpreting machine charges.  Accepts either a raw
    block-id sequence or a :class:`PreparedTrace` (which skips the
    per-instance validation).
    """

    #: Engine tag carried into :class:`SimulationResult.engine`.
    engine_name = "trace"

    def __init__(
        self,
        cfg: ProgramCFG,
        trace: Union[PreparedTrace, Sequence[int]],
    ) -> None:
        if not isinstance(trace, PreparedTrace):
            trace = PreparedTrace(cfg, trace)
        elif trace.cfg is not cfg:
            raise ValueError("prepared trace belongs to a different CFG")
        self.cfg = cfg
        self.trace = trace.trace
        self._outcomes = trace.outcomes
        self.position = 0
        self.registers: Optional[List[int]] = None
        self.halted = False
        self.steps = 0

    def run_block(self, block) -> BlockOutcome:
        """Replay one step of the trace."""
        if self.halted:
            raise MachineError("trace machine is halted")
        position = self.position
        outcome = self._outcomes[position]
        if block.block_id != outcome.block_id:
            raise MachineError(
                f"trace divergence: asked to run B{block.block_id}, "
                f"trace position {position} expects B{outcome.block_id}"
            )
        self.steps += outcome.instructions
        self.position = position + 1
        if outcome.next_block_id is None:
            self.halted = True
        return outcome


def simulate_trace(
    cfg: ProgramCFG,
    trace: Union[PreparedTrace, Sequence[int]],
    config=None,
    max_blocks: Optional[int] = None,
    compression_policy=None,
    decompression_policy=None,
    tracer=None,
):
    """Run the compression machinery over a recorded block trace.

    Returns the same :class:`~repro.runtime.metrics.SimulationResult` a
    full simulation would, except ``registers`` is ``None`` (replay does
    not model register state) and ``engine`` is tagged ``"trace"``.
    ``compression_policy``/``decompression_policy`` are optional policy
    instances forwarded to the manager (for ablations such as E12 that
    inject non-config policies into a trace replay).  Pass a
    :class:`PreparedTrace` when replaying the same trace many times.
    ``tracer`` optionally arms cycle-domain span tracing for the replay
    (an ambient :func:`repro.obs.tracing_scope` covers replays too, as
    they build the same manager).
    """
    from ..core.manager import CodeCompressionManager

    manager = CodeCompressionManager(
        cfg,
        config,
        compression_policy=compression_policy,
        decompression_policy=decompression_policy,
        tracer=tracer,
    )
    manager.machine = TraceMachine(cfg, trace)
    return manager.run(max_blocks=max_blocks)
