"""Trace-driven simulation: replay a recorded block trace.

Interpreting every instruction is the gold standard (results are
self-validating) but costs most of the simulation time.  For large
parameter sweeps the compression machinery only needs the *block
sequence* and per-block cycle costs — exactly what a recorded trace
provides.  :class:`TraceMachine` replays a trace through the standard
:class:`~repro.core.manager.CodeCompressionManager`, producing identical
compression behaviour (faults, stalls, footprint) at a fraction of the
cost.

Typical use::

    base = simulate(program, SimulationConfig(decompression="none"))
    for config in many_configs:
        result = simulate_trace(cfg, base.block_trace, config)

The integration tests assert that trace-driven metrics match
machine-driven metrics exactly for the same program and configuration.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..cfg.builder import ProgramCFG
from ..memory.remember_set import BranchSite
from .machine import BlockOutcome, MachineError

#: Steps covered by one fast-forward window of a :class:`ReplayPlan`.
#: Must be a power of two (the batched kernel tests window alignment
#: with a bitmask).
WINDOW_SIZE = 32

#: Minimum number of windows before :class:`PreparedTrace` shards the
#: window precompute across processes (below this the fork overhead
#: dwarfs the work).  Module-level so tests can lower it.
_SHARD_MIN_WINDOWS = 4096


def _build_window(
    trace: Sequence[int],
    unit_steps: Sequence[int],
    cycles: Sequence[int],
    instructions: Sequence[int],
    start: int,
    width: int,
) -> Tuple:
    """Aggregate one fast-forward window over steps [start, start+width).

    Each step enters ``trace[i]`` (resetting its unit's k-edge counter),
    then traverses the edge to ``trace[i+1]`` (incrementing every other
    resident unit's counter).  The window tuple carries everything the
    batched kernel needs to (a) decide the unit set cannot change across
    the window and (b) apply the whole window's bookkeeping in bulk:

    ``(cycle_sum, instr_sum, window_units, entered_units, edge_items,
    dst_counts, heads, maxgaps, tails)``

    * ``window_units`` — units of ``trace[start .. start+width]``
      (including the final ensure target); all must be resident.
    * ``edge_items`` — distinct ``(src, dst)`` block edges with counts,
      in first-traversal order.
    * ``dst_counts`` — per unit, how many window edges have it as the
      (exempt) destination unit.
    * ``heads``/``maxgaps``/``tails`` — per entered unit, k-edge counter
      increments before its first reset, the largest run between resets
      (tail included), and the increments after its last reset (= its
      counter value after the window).
    """
    end = start + width
    cyc = 0
    ins = 0
    edge_items: Dict[Tuple[int, int], int] = {}
    dst_counts: Dict[int, int] = {}
    entered: Dict[int, None] = {}
    units: Dict[int, None] = {}
    for i in range(start, end):
        cyc += cycles[i]
        ins += instructions[i]
        units[unit_steps[i]] = None
        entered[unit_steps[i]] = None
        edge = (trace[i], trace[i + 1])
        edge_items[edge] = edge_items.get(edge, 0) + 1
        dst = unit_steps[i + 1]
        dst_counts[dst] = dst_counts.get(dst, 0) + 1
    units[unit_steps[end]] = None
    heads: Dict[int, int] = {}
    maxgaps: Dict[int, int] = {}
    tails: Dict[int, int] = {}
    for unit in entered:
        head = 0
        maxgap = 0
        current: Optional[int] = None
        for i in range(start, end):
            if unit_steps[i] == unit:
                current = 0
            if unit_steps[i + 1] != unit:
                if current is None:
                    head += 1
                else:
                    current += 1
                    if current > maxgap:
                        maxgap = current
        heads[unit] = head
        maxgaps[unit] = maxgap
        tails[unit] = current or 0
    return (
        cyc,
        ins,
        tuple(units),
        tuple(entered),
        tuple(edge_items.items()),
        dst_counts,
        heads,
        maxgaps,
        tails,
    )


def _build_window_range(args) -> List[Tuple]:
    """Worker for the sharded window precompute (fork-friendly)."""
    trace, unit_steps, cycles, instructions, width, first, last = args
    return [
        _build_window(trace, unit_steps, cycles, instructions, wi * width,
                      width)
        for wi in range(first, last)
    ]


class ReplayPlan:
    """Precomputed per-step arrays + window aggregates for one
    (trace, unit granularity) pair.

    Built once per :class:`PreparedTrace` per granularity and shared by
    every grid cell that replays the trace — the batched kernel
    (:mod:`repro.core.replay`) walks these flat lists instead of calling
    through the layered manager/timing/residency stack per block.
    """

    __slots__ = (
        "trace", "cycles", "instructions", "unit_steps", "sites",
        "window_size", "windows", "total_cycles", "total_instructions",
        "edge_items", "block_visits", "entered_units",
    )

    def __init__(
        self,
        cfg: ProgramCFG,
        trace: Sequence[int],
        cycles: Sequence[int],
        instructions: Sequence[int],
        unit_of: Dict[int, int],
        processes: Optional[int] = None,
    ) -> None:
        self.trace = list(trace)
        self.cycles = list(cycles)
        self.instructions = list(instructions)
        self.unit_steps = [unit_of[block_id] for block_id in self.trace]
        # Terminator branch sites by block id (value-equal to the ones
        # the residency layer memoizes, so remember-set lookups match).
        self.sites = [
            BranchSite(block.block_id, len(block) - 1)
            for block in cfg.blocks
        ]
        self.window_size = WINDOW_SIZE
        self.windows = self._build_windows(processes)
        # Trace-wide aggregates (the batched kernel charges these in one
        # operation each instead of summing per step).
        self.total_cycles = sum(self.cycles)
        self.total_instructions = sum(self.instructions)
        edge_items: Dict[Tuple[int, int], int] = {}
        for src, dst in zip(self.trace, self.trace[1:]):
            edge = (src, dst)
            edge_items[edge] = edge_items.get(edge, 0) + 1
        #: Distinct (src, dst) edges with traversal counts, in
        #: first-traversal order.
        self.edge_items = tuple(edge_items.items())
        visits: Dict[int, int] = {}
        for block_id in self.trace:
            visits[block_id] = visits.get(block_id, 0) + 1
        #: block id -> number of times the trace enters it.
        self.block_visits = visits
        entered: Dict[int, None] = {}
        for unit in self.unit_steps:
            entered[unit] = None
        #: Distinct units the trace enters, in first-entry order.
        self.entered_units = tuple(entered)

    def _build_windows(
        self, processes: Optional[int]
    ) -> List[Tuple]:
        width = self.window_size
        n = len(self.trace)
        count = (n - 1 - width) // width + 1 if n - 1 >= width else 0
        if count <= 0:
            return []
        if processes and processes > 1 and count >= _SHARD_MIN_WINDOWS:
            built = self._build_windows_sharded(count, processes)
            if built is not None:
                return built
        return [
            _build_window(self.trace, self.unit_steps, self.cycles,
                          self.instructions, wi * width, width)
            for wi in range(count)
        ]

    def _build_windows_sharded(
        self, count: int, processes: int
    ) -> Optional[List[Tuple]]:
        """Shard the window precompute over a fork pool (opt-in).

        Returns None when multiprocessing is unavailable so the caller
        falls back to the serial build; the output is identical either
        way (windows are pure functions of their step range).
        """
        try:
            import multiprocessing

            context = multiprocessing.get_context("fork")
        except (ImportError, ValueError):
            return None
        shards = min(processes, count)
        bounds = [
            (count * i // shards, count * (i + 1) // shards)
            for i in range(shards)
        ]
        args = [
            (self.trace, self.unit_steps, self.cycles, self.instructions,
             self.window_size, first, last)
            for first, last in bounds
        ]
        try:
            with context.Pool(shards) as pool:
                parts = pool.map(_build_window_range, args)
        except OSError:
            return None
        windows: List[Tuple] = []
        for part in parts:
            windows.extend(part)
        return windows


class PreparedTrace:
    """A validated trace with its per-step outcomes precomputed.

    Sweeps replay the same trace through many configurations; validating
    edges and building :class:`~repro.runtime.machine.BlockOutcome`
    objects once — instead of once per grid cell — removes the dominant
    per-cell replay setup cost.  Outcomes are frozen dataclasses, so
    sharing them across :class:`TraceMachine` instances is safe.
    """

    def __init__(
        self,
        cfg: ProgramCFG,
        trace: Sequence[int],
        truncated: bool = False,
    ) -> None:
        if truncated:
            raise ValueError(
                "refusing to prepare a truncated trace: the recording "
                "hit the block-trace cap, so replaying it would "
                "silently simulate a shorter run; re-record with a "
                "higher cap or use the interpreting engine"
            )
        if not trace:
            raise ValueError("trace must contain at least one block")
        if trace[0] != cfg.entry_id:
            raise ValueError(
                f"trace must start at the entry block "
                f"B{cfg.entry_id}, got B{trace[0]}"
            )
        for src, dst in zip(trace, trace[1:]):
            if not cfg.has_edge(src, dst):
                raise ValueError(
                    f"trace contains impossible transition "
                    f"B{src} -> B{dst}"
                )
        self.cfg = cfg
        self.trace = list(trace)
        last = len(trace) - 1
        self.outcomes: List[BlockOutcome] = []
        for position, block_id in enumerate(self.trace):
            block = cfg.block(block_id)
            self.outcomes.append(
                BlockOutcome(
                    block_id,
                    self.trace[position + 1] if position < last else None,
                    block.cycle_cost,
                    len(block.instructions),
                )
            )
        # Flat per-step cost arrays for the batched replay kernel.
        self.cycles: List[int] = [o.cycles for o in self.outcomes]
        self.instructions: List[int] = [
            o.instructions for o in self.outcomes
        ]
        #: granularity -> ReplayPlan (unit maps are pure functions of
        #: (cfg, granularity), so one plan serves every grid cell).
        self._plans: Dict[str, ReplayPlan] = {}
        #: hierarchy name -> per-block (read_bytes, read_cycles) for the
        #: uncompressed-mode entry charge.
        self._entry_charges: Dict[str, Tuple[List[int], List[int]]] = {}
        #: Opt-in process count for the sharded window precompute
        #: (set by the sweep layer for very large traces).
        self.shard_processes: Optional[int] = None

    def plan(
        self, granularity: str, unit_of: Dict[int, int]
    ) -> ReplayPlan:
        """The (cached) :class:`ReplayPlan` for ``granularity``.

        ``unit_of`` must be the block->unit map for that granularity —
        the caller (the residency subsystem) already has it computed.
        """
        plan = self._plans.get(granularity)
        if plan is None:
            plan = ReplayPlan(
                self.cfg, self.trace, self.cycles, self.instructions,
                unit_of, processes=self.shard_processes,
            )
            self._plans[granularity] = plan
        return plan

    def entry_charges(
        self, hierarchy_name: str, hierarchy
    ) -> Tuple[List[int], List[int]]:
        """Per-block (target read bytes, read cycles) lists for the
        uncompressed entry charge, cached per hierarchy preset."""
        charges = self._entry_charges.get(hierarchy_name)
        if charges is None:
            nbytes = [block.size_bytes for block in self.cfg.blocks]
            charges = (
                [hierarchy.target_read_bytes(b) for b in nbytes],
                [hierarchy.target_read_cycles(b) for b in nbytes],
            )
            self._entry_charges[hierarchy_name] = charges
        return charges

    @classmethod
    def from_result(cls, cfg: ProgramCFG, result) -> "PreparedTrace":
        """Prepare the trace a :class:`SimulationResult` recorded.

        Refuses (with a clear error) results whose trace was truncated
        by the recording cap — a truncated trace would replay a shorter
        run than the one that produced the metrics.
        """
        return cls(
            cfg,
            result.block_trace,
            truncated=getattr(result, "trace_truncated", False),
        )


class TraceMachine:
    """Drop-in replacement for :class:`~repro.runtime.machine.Machine`
    that replays a prerecorded block trace.

    Register/memory state is not modelled: ``registers`` is ``None``, so
    a replayed run's :class:`SimulationResult.registers` is explicitly
    absent instead of presenting zeroed garbage as real machine state.
    Cycle costs come from each block's static instruction costs, which is
    exactly what the interpreting machine charges.  Accepts either a raw
    block-id sequence or a :class:`PreparedTrace` (which skips the
    per-instance validation).
    """

    #: Engine tag carried into :class:`SimulationResult.engine`.
    engine_name = "trace"

    def __init__(
        self,
        cfg: ProgramCFG,
        trace: Union[PreparedTrace, Sequence[int]],
    ) -> None:
        if not isinstance(trace, PreparedTrace):
            trace = PreparedTrace(cfg, trace)
        elif trace.cfg is not cfg:
            raise ValueError("prepared trace belongs to a different CFG")
        self.cfg = cfg
        #: The validated trace product, exposed so the batched replay
        #: kernel can reuse its precomputed per-step arrays and windows.
        self.prepared = trace
        self.trace = trace.trace
        self._outcomes = trace.outcomes
        self.position = 0
        self.registers: Optional[List[int]] = None
        self.halted = False
        self.steps = 0

    def run_block(self, block) -> BlockOutcome:
        """Replay one step of the trace."""
        if self.halted:
            raise MachineError("trace machine is halted")
        position = self.position
        outcome = self._outcomes[position]
        if block.block_id != outcome.block_id:
            raise MachineError(
                f"trace divergence: asked to run B{block.block_id}, "
                f"trace position {position} expects B{outcome.block_id}"
            )
        self.steps += outcome.instructions
        self.position = position + 1
        if outcome.next_block_id is None:
            self.halted = True
        return outcome


def simulate_trace(
    cfg: ProgramCFG,
    trace: Union[PreparedTrace, Sequence[int]],
    config=None,
    max_blocks: Optional[int] = None,
    compression_policy=None,
    decompression_policy=None,
    tracer=None,
):
    """Run the compression machinery over a recorded block trace.

    Returns the same :class:`~repro.runtime.metrics.SimulationResult` a
    full simulation would, except ``registers`` is ``None`` (replay does
    not model register state) and ``engine`` is tagged ``"trace"``.
    ``compression_policy``/``decompression_policy`` are optional policy
    instances forwarded to the manager (for ablations such as E12 that
    inject non-config policies into a trace replay).  Pass a
    :class:`PreparedTrace` when replaying the same trace many times.
    ``tracer`` optionally arms cycle-domain span tracing for the replay
    (an ambient :func:`repro.obs.tracing_scope` covers replays too, as
    they build the same manager).
    """
    from ..core.manager import CodeCompressionManager

    manager = CodeCompressionManager(
        cfg,
        config,
        compression_policy=compression_policy,
        decompression_policy=decompression_policy,
        tracer=tracer,
    )
    manager.machine = TraceMachine(cfg, trace)
    return manager.run(max_blocks=max_blocks)
