"""Trace-driven simulation: replay a recorded block trace.

Interpreting every instruction is the gold standard (results are
self-validating) but costs most of the simulation time.  For large
parameter sweeps the compression machinery only needs the *block
sequence* and per-block cycle costs — exactly what a recorded trace
provides.  :class:`TraceMachine` replays a trace through the standard
:class:`~repro.core.manager.CodeCompressionManager`, producing identical
compression behaviour (faults, stalls, footprint) at a fraction of the
cost.

Typical use::

    base = simulate(program, SimulationConfig(decompression="none"))
    for config in many_configs:
        result = simulate_trace(cfg, base.block_trace, config)

The integration tests assert that trace-driven metrics match
machine-driven metrics exactly for the same program and configuration.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..cfg.builder import ProgramCFG
from .machine import BlockOutcome, MachineError


class TraceMachine:
    """Drop-in replacement for :class:`~repro.runtime.machine.Machine`
    that replays a prerecorded block trace.

    Register/memory state is not modelled (``registers`` stays zeroed);
    cycle costs come from each block's static instruction costs, which is
    exactly what the interpreting machine charges.
    """

    def __init__(self, cfg: ProgramCFG, trace: Sequence[int]) -> None:
        if not trace:
            raise ValueError("trace must contain at least one block")
        if trace[0] != cfg.entry_id:
            raise ValueError(
                f"trace must start at the entry block "
                f"B{cfg.entry_id}, got B{trace[0]}"
            )
        for src, dst in zip(trace, trace[1:]):
            if not cfg.has_edge(src, dst):
                raise ValueError(
                    f"trace contains impossible transition "
                    f"B{src} -> B{dst}"
                )
        self.cfg = cfg
        self.trace = list(trace)
        self.position = 0
        self.registers: List[int] = [0] * 16
        self.halted = False
        self.steps = 0

    def run_block(self, block) -> BlockOutcome:
        """Replay one step of the trace."""
        if self.halted:
            raise MachineError("trace machine is halted")
        expected = self.trace[self.position]
        if block.block_id != expected:
            raise MachineError(
                f"trace divergence: asked to run B{block.block_id}, "
                f"trace position {self.position} expects B{expected}"
            )
        cycles = block.cycle_cost
        self.steps += len(block.instructions)
        self.position += 1
        if self.position >= len(self.trace):
            self.halted = True
            return BlockOutcome(
                block.block_id, None, cycles, len(block.instructions)
            )
        return BlockOutcome(
            block.block_id,
            self.trace[self.position],
            cycles,
            len(block.instructions),
        )


def simulate_trace(
    cfg: ProgramCFG,
    trace: Sequence[int],
    config=None,
    max_blocks: Optional[int] = None,
):
    """Run the compression machinery over a recorded block trace.

    Returns the same :class:`~repro.runtime.metrics.SimulationResult` a
    full simulation would, except ``registers`` are not modelled.
    """
    from ..core.manager import CodeCompressionManager

    manager = CodeCompressionManager(cfg, config)
    manager.machine = TraceMachine(cfg, trace)
    return manager.run(max_blocks=max_blocks)
