"""Cell result records: SweepRun <-> JSON-safe dict round-trip.

A record carries everything :class:`~repro.runtime.metrics.SimulationResult`
holds — counters, footprint timeline steps, sizes, registers, the block
trace — so a cache hit reconstructs a *live* result object whose derived
metrics (summaries, savings, overheads) are byte-identical to a fresh
simulation.  The configuration itself is NOT stored: the executor always
has the live :class:`SimulationConfig` in hand (it computed the
fingerprint from it), and re-attaching it guarantees record/config can
never drift apart.

Error runs are never recorded (a raising cell must re-raise on the next
attempt, not be replayed from cache), and runs whose trace or timeline
would bloat the store past :data:`MAX_CACHEABLE_ENTRIES` are skipped —
the sweep still works, those cells just recompute.
"""

from __future__ import annotations

from typing import Any, Dict

from ..analysis.sweep import SweepRun
from ..core.config import SimulationConfig
from ..runtime.metrics import (
    Counters,
    FootprintTimeline,
    SimulationResult,
)
from .cas import StoreError

#: Bumped on any change to the record shape.  v2: ``registers`` may be
#: null (trace replays do not model register state), plus the ``engine``
#: tag and the ``trace_truncated`` flag.
RECORD_VERSION = 2

#: Schema identifier embedded in every stored cell record.
RECORD_SCHEMA = "repro.store.cell"

#: Cells whose block trace plus footprint timeline exceed this many
#: entries are not cached (a multi-megabyte JSON per cell would turn the
#: store into the bottleneck it exists to remove).
MAX_CACHEABLE_ENTRIES = 200_000


def is_cacheable(run: SweepRun) -> bool:
    """True when ``run`` may be written to the store."""
    if run.error is not None:
        return False
    result = run.result
    entries = len(result.block_trace) + len(result.footprint.samples)
    return entries <= MAX_CACHEABLE_ENTRIES


def run_to_record(run: SweepRun, fingerprint: str) -> Dict[str, Any]:
    """Serialise one completed cell into its JSON-safe record."""
    result = run.result
    return {
        "schema": RECORD_SCHEMA,
        "version": RECORD_VERSION,
        "fingerprint": fingerprint,
        "workload": run.workload,
        "validation": list(run.validation),
        "result": {
            "program": result.program,
            "strategy": result.strategy,
            "codec": result.codec,
            "k_compress": result.k_compress,
            "k_decompress": result.k_decompress,
            "total_cycles": result.total_cycles,
            "execution_cycles": result.execution_cycles,
            "counters": result.counters.to_dict(),
            "footprint": [
                [cycle, value]
                for cycle, value in result.footprint.samples
            ],
            "uncompressed_size": result.uncompressed_size,
            "compressed_size": result.compressed_size,
            "registers": (
                None if result.registers is None
                else list(result.registers)
            ),
            "block_trace": list(result.block_trace),
            "trace_truncated": result.trace_truncated,
            "engine": result.engine,
        },
    }


def record_to_run(
    record: Dict[str, Any], config: SimulationConfig
) -> SweepRun:
    """Rebuild a live :class:`SweepRun` from a stored record.

    Raises :class:`StoreError` on any shape mismatch; callers treat
    that as a cache miss and recompute.
    """
    try:
        if record.get("schema") != RECORD_SCHEMA:
            raise ValueError(f"schema {record.get('schema')!r}")
        if record.get("version") != RECORD_VERSION:
            raise ValueError(f"version {record.get('version')!r}")
        data = record["result"]
        result = SimulationResult(
            program=data["program"],
            strategy=data["strategy"],
            codec=data["codec"],
            k_compress=data["k_compress"],
            k_decompress=data["k_decompress"],
            total_cycles=int(data["total_cycles"]),
            execution_cycles=int(data["execution_cycles"]),
            counters=Counters.from_dict(data["counters"]),
            footprint=FootprintTimeline.from_samples(
                [(cycle, value) for cycle, value in data["footprint"]]
            ),
            uncompressed_size=int(data["uncompressed_size"]),
            compressed_size=int(data["compressed_size"]),
            registers=(
                None if data["registers"] is None
                else [int(r) for r in data["registers"]]
            ),
            block_trace=[int(b) for b in data["block_trace"]],
            trace_truncated=bool(data["trace_truncated"]),
            engine=str(data["engine"]),
        )
        return SweepRun(
            workload=record["workload"],
            config=config,
            result=result,
            validation=[str(v) for v in record["validation"]],
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise StoreError(f"malformed cell record: {exc}") from exc
