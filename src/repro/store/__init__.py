"""``repro.store`` — persistent, content-addressed experiment store.

The paper's decompression hardware amortises a link-time-built model
across the whole program lifetime; this package does the same for the
experiment platform's own expensive artifacts.  Every (workload,
configuration, engine) cell of an experiment grid gets a deterministic
**fingerprint** (:mod:`repro.store.fingerprint`); cell results and
compressed-image artifacts live in an on-disk **content-addressed
store** (:mod:`repro.store.cas`) with atomic writes that are safe under
concurrent access from multiple processes; and the
:class:`~repro.store.executor.CachingExecutor` (registered as
``"caching"`` in the executors registry) consults the store before
dispatching to the serial/parallel executors, so re-running a spec only
computes missing or changed cells and an interrupted sweep resumes
where it left off.

Layering: this package sits between the execution engines
(:mod:`repro.analysis.sweep`) and the API facade (:mod:`repro.api`).
Only :mod:`repro.store.executor` may import from :mod:`repro.api`;
everything else here depends only on the core/runtime layers, so the
facade can import the store without a cycle.

Invalidation rules — a cell fingerprint changes (and the cached record
is therefore ignored) whenever any of these change:

* any semantic source file of the simulator (``cfg``, ``compress``,
  ``core``, ``isa``, ``memory``, ``runtime``, ``selection``,
  ``strategies``, ``workloads``, or ``analysis/sweep.py``) — hashed
  into :func:`~repro.store.fingerprint.code_version`;
* the workload's program bytes (covers generated/synthetic programs);
* any :class:`~repro.core.config.SimulationConfig` field (the offline
  edge profile hashes by content);
* the sweep engine, the ``fast`` flag, or ``max_blocks``;
* the registered component catalog (a newly registered codec/strategy
  changes behaviour without changing repo sources);
* the ``REPRO_STORE_SALT`` environment variable (manual invalidation).
"""

from __future__ import annotations

from .cas import (
    DEFAULT_STORE_DIR,
    STORE_FORMAT_VERSION,
    ExperimentStore,
    StoreError,
    resolve_store_dir,
)
from .fingerprint import (
    canonical_dumps,
    cell_fingerprint,
    code_version,
    config_signature,
    workload_digest,
)
from .records import record_to_run, run_to_record

__all__ = [
    "CachingExecutor",
    "DEFAULT_STORE_DIR",
    "ExperimentStore",
    "STORE_FORMAT_VERSION",
    "StoreError",
    "canonical_dumps",
    "cell_fingerprint",
    "code_version",
    "config_signature",
    "record_to_run",
    "resolve_store_dir",
    "run_to_record",
    "workload_digest",
]


def __getattr__(name: str):
    # CachingExecutor lives behind a lazy import: repro.store.executor
    # imports repro.api.executor, and importing it eagerly here would
    # close an import cycle through the api package.
    if name == "CachingExecutor":
        from .executor import CachingExecutor

        return CachingExecutor
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )
