"""The cache-aware executor: consult the store, compute only the gaps.

:class:`CachingExecutor` (registered as ``"caching"``) sits between the
api facade and the Serial/Parallel executors.  For every cell of the
expanded grid it computes the canonical fingerprint, serves hits from
the :class:`~repro.store.cas.ExperimentStore`, groups the misses back
into workload-major partitions (preserving the trace-replay and
shared-artifact fast paths within each partition), dispatches only
those to the wrapped executor, and writes the fresh results back.  The
reassembled run list is in the exact cell order an uncached executor
would produce, so a fully- or partially-cached run is byte-identical
to a cold one — and a re-run of an interrupted sweep only computes the
cells that never landed.

While the inner executor runs, the store is also exposed as the
persistent *artifact* provider (both in-process and, through the
``REPRO_STORE_ARTIFACTS`` environment variable, to worker processes
forked by the parallel executor), so compressed-image payloads built by
any process are reused by every later one.
"""

from __future__ import annotations

import contextlib
import logging
import os
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..analysis.sweep import SweepRun, effective_config
from ..api.executor import EXECUTORS, Executor, Partition, make_executor
from ..log import kv
from ..memory.image import set_artifact_provider
from ..obs.spans import span, span_event
from ..registry import catalog_signature
from ..workloads.suite import get_workload
from .cas import ExperimentStore, StoreError, resolve_store_dir
from .fingerprint import cell_fingerprint, workload_digest
from .records import is_cacheable, record_to_run, run_to_record

_log = logging.getLogger("repro.store.executor")

#: Environment variable carrying the artifact-store directory into
#: worker processes (installed below at import time).
ARTIFACTS_ENV = "REPRO_STORE_ARTIFACTS"


class StoreArtifactProvider:
    """Adapts an :class:`ExperimentStore` to the
    :func:`~repro.memory.image.set_artifact_provider` protocol."""

    def __init__(self, store: ExperimentStore) -> None:
        self.store = store

    def load(
        self, codec_name: str, block_data: Sequence[bytes]
    ) -> Optional[List[bytes]]:
        return self.store.get_artifact_bundle(codec_name, block_data)

    def save(
        self,
        codec_name: str,
        block_data: Sequence[bytes],
        payloads: Sequence[bytes],
    ) -> None:
        self.store.put_artifact_bundle(codec_name, block_data, payloads)


def _install_env_provider() -> None:
    """Install the artifact provider named by ``$REPRO_STORE_ARTIFACTS``.

    Worker processes import this module while unpickling
    ``run_partition``, which makes artifact reuse reach into the
    process pool without any explicit plumbing.
    """
    root = os.environ.get(ARTIFACTS_ENV)
    if not root:
        return
    try:
        set_artifact_provider(StoreArtifactProvider(
            ExperimentStore(root)
        ))
    except (StoreError, OSError) as exc:
        # A broken env var must never kill a worker; it just runs
        # without artifact reuse.  Say so in a parseable line.
        _log.warning(kv(
            "store.artifact_provider_skipped",
            store=root, error=str(exc),
        ))


_install_env_provider()


def plan_cells(
    partitions: Sequence[Partition],
    engine: str = "machine",
    fast: bool = True,
    max_blocks: Optional[int] = None,
    catalog: Optional[str] = None,
) -> List[List[Tuple[str, object]]]:
    """Fingerprint every cell of ``partitions``.

    Returns one row per partition, each a list of ``(fingerprint,
    cell_config)`` pairs in config order, where ``cell_config`` is the
    engine's *effective* config (fast overrides applied) — the config a
    cached record must be reattached to so a hit is indistinguishable
    from a fresh run.  This is the single planning path shared by the
    :class:`CachingExecutor` and the sweep service's job runner, so
    both sides of a cache handoff always agree on the key.
    """
    if catalog is None:
        catalog = catalog_signature()
    rows: List[List[Tuple[str, object]]] = []
    for partition in partitions:
        workload = partition.workload
        if isinstance(workload, str):
            workload = get_workload(workload)
        workload_id = workload_digest(workload)  # once per program
        row: List[Tuple[str, object]] = []
        for config in partition.configs:
            cell_config = effective_config(config, fast)
            row.append((
                cell_fingerprint(
                    workload, cell_config, engine=engine, fast=fast,
                    max_blocks=max_blocks,
                    workload_id=workload_id, catalog=catalog,
                ),
                cell_config,
            ))
        rows.append(row)
    return rows


@contextlib.contextmanager
def artifact_scope(store: ExperimentStore):
    """Expose ``store`` as the compressed-image artifact provider.

    Installed in this process and advertised to (forked) worker
    processes through ``$REPRO_STORE_ARTIFACTS``; both are restored on
    exit so caching stays scoped to the caller.
    """
    previous_env = os.environ.get(ARTIFACTS_ENV)
    previous_provider = set_artifact_provider(
        StoreArtifactProvider(store)
    )
    os.environ[ARTIFACTS_ENV] = store.root
    try:
        yield
    finally:
        set_artifact_provider(previous_provider)
        if previous_env is None:
            os.environ.pop(ARTIFACTS_ENV, None)
        else:
            os.environ[ARTIFACTS_ENV] = previous_env


@EXECUTORS.register("caching")
class CachingExecutor(Executor):
    """Store-backed executor wrapper (see module docstring).

    ``store`` is an :class:`ExperimentStore`, a directory path, or None
    (resolve ``$REPRO_STORE_DIR``, falling back to the default
    directory).  ``inner`` names the wrapped executor — default serial
    for one job, parallel otherwise.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        store: Union[ExperimentStore, str, None] = None,
        inner: Union[str, Executor, None] = None,
        retry=None,
    ) -> None:
        super().__init__(jobs, retry)
        if isinstance(store, ExperimentStore):
            self.store = store
        else:
            self.store = ExperimentStore(resolve_store_dir(store))
        if inner is None:
            inner = "parallel" if (jobs or 1) > 1 else "serial"
        self.inner = (
            inner if isinstance(inner, Executor)
            else make_executor(inner, jobs=jobs, store=False,
                               retry=retry)
        )
        if isinstance(self.inner, CachingExecutor):
            raise ValueError(
                "the caching executor cannot wrap another caching "
                "executor"
            )
        self.jobs = self.inner.jobs
        #: Session counters for the most recent lifetime of this
        #: executor (the persistent totals live in the store itself).
        self.hits = 0
        self.misses = 0

    def run(
        self,
        partitions: Sequence[Partition],
        engine: str = "machine",
        fast: bool = True,
        max_blocks: Optional[int] = None,
    ) -> List[SweepRun]:
        partitions = list(partitions)
        with span("store.plan", cat="store",
                  partitions=len(partitions)):
            plan = plan_cells(partitions, engine=engine, fast=fast,
                              max_blocks=max_blocks)
        fingerprints: List[List[str]] = []
        cached: List[List[Optional[SweepRun]]] = []
        with span("store.lookup", cat="store",
                  cells=sum(len(row) for row in plan)):
            for row in plan:
                row_fps: List[str] = []
                row_runs: List[Optional[SweepRun]] = []
                for fingerprint, cell_config in row:
                    row_fps.append(fingerprint)
                    record = self.store.get_cell(fingerprint)
                    run: Optional[SweepRun] = None
                    if record is not None:
                        try:
                            run = record_to_run(record, cell_config)
                        except StoreError:
                            run = None  # stale/corrupt record: recompute
                    span_event(
                        "store.hit" if run is not None
                        else "store.miss",
                        cat="store", fingerprint=fingerprint[:12],
                    )
                    row_runs.append(run)
                fingerprints.append(row_fps)
                cached.append(row_runs)

        # Misses, regrouped into workload-major partitions so the
        # trace-replay and shared-artifact fast paths still apply.
        missing: List[Tuple[Partition, List[str]]] = []
        for partition, row_fps, row_runs in zip(
            partitions, fingerprints, cached
        ):
            configs: List = []
            fps: List[str] = []
            for config, fingerprint, run in zip(
                partition.configs, row_fps, row_runs
            ):
                if run is None:
                    configs.append(config)
                    fps.append(fingerprint)
            if configs:
                missing.append((
                    Partition(workload=partition.workload,
                              configs=configs),
                    fps,
                ))

        computed_by_fp: Dict[str, SweepRun] = {}
        puts = 0
        if missing:
            with self._artifact_store_scope(), span(
                "store.compute", cat="store",
                cells=sum(len(fps) for _, fps in missing),
            ):
                if self.inner.jobs <= 1 and len(missing) > 1:
                    # Serial inner: dispatch partition by partition and
                    # persist each as it completes, so an interrupted
                    # sweep keeps every finished partition and resumes
                    # from there.  (A parallel inner needs the whole
                    # list in one call to fan out across workloads;
                    # there, the persistence boundary is the dispatch.)
                    for partition, fps in missing:
                        part_runs = self.inner.run(
                            [partition], engine=engine, fast=fast,
                            max_blocks=max_blocks,
                        )
                        puts += self._record_results(
                            fps, part_runs, computed_by_fp
                        )
                else:
                    flat = self.inner.run(
                        [partition for partition, _ in missing],
                        engine=engine, fast=fast,
                        max_blocks=max_blocks,
                    )
                    cursor = 0
                    for _, fps in missing:
                        part_runs = flat[cursor:cursor + len(fps)]
                        cursor += len(fps)
                        puts += self._record_results(
                            fps, part_runs, computed_by_fp
                        )

        runs: List[SweepRun] = []
        hits = misses = 0
        for row_fps, row_runs in zip(fingerprints, cached):
            for fingerprint, cached_run in zip(row_fps, row_runs):
                if cached_run is not None:
                    hits += 1
                    runs.append(cached_run)
                else:
                    misses += 1
                    runs.append(computed_by_fp[fingerprint])
        self.hits += hits
        self.misses += misses
        self.store.add_usage(hits=hits, misses=misses, puts=puts)
        return runs

    def _record_results(
        self,
        fps: Sequence[str],
        part_runs: Sequence[SweepRun],
        computed_by_fp: Dict[str, SweepRun],
    ) -> int:
        """Persist one partition's fresh results; returns puts made."""
        puts = 0
        for fingerprint, run in zip(fps, part_runs):
            computed_by_fp[fingerprint] = run
            if is_cacheable(run):
                self.store.put_cell(
                    fingerprint, run_to_record(run, fingerprint)
                )
                puts += 1
        return puts

    def _artifact_store_scope(self):
        """Artifact sharing while the inner executor runs."""
        return artifact_scope(self.store)

    def __repr__(self) -> str:
        return (
            f"CachingExecutor(store={self.store.root!r}, "
            f"inner={self.inner!r})"
        )
