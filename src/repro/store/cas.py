"""The on-disk content-addressed store.

Layout under the store root (default ``~/.cache/repro-store``, or
``$REPRO_STORE_DIR``, or any ``--store DIR``)::

    format.json              # {"format": 1} store marker + version
    objects/ab/abcd...       # content-addressed blobs (sha256-named)
    cells/ab/<fingerprint>   # tiny ref file: the blob digest of the
                             # cell's canonical-JSON result record
    artifacts/ab/<key>       # ref file: blob digest of a pickled
                             # compressed-payload bundle
    jobs/ab/<key>            # ref file: blob digest of a completed
                             # service job's canonical result JSON
    stats.json               # cumulative hit/miss/put counters
    stats.lock               # flock target guarding stats.json

Concurrency model — safe for many processes sharing one store:

* blobs are content-addressed, so two processes racing to write the
  same blob write identical bytes; each write goes to a unique temp
  file and lands with an atomic :func:`os.replace`;
* cell/artifact refs for the same fingerprint always hold the same
  digest (results are deterministic), so the same replace-wins race is
  harmless;
* the mutable ``stats.json`` is the only read-modify-write file and is
  guarded by ``flock`` on ``stats.lock`` (best-effort: a read-only or
  lock-less filesystem degrades to in-memory counters, never an error);
* readers treat any missing/corrupt file as a cache miss, so a reader
  can never crash on a half-visible write.

Integrity: every blob read is checksummed end-to-end against its
content address; a mismatch is logged once, counted (the
``corrupt_misses`` stat), and served as a miss — never silently and
never a crash.  :meth:`ExperimentStore.verify` is the offline fsck
(``repro.cli store verify [--repair]``): it quarantines corrupt blobs
and prunes dangling refs so the next sweep recomputes exactly the
damaged cells.  The ``cas.read``/``cas.write`` fault-injection sites
(:mod:`repro.faults`) let the chaos suite exercise all of this
deterministically.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import pickle
import shutil
import tempfile
import time
from typing import Any, Dict, List, Optional, Sequence, Union

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

from ..faults.runtime import corrupt_bytes, maybe_fire, truncate_bytes
from ..log import kv
from .fingerprint import canonical_dumps, code_version

_log = logging.getLogger("repro.store")

#: Usage counters tracked in ``stats.json``.
_USAGE_KEYS = ("hits", "misses", "puts", "corrupt_misses")

#: Bumped on any backwards-incompatible change to the on-disk layout.
STORE_FORMAT_VERSION = 1

#: Where the store lives when nothing more specific is configured.
DEFAULT_STORE_DIR = os.path.join(
    os.path.expanduser("~"), ".cache", "repro-store"
)

#: Environment variable naming the store directory (opt-in cache reuse
#: for anything built on the api facade, including the E1-E12
#: benchmarks: ``REPRO_STORE_DIR=dir pytest benchmarks/``).
STORE_DIR_ENV = "REPRO_STORE_DIR"


class StoreError(RuntimeError):
    """Raised for invalid store operations (bad root, format skew)."""


def resolve_store_dir(
    store: Union[str, os.PathLike, bool, None],
) -> Optional[str]:
    """Resolve a store argument to a directory path or None (disabled).

    ``False`` disables caching outright; ``None`` consults
    ``$REPRO_STORE_DIR`` (unset means disabled); ``True`` or ``""``
    selects the default directory; anything else is used as the path.
    """
    if store is False:
        return None
    if store is None:
        env = os.environ.get(STORE_DIR_ENV, "")
        return env or None
    if store is True or store == "":
        return DEFAULT_STORE_DIR
    return os.fspath(store)


def _atomic_write(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` via a unique temp file + atomic rename.

    The ``cas.write`` fault site fires here (chaos only): ``torn``
    lands truncated content (still atomically — the damage surfaces at
    checksum time, like a real torn page would); ``crash`` kills the
    process mid-write, leaving a ``.tmp`` orphan and no visible ref —
    exactly the wreckage gc and ``store verify`` must tolerate.
    """
    kind = maybe_fire("cas.write", os.path.basename(path))
    if kind == "torn":
        data = truncate_bytes(data)
    directory = os.path.dirname(path)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            if kind == "crash":
                handle.write(data[: len(data) // 2])
                handle.flush()
                os._exit(70)  # died mid-write: orphan .tmp, no rename
            handle.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class ExperimentStore:
    """A persistent content-addressed store for experiment results.

    ``root=None`` resolves through :func:`resolve_store_dir` and falls
    back to :data:`DEFAULT_STORE_DIR`.  The constructor creates the
    directory tree and the ``format.json`` marker; an existing marker
    with a different format version is refused loudly.
    """

    def __init__(
        self,
        root: Union[str, os.PathLike, None] = None,
        create: bool = True,
    ) -> None:
        resolved = resolve_store_dir(root)
        self.root = resolved if resolved is not None else DEFAULT_STORE_DIR
        marker = os.path.join(self.root, "format.json")
        if create:
            os.makedirs(os.path.join(self.root, "objects"), exist_ok=True)
            os.makedirs(os.path.join(self.root, "cells"), exist_ok=True)
            os.makedirs(os.path.join(self.root, "artifacts"),
                        exist_ok=True)
            os.makedirs(os.path.join(self.root, "jobs"), exist_ok=True)
        if os.path.exists(marker):
            try:
                with open(marker, "r", encoding="utf-8") as handle:
                    found = json.load(handle).get("format")
            except (OSError, ValueError):
                found = None
            if found != STORE_FORMAT_VERSION:
                raise StoreError(
                    f"store at {self.root} has format {found!r}; this "
                    f"build reads format {STORE_FORMAT_VERSION}"
                )
        elif create:
            _atomic_write(
                marker,
                (canonical_dumps({"format": STORE_FORMAT_VERSION})
                 + "\n").encode("utf-8"),
            )
        else:
            # Inspection mode (create=False) refuses paths without the
            # marker, so a mistyped --store can neither spawn an empty
            # store nor misreport an unrelated directory as one.
            raise StoreError(f"no experiment store at {self.root}")
        #: Corrupt blobs this instance served as misses (the persistent
        #: total accumulates into the ``corrupt_misses`` stat).
        self.corrupt_misses = 0

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------

    def _fan_path(self, kind: str, name: str) -> str:
        return os.path.join(self.root, kind, name[:2], name)

    def _marker_path(self) -> str:
        return os.path.join(self.root, "format.json")

    # ------------------------------------------------------------------
    # Blobs
    # ------------------------------------------------------------------

    def put_blob(self, data: bytes) -> str:
        """Store ``data`` content-addressed; returns its digest."""
        digest = hashlib.sha256(data).hexdigest()
        path = self._fan_path("objects", digest)
        if not os.path.exists(path):
            os.makedirs(os.path.dirname(path), exist_ok=True)
            _atomic_write(path, data)
        return digest

    def get_blob(self, digest: str) -> Optional[bytes]:
        """The blob bytes, or None when absent or corrupt.

        Every read is validated end-to-end against the content address;
        a mismatch (bit rot, a torn write that somehow landed, or an
        injected ``cas.read`` fault) is logged, counted into the
        ``corrupt_misses`` stat, and served as a miss — the caller
        recomputes, never crashes, and never consumes damaged data.
        """
        try:
            with open(self._fan_path("objects", digest), "rb") as handle:
                data = handle.read()
        except OSError:
            return None
        kind = maybe_fire("cas.read", digest)
        if kind == "corrupt":
            data = corrupt_bytes(data)
        elif kind == "torn":
            data = truncate_bytes(data)
        if hashlib.sha256(data).hexdigest() != digest:
            self._note_corrupt_blob(digest)
            return None
        return data

    def _note_corrupt_blob(self, digest: str) -> None:
        self.corrupt_misses += 1
        self.add_usage(corrupt_misses=1)
        _log.warning(kv(
            "store.corrupt_blob",
            store=self.root,
            blob=digest[:12],
            action="miss",
            hint="repro.cli store verify --repair",
        ))

    def _put_ref(self, kind: str, name: str, digest: str) -> None:
        path = self._fan_path(kind, name)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        _atomic_write(path, (digest + "\n").encode("ascii"))

    def _get_ref_blob(self, kind: str, name: str) -> Optional[bytes]:
        try:
            with open(self._fan_path(kind, name), "r",
                      encoding="ascii") as handle:
                digest = handle.read().strip()
        except (OSError, UnicodeDecodeError):
            return None
        if not digest:
            return None
        # get_blob checksums the content against the address, so a
        # corrupt blob is a (counted, logged) miss, never a crash.
        return self.get_blob(digest)

    # ------------------------------------------------------------------
    # Cell records
    # ------------------------------------------------------------------

    def put_cell(self, fingerprint: str, record: Dict[str, Any]) -> str:
        """Store a cell result record; returns the blob digest.

        Identical records (e.g. the same cell computed by two racing
        processes) deduplicate onto one blob.
        """
        data = (canonical_dumps(record) + "\n").encode("utf-8")
        digest = self.put_blob(data)
        self._put_ref("cells", fingerprint, digest)
        return digest

    def get_cell(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        """The stored record for ``fingerprint``, or None (a miss)."""
        data = self._get_ref_blob("cells", fingerprint)
        if data is None:
            return None
        try:
            record = json.loads(data)
        except ValueError:
            return None
        return record if isinstance(record, dict) else None

    def has_cell(self, fingerprint: str) -> bool:
        """True when a record exists for ``fingerprint``."""
        return os.path.exists(self._fan_path("cells", fingerprint))

    # ------------------------------------------------------------------
    # Job results (whole-experiment records, used by repro.service)
    # ------------------------------------------------------------------

    def put_job_result(self, key: str, data: Union[str, bytes]) -> str:
        """Store one completed job's canonical result under ``key``.

        ``key`` is the service's job fingerprint (spec + code version +
        catalog); identical jobs deduplicate onto one blob, so a spec
        submitted twice is served back byte-identically without
        touching a single cell.  Returns the blob digest.
        """
        if isinstance(data, str):
            data = data.encode("utf-8")
        digest = self.put_blob(data)
        self._put_ref("jobs", key, digest)
        return digest

    def get_job_result(self, key: str) -> Optional[bytes]:
        """The stored result bytes for job ``key``, or None (a miss)."""
        return self._get_ref_blob("jobs", key)

    # ------------------------------------------------------------------
    # Compressed-image artifact bundles
    # ------------------------------------------------------------------

    def artifact_key(
        self, codec_name: str, block_data: Sequence[bytes]
    ) -> str:
        """Content key of one (program bytes, codec) artifact bundle."""
        payload = {
            "kind": "artifact",
            "code": code_version(),
            "salt": os.environ.get("REPRO_STORE_SALT", ""),
            "codec": codec_name,
            "blocks": [
                hashlib.sha256(data).hexdigest() for data in block_data
            ],
        }
        return hashlib.sha256(
            canonical_dumps(payload).encode("utf-8")
        ).hexdigest()

    def put_artifact_bundle(
        self,
        codec_name: str,
        block_data: Sequence[bytes],
        payloads: Sequence[bytes],
    ) -> str:
        """Persist the compressed payloads of one code image.

        Returns the artifact key.  Payload order is block-id order, the
        same order :func:`~repro.memory.image.compression_artifacts`
        produces.
        """
        key = self.artifact_key(codec_name, block_data)
        blob = pickle.dumps(list(payloads), protocol=4)
        digest = self.put_blob(blob)
        self._put_ref("artifacts", key, digest)
        return key

    def get_artifact_bundle(
        self, codec_name: str, block_data: Sequence[bytes]
    ) -> Optional[List[bytes]]:
        """The stored payload list for this image, or None (a miss)."""
        key = self.artifact_key(codec_name, block_data)
        blob = self._get_ref_blob("artifacts", key)
        if blob is None:
            return None
        try:
            payloads = pickle.loads(blob)
        except Exception:
            return None
        if (
            not isinstance(payloads, list)
            or len(payloads) != len(block_data)
            or not all(isinstance(p, bytes) for p in payloads)
        ):
            return None
        return payloads

    # ------------------------------------------------------------------
    # Usage counters
    # ------------------------------------------------------------------

    def add_usage(self, hits: int = 0, misses: int = 0,
                  puts: int = 0, corrupt_misses: int = 0) -> None:
        """Accumulate usage counters into ``stats.json``.

        Best-effort: lock or write failures degrade silently (the store
        must keep working on read-only media).
        """
        if not (hits or misses or puts or corrupt_misses):
            return
        lock_path = os.path.join(self.root, "stats.lock")
        stats_path = os.path.join(self.root, "stats.json")
        try:
            fd = os.open(lock_path, os.O_CREAT | os.O_RDWR, 0o644)
        except OSError:
            return
        try:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_EX)
            current = dict.fromkeys(_USAGE_KEYS, 0)
            try:
                with open(stats_path, "r", encoding="utf-8") as handle:
                    loaded = json.load(handle)
                if isinstance(loaded, dict):
                    current.update({
                        k: int(loaded.get(k, 0)) for k in _USAGE_KEYS
                    })
            except (OSError, ValueError, TypeError):
                pass
            current["hits"] += hits
            current["misses"] += misses
            current["puts"] += puts
            current["corrupt_misses"] += corrupt_misses
            _atomic_write(
                stats_path,
                (canonical_dumps(current) + "\n").encode("utf-8"),
            )
        except OSError:
            pass
        finally:
            if fcntl is not None:
                try:
                    fcntl.flock(fd, fcntl.LOCK_UN)
                except OSError:
                    pass
            os.close(fd)

    # ------------------------------------------------------------------
    # Inventory / maintenance
    # ------------------------------------------------------------------

    def _walk_refs(self, kind: str):
        base = os.path.join(self.root, kind)
        if not os.path.isdir(base):
            return
        for fan in sorted(os.listdir(base)):
            fan_dir = os.path.join(base, fan)
            if not os.path.isdir(fan_dir):
                continue
            for name in sorted(os.listdir(fan_dir)):
                if name.endswith(".tmp"):
                    continue
                yield os.path.join(fan_dir, name)

    def stats(self) -> Dict[str, Any]:
        """Inventory + cumulative usage counters."""
        cells = sum(1 for _ in self._walk_refs("cells"))
        artifacts = sum(1 for _ in self._walk_refs("artifacts"))
        jobs = sum(1 for _ in self._walk_refs("jobs"))
        blobs = 0
        blob_bytes = 0
        for path in self._walk_refs("objects"):
            blobs += 1
            try:
                blob_bytes += os.path.getsize(path)
            except OSError:
                pass
        usage = dict.fromkeys(_USAGE_KEYS, 0)
        try:
            with open(os.path.join(self.root, "stats.json"), "r",
                      encoding="utf-8") as handle:
                loaded = json.load(handle)
            if isinstance(loaded, dict):
                usage.update({
                    k: int(loaded.get(k, 0)) for k in _USAGE_KEYS
                })
        except (OSError, ValueError, TypeError):
            pass
        return {
            "root": self.root,
            "format": STORE_FORMAT_VERSION,
            "cells": cells,
            "artifacts": artifacts,
            "jobs": jobs,
            "blobs": blobs,
            "blob_bytes": blob_bytes,
            **usage,
        }

    def _referenced_digests(self) -> set:
        referenced = set()
        for kind in ("cells", "artifacts", "jobs"):
            for path in self._walk_refs(kind):
                try:
                    with open(path, "r", encoding="ascii") as handle:
                        digest = handle.read().strip()
                except (OSError, UnicodeDecodeError):
                    continue
                if digest:
                    referenced.add(digest)
        return referenced

    def verify(self, repair: bool = False) -> Dict[str, Any]:
        """Fsck the store: checksum every blob, cross-check every ref.

        Pass one walks ``objects/`` re-hashing each blob against its
        name; with ``repair=True`` a corrupt blob moves (atomically)
        into ``quarantine/<digest>`` for post-mortem instead of being
        deleted.  Pass two walks the ``cells/`` and ``artifacts/`` refs:
        a ref that is unreadable, empty, or points at a missing or
        corrupt blob is *dangling* — with ``repair=True`` it is pruned,
        so the next cached sweep recomputes exactly those cells.  Stale
        ``.tmp`` orphans (older than the gc grace period, e.g. left by
        a writer that died mid-write) are counted and, on repair,
        removed.

        Returns the count report; ``"ok"`` is True when nothing was
        found wrong (an already-repaired store verifies clean).
        """
        report: Dict[str, Any] = {
            "objects": 0, "corrupt_objects": 0, "quarantined": 0,
            "refs": 0, "dangling_refs": 0, "pruned_refs": 0,
            "tmp_files": 0, "removed_tmp_files": 0,
        }
        corrupt: set = set()
        stale_before = time.time() - self.GC_TMP_GRACE_SECONDS
        base = os.path.join(self.root, "objects")
        if os.path.isdir(base):
            for fan in sorted(os.listdir(base)):
                fan_dir = os.path.join(base, fan)
                if not os.path.isdir(fan_dir):
                    continue
                for name in sorted(os.listdir(fan_dir)):
                    path = os.path.join(fan_dir, name)
                    if name.endswith(".tmp"):
                        try:
                            if os.path.getmtime(path) >= stale_before:
                                continue  # possibly in flight
                        except OSError:
                            continue
                        report["tmp_files"] += 1
                        if repair:
                            try:
                                os.unlink(path)
                                report["removed_tmp_files"] += 1
                            except OSError:
                                pass
                        continue
                    report["objects"] += 1
                    try:
                        with open(path, "rb") as handle:
                            digest = hashlib.sha256(
                                handle.read()
                            ).hexdigest()
                    except OSError:
                        digest = None
                    if digest == name:
                        continue
                    report["corrupt_objects"] += 1
                    corrupt.add(name)
                    if repair:
                        quarantine = os.path.join(
                            self.root, "quarantine", name
                        )
                        try:
                            os.makedirs(os.path.dirname(quarantine),
                                        exist_ok=True)
                            os.replace(path, quarantine)
                            report["quarantined"] += 1
                        except OSError:
                            pass
        for kind in ("cells", "artifacts", "jobs"):
            for path in self._walk_refs(kind):
                report["refs"] += 1
                try:
                    with open(path, "r", encoding="ascii") as handle:
                        digest = handle.read().strip()
                except (OSError, UnicodeDecodeError):
                    digest = ""
                if (
                    digest
                    and digest not in corrupt
                    and os.path.exists(
                        self._fan_path("objects", digest)
                    )
                ):
                    continue
                report["dangling_refs"] += 1
                if repair:
                    try:
                        os.unlink(path)
                        report["pruned_refs"] += 1
                    except OSError:
                        pass
        report["ok"] = not (
            report["corrupt_objects"]
            or report["dangling_refs"]
            or report["tmp_files"]
        )
        return report

    #: gc leaves ``.tmp`` files younger than this alone: they may be a
    #: concurrent writer's in-flight atomic write, and unlinking one
    #: would make that writer's os.replace raise.
    GC_TMP_GRACE_SECONDS = 3600

    def gc(self) -> Dict[str, int]:
        """Delete unreferenced blobs and stale temp files.

        Returns ``{"removed_blobs": n, "freed_bytes": b}``.  Safe to run
        while other processes read or write the store: fresh ``.tmp``
        files are left for their writer, and a concurrently *written*
        blob whose ref has not landed yet can be collected, in which
        case the writer's next reader simply misses and recomputes.
        """
        referenced = self._referenced_digests()
        removed = 0
        freed = 0
        stale_before = time.time() - self.GC_TMP_GRACE_SECONDS
        base = os.path.join(self.root, "objects")
        if os.path.isdir(base):
            for fan in sorted(os.listdir(base)):
                fan_dir = os.path.join(base, fan)
                if not os.path.isdir(fan_dir):
                    continue
                for name in sorted(os.listdir(fan_dir)):
                    path = os.path.join(fan_dir, name)
                    if name.endswith(".tmp"):
                        try:
                            if os.path.getmtime(path) >= stale_before:
                                continue  # possibly in flight
                        except OSError:
                            continue
                    elif name in referenced:
                        continue
                    try:
                        size = os.path.getsize(path)
                        os.unlink(path)
                    except OSError:
                        continue
                    removed += 1
                    freed += size
                try:
                    os.rmdir(fan_dir)  # only succeeds when empty
                except OSError:
                    pass
        return {"removed_blobs": removed, "freed_bytes": freed}

    def clear(self) -> None:
        """Empty the store (cells, artifacts, blobs, counters).

        Refuses to touch a directory that does not carry the store's
        ``format.json`` marker, so a mistyped ``--store`` path can never
        wipe unrelated data.
        """
        if not os.path.exists(self._marker_path()):
            raise StoreError(
                f"{self.root} is not an experiment store "
                f"(no format.json marker); refusing to clear it"
            )
        for kind in ("objects", "cells", "artifacts", "jobs"):
            path = os.path.join(self.root, kind)
            shutil.rmtree(path, ignore_errors=True)
            os.makedirs(path, exist_ok=True)
        for name in ("stats.json", "stats.lock"):
            try:
                os.unlink(os.path.join(self.root, name))
            except OSError:
                pass

    def __repr__(self) -> str:
        return f"ExperimentStore({self.root!r})"
