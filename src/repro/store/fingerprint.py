"""Deterministic fingerprints for experiment cells.

A cell fingerprint is a SHA-256 over the canonical JSON encoding of
everything that determines a cell's result:

* a **code version salt** — the hash of every semantic source file of
  the simulator, so any code change invalidates the whole store rather
  than serving stale results;
* the **workload identity** — its name plus the hash of its linked
  program bytes (so generated/synthetic programs fingerprint by
  content, not by name);
* the full **configuration** — every :class:`SimulationConfig` field,
  with the in-memory edge profile replaced by a content digest;
* the **engine**, the ``fast`` flag, and ``max_blocks``;
* the registered **component catalog** (externally registered codecs
  or strategies change behaviour without changing repo sources);
* the ``REPRO_STORE_SALT`` environment variable, for manual
  invalidation.

Simulation runs are deterministic (no wall clock, no threads), so equal
fingerprints imply byte-identical results — the property the
:class:`~repro.store.executor.CachingExecutor` relies on.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
from typing import Any, Dict, List, Optional

from ..cfg.profile import EdgeProfile
from ..compress.codec import is_pipeline_spec
from ..compress.pipeline import parse_pipeline_spec
from ..core.config import SimulationConfig
from ..memory.hierarchy import get_hierarchy
from ..registry import catalog_signature
from ..workloads.suite import Workload

#: Bumped on any change to the fingerprint payload shape itself.
FINGERPRINT_VERSION = 1

#: Subpackages whose sources determine simulation results.  ``api``,
#: ``analysis`` (bar the sweep engines), ``store``, and the CLI shape
#: output, not cell results, and are deliberately excluded so refactors
#: there keep the cache warm.
_SEMANTIC_SUBPACKAGES = (
    "cfg",
    "compress",
    "core",
    "isa",
    "memory",
    "runtime",
    "selection",
    "strategies",
    "workloads",
)

#: Individual semantic modules outside those subpackages.
_SEMANTIC_MODULES = ("analysis/sweep.py",)

_code_version_cache: Optional[str] = None


def canonical_dumps(obj: Any) -> str:
    """Canonical JSON: sorted keys, no whitespace, ASCII-only.

    The one serialisation used for fingerprint payloads and stored cell
    records, so identical data always produces identical bytes.
    """
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


def code_version() -> str:
    """Hash of every semantic source file (cached per process).

    Any edit to the simulator's cfg/compress/core/isa/memory/runtime/
    selection/strategies/workloads code — or to the sweep engines —
    changes this value and therefore every cell fingerprint.
    """
    global _code_version_cache
    if _code_version_cache is not None:
        return _code_version_cache
    root = pathlib.Path(__file__).resolve().parent.parent
    files: List[pathlib.Path] = []
    for sub in _SEMANTIC_SUBPACKAGES:
        files.extend(sorted((root / sub).rglob("*.py")))
    for name in _SEMANTIC_MODULES:
        files.append(root / name)
    hasher = hashlib.sha256()
    for path in sorted(files):
        hasher.update(str(path.relative_to(root)).encode("utf-8"))
        hasher.update(b"\0")
        try:
            hasher.update(path.read_bytes())
        except OSError:  # pragma: no cover - frozen/zipped installs
            pass
        hasher.update(b"\0")
    _code_version_cache = hasher.hexdigest()
    return _code_version_cache


def workload_digest(workload: Workload) -> str:
    """Stable workload identity: name plus linked program bytes."""
    program = workload.program
    if not program.is_linked:
        program.link()
    digest = hashlib.sha256(program.encode()).hexdigest()
    return f"{workload.name}:{digest}"


def _profile_digest(profile: Optional[EdgeProfile]) -> Optional[str]:
    """Content digest of an offline edge profile (None passes through)."""
    if profile is None:
        return None
    payload = {
        "edges": sorted(
            f"{src}->{dst}:{count}"
            for (src, dst), count in profile.edge_counts.items()
        ),
        "blocks": sorted(
            f"{block}:{count}"
            for block, count in profile.block_counts.items()
        ),
    }
    return hashlib.sha256(
        canonical_dumps(payload).encode("utf-8")
    ).hexdigest()


def config_signature(config: SimulationConfig) -> Dict[str, Any]:
    """JSON-safe form of every config field, profiles hashed by content.

    The ``hierarchy`` field is expanded to the *resolved* preset's full
    geometry, not just its name: a user-registered custom hierarchy
    lives outside the repo sources (so ``code_version`` cannot see it),
    and re-registering different numbers under the same name must not
    serve stale cached results.
    """
    out: Dict[str, Any] = {}
    for f in dataclasses.fields(SimulationConfig):
        value = getattr(config, f.name)
        if f.name == "profile":
            value = _profile_digest(value)
        elif f.name == "hierarchy":
            value = dataclasses.asdict(get_hierarchy(value))
        elif f.name == "codec" and is_pipeline_spec(value):
            # Pipeline specs expand to their parsed structure so the
            # fingerprint sees layer kinds and parameters explicitly
            # (and both spec spellings, already canonicalized by the
            # config, stay one cache entry).
            value = parse_pipeline_spec(value).to_json()
        out[f.name] = value
    return out


def cell_fingerprint(
    workload: Workload,
    config: SimulationConfig,
    engine: str = "machine",
    fast: bool = True,
    max_blocks: Optional[int] = None,
    *,
    workload_id: Optional[str] = None,
    catalog: Optional[Dict[str, List[str]]] = None,
) -> str:
    """The canonical hash identifying one experiment cell.

    See the module docstring for exactly what participates; equal
    fingerprints imply byte-identical cell results.  ``workload_id``
    and ``catalog`` accept precomputed :func:`workload_digest` /
    :func:`~repro.registry.catalog_signature` values so grid callers
    hash each program and the component catalog once, not once per
    cell — on a warm run fingerprinting *is* the dominant cost.
    """
    payload = {
        "v": FINGERPRINT_VERSION,
        "code": code_version(),
        "salt": os.environ.get("REPRO_STORE_SALT", ""),
        "catalog": catalog if catalog is not None
        else catalog_signature(),
        "workload": workload_id if workload_id is not None
        else workload_digest(workload),
        "config": config_signature(config),
        "engine": engine,
        "fast": bool(fast),
        "max_blocks": max_blocks,
    }
    return hashlib.sha256(
        canonical_dumps(payload).encode("utf-8")
    ).hexdigest()
