"""Declarative, seeded fault plans.

A :class:`FaultPlan` describes *which* failures to inject and *where*,
as plain data: it round-trips through JSON so the same chaos scenario
can live in a test, on the command line, or in the ``REPRO_FAULTS``
environment variable (which is how worker processes forked by the
parallel executor inherit the plan).  Injection itself — matching,
occurrence counting, and the actual raise/sleep/exit/corrupt effects —
lives in :mod:`repro.faults.runtime`.

Determinism: rules fire on the first ``times`` matching occurrences at
their site (per process), and probabilistic rules (``rate``) hash the
plan seed with the site, key, and occurrence index, so the same plan
against the same sweep injects the same faults every run.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, field
from typing import Any, List, Mapping, Optional, Sequence

#: Environment variable carrying a fault plan into every process that
#: imports the injection hooks (the chaos opt-in).  The value is either
#: inline JSON (starts with ``{``) or a path to a JSON file.
FAULTS_ENV = "REPRO_FAULTS"

#: Recognised fault kinds (the effect a firing rule has).
KINDS = ("transient", "hang", "crash", "corrupt", "torn")

#: Recognised injection sites (where hooks call into the harness).
SITES = ("cell", "cas.read", "cas.write")


class FaultPlanError(ValueError):
    """Raised for malformed fault plans (unknown kinds/sites/shapes)."""


@dataclass(frozen=True)
class FaultRule:
    """One injection rule.

    ``kind`` is the effect; ``site`` the hook it applies to; ``match``
    a substring filter on the site key (cell keys look like
    ``"<workload>:<label>"``, CAS keys are digests/ref names; ``""``
    matches everything).  The rule fires on the first ``times`` matching
    occurrences (``None`` = every occurrence); an optional ``rate`` in
    (0, 1] additionally gates each firing on a deterministic hash of the
    plan seed.  ``seconds`` is the sleep length of a ``hang``.
    """

    kind: str
    site: str = "cell"
    match: str = ""
    times: Optional[int] = 1
    rate: Optional[float] = None
    seconds: float = 60.0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise FaultPlanError(
                f"unknown fault kind '{self.kind}'; available: {KINDS}"
            )
        if self.site not in SITES:
            raise FaultPlanError(
                f"unknown fault site '{self.site}'; available: {SITES}"
            )
        if self.times is not None and self.times < 1:
            raise FaultPlanError(
                f"times must be >= 1 or null (always), got {self.times}"
            )
        if self.rate is not None and not (0.0 < self.rate <= 1.0):
            raise FaultPlanError(
                f"rate must be in (0, 1], got {self.rate}"
            )
        if self.seconds < 0:
            raise FaultPlanError(
                f"seconds must be >= 0, got {self.seconds}"
            )


@dataclass(frozen=True)
class FaultPlan:
    """A seeded list of :class:`FaultRule`, JSON round-trippable."""

    rules: Sequence[FaultRule] = field(default_factory=tuple)
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))

    def to_json(self) -> str:
        return json.dumps(
            {
                "seed": self.seed,
                "rules": [asdict(rule) for rule in self.rules],
            },
            sort_keys=True,
        )

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        if not isinstance(data, Mapping):
            raise FaultPlanError(
                f"fault plan must be a JSON object, got {type(data).__name__}"
            )
        unknown = set(data) - {"seed", "rules"}
        if unknown:
            raise FaultPlanError(
                f"unknown fault plan keys: {sorted(unknown)}"
            )
        rules = []
        for entry in data.get("rules", ()):
            if not isinstance(entry, Mapping):
                raise FaultPlanError(
                    f"fault rule must be a JSON object, got {entry!r}"
                )
            try:
                rules.append(FaultRule(**dict(entry)))
            except TypeError as exc:
                raise FaultPlanError(f"bad fault rule {entry!r}: {exc}") \
                    from None
        return cls(rules=rules, seed=int(data.get("seed", 0)))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise FaultPlanError(f"invalid fault plan JSON: {exc}") \
                from None
        return cls.from_dict(data)

    def fraction(self, rule_index: int, site: str, key: str,
                 occurrence: int) -> float:
        """Deterministic pseudo-random fraction in [0, 1) for ``rate``
        gating: same plan + same sweep => same firing pattern."""
        digest = hashlib.sha256(
            f"{self.seed}:{rule_index}:{site}:{key}:{occurrence}"
            .encode("utf-8")
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2**64


def plan_from_env(environ: Optional[Mapping[str, str]] = None,
                  ) -> Optional[FaultPlan]:
    """The plan named by ``$REPRO_FAULTS``, or None when unset.

    Inline JSON and file paths are both accepted; a malformed value is
    an error (silently ignoring a chaos request would un-test exactly
    what the harness exists to test).
    """
    raw = (environ if environ is not None else os.environ).get(
        FAULTS_ENV, ""
    )
    if not raw:
        return None
    if not raw.lstrip().startswith("{"):
        with open(raw, "r", encoding="utf-8") as handle:
            raw = handle.read()
    return FaultPlan.from_json(raw)
