"""Retry policies: bounded attempts, deterministic backoff, timeouts.

A :class:`RetryPolicy` travels with an executor (pickled into worker
processes alongside ``run_partition``) and governs two things:

* the per-cell wall-clock **timeout** each simulation attempt runs
  under (enforced by :func:`repro.faults.runtime.cell_deadline`);
* how many **attempts** a failing cell gets, and how long to back off
  between them.

Backoff is exponential with deterministic jitter: the jitter fraction
hashes the policy seed with the cell key and attempt number, so a
chaos run's retry schedule — like its fault schedule — is reproducible.
The default policy (``attempts=1``, no timeout) is the fail-fast seed
behaviour and costs nothing on the fault-free path.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class RetryPolicy:
    """How a failing sweep cell is retried.

    ``attempts`` is the total tries per cell (1 = no retry);
    ``timeout`` the per-attempt wall-clock budget in seconds (None =
    unbounded).  Between attempt ``n`` and ``n+1`` the executor sleeps
    ``min(backoff_base * backoff_factor**(n-1), backoff_max)`` scaled
    by ``1 + jitter * h`` where ``h`` in [0, 1) is a deterministic hash
    of (seed, cell key, attempt).
    """

    attempts: int = 1
    timeout: Optional[float] = None
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(
                f"attempts must be >= 1, got {self.attempts}"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(
                f"timeout must be positive, got {self.timeout}"
            )
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff bounds must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")

    def delay(self, attempt: int, key: str = "") -> float:
        """Seconds to sleep before ``attempt`` (the 2nd, 3rd, ...)."""
        if attempt <= 1:
            return 0.0
        raw = self.backoff_base * self.backoff_factor ** (attempt - 2)
        raw = min(raw, self.backoff_max)
        digest = hashlib.sha256(
            f"{self.seed}:{key}:{attempt}".encode("utf-8")
        ).digest()
        fraction = int.from_bytes(digest[:8], "big") / 2**64
        return raw * (1.0 + self.jitter * fraction)
