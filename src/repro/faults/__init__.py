"""``repro.faults`` — fault injection, retry policies, chaos tooling.

The robustness layer of the experiment platform, in three parts:

* **Fault plans** (:mod:`repro.faults.plan`): declarative, seeded
  descriptions of which failures to inject (worker crash, cell hang,
  transient exception, corrupted/truncated CAS object, torn write) and
  where.  Plans round-trip through JSON and the ``REPRO_FAULTS``
  environment variable, so chaos scenarios are reproducible and reach
  forked worker processes.
* **Runtime hooks** (:mod:`repro.faults.runtime`): the injection sites
  (``cell``, ``cas.read``, ``cas.write``) the executor and store call
  into, per-cell SIGALRM deadlines, and the fault taxonomy
  (:class:`TransientFault`, :class:`WorkerCrashError`,
  :class:`CellTimeoutError`).
* **Retry policies** (:mod:`repro.faults.retry`): bounded attempts with
  deterministic exponential backoff and per-cell timeouts, wired into
  every executor via ``repro.api.make_executor(retry=...)`` and the CLI
  ``--retries`` / ``--cell-timeout`` flags.

The invariant the chaos test suite (``tests/chaos/``) pins: a sweep
run under an active fault plan either recovers every cell (and its
``ResultSet.canonical_json`` is byte-identical to a fault-free run) or
degrades each exhausted cell into a structured error row carrying its
attempt provenance — it never aborts, and it never caches a failure.

This package is intentionally outside the store's ``code_version``
fingerprint roots: injected faults and retries change *how* results
are computed, never *what* they are.
"""

from __future__ import annotations

from .plan import (
    FAULTS_ENV,
    KINDS,
    SITES,
    FaultPlan,
    FaultPlanError,
    FaultRule,
    plan_from_env,
)
from .retry import RetryPolicy
from .runtime import (
    CellTimeoutError,
    FaultError,
    TransientFault,
    WorkerCrashError,
    cell_deadline,
    cell_guard,
    classify_fault,
    corrupt_bytes,
    current_plan,
    current_policy,
    in_subprocess,
    install_plan,
    maybe_fire,
    retry_scope,
    truncate_bytes,
)

__all__ = [
    "CellTimeoutError",
    "FAULTS_ENV",
    "FaultError",
    "FaultPlan",
    "FaultPlanError",
    "FaultRule",
    "KINDS",
    "RetryPolicy",
    "SITES",
    "TransientFault",
    "WorkerCrashError",
    "cell_deadline",
    "cell_guard",
    "classify_fault",
    "corrupt_bytes",
    "current_plan",
    "current_policy",
    "in_subprocess",
    "install_plan",
    "maybe_fire",
    "plan_from_env",
    "retry_scope",
    "truncate_bytes",
]
