"""Process-local fault injection and per-cell deadlines.

The injection hooks are three cheap calls sprinkled through the
executor/store stack:

* :func:`maybe_fire` at a named **site** with a stable **key** — the
  single entry point every hook uses.  With no plan installed it is a
  dict lookup and a ``None`` return, so the fault-free path stays
  effectively free (guarded by the ``chaos_overhead`` benchmark).
* :func:`cell_guard` wraps one simulation cell: it arms the per-cell
  wall-clock deadline of the active :class:`~repro.faults.retry.RetryPolicy`
  and fires ``site="cell"`` faults (transient raise, hang, worker
  crash).
* :func:`retry_scope` installs the policy for the duration of one
  partition run (workers enter it inside ``run_partition``).

Effects by kind:

* ``transient`` — raises :class:`TransientFault` (an ordinary
  ``Exception``: the sweep layer turns it into an error row, the retry
  layer recovers it).
* ``hang`` — sleeps ``rule.seconds``; with a deadline armed the sleep
  is cut short by :class:`CellTimeoutError`.
* ``crash`` — returned as ``"crash"`` **only inside a subprocess**
  (``multiprocessing.parent_process() is not None``); the caller then
  ``os._exit``\\ s to model a dying worker.  In the main process the
  rule is inert (it neither fires nor consumes its budget), so a
  serial fallback after pool breakage completes cleanly.
* ``corrupt`` / ``torn`` — returned as strings; data-path callers
  mutate the bytes with :func:`corrupt_bytes` / :func:`truncate_bytes`
  and let checksum validation catch the damage downstream.

Plans install either explicitly (:func:`install_plan`, which also
exports ``$REPRO_FAULTS`` so forked worker processes inherit the plan)
or implicitly from the environment on first use.
"""

from __future__ import annotations

import contextlib
import logging
import multiprocessing
import os
import signal
import threading
import time
from typing import Dict, Iterator, List, Optional, Tuple

from ..log import kv
from .plan import FAULTS_ENV, FaultPlan, plan_from_env
from .retry import RetryPolicy

_log = logging.getLogger("repro.faults")


class FaultError(Exception):
    """Base class of every injected fault."""


class TransientFault(FaultError):
    """An injected transient failure (recoverable by retrying)."""


class WorkerCrashError(FaultError):
    """Stand-in raised where a real worker crash cannot happen."""


class CellTimeoutError(Exception):
    """A simulation cell exceeded its wall-clock deadline.

    Deliberately *not* a :class:`FaultError`: deadlines fire on genuine
    hangs too, not only injected ones.
    """


#: Exception-class-name -> fault-class tag for attempt provenance.
_FAULT_CLASSES = {
    "TransientFault": "transient",
    "WorkerCrashError": "crash",
    "CellTimeoutError": "timeout",
    "BrokenProcessPool": "crash",
}


def classify_fault(message: Optional[str]) -> Optional[str]:
    """Fault class of an error-row message (``"ExcName: detail"``)."""
    if not message:
        return None
    name = message.split(":", 1)[0].strip()
    return _FAULT_CLASSES.get(name, "error")


def in_subprocess() -> bool:
    """True when running below another Python process (a pool worker or
    a ``multiprocessing`` child) — where a hard exit is containable."""
    return multiprocessing.parent_process() is not None


def corrupt_bytes(data: bytes) -> bytes:
    """Deterministically flip the first byte (corruption simulant)."""
    if not data:
        return b"\xff"
    return bytes([data[0] ^ 0xFF]) + data[1:]


def truncate_bytes(data: bytes) -> bytes:
    """Drop the second half of ``data`` (torn-write simulant)."""
    return data[: len(data) // 2]


# ----------------------------------------------------------------------
# Active plan
# ----------------------------------------------------------------------

#: (env raw value, parsed plan) cache so env-installed plans parse once.
_env_cache: Tuple[Optional[str], Optional[FaultPlan]] = (None, None)
#: Explicitly installed plan (wins over the environment).
_installed: Optional[FaultPlan] = None
#: Per-rule (matched occurrences, fired count), keyed by plan identity
#: so counters reset whenever a different plan becomes active.
_counters: Dict[int, List[List[int]]] = {}


def current_plan() -> Optional[FaultPlan]:
    """The active plan: explicitly installed, else from the env."""
    global _env_cache
    if _installed is not None:
        return _installed
    raw = os.environ.get(FAULTS_ENV) or None
    if raw != _env_cache[0]:
        _env_cache = (raw, plan_from_env() if raw else None)
        _counters.clear()
    return _env_cache[1]


def _rule_counters(plan: FaultPlan) -> List[List[int]]:
    state = _counters.get(id(plan))
    if state is None or len(state) != len(plan.rules):
        state = [[0, 0] for _ in plan.rules]
        _counters[id(plan)] = state
    return state


@contextlib.contextmanager
def install_plan(plan: Optional[FaultPlan]) -> Iterator[None]:
    """Scope ``plan`` as the active fault plan (None = chaos off).

    Also exports ``$REPRO_FAULTS`` so worker processes forked while the
    scope is open inherit the same plan; both are restored on exit.
    """
    global _installed
    previous = _installed
    previous_env = os.environ.get(FAULTS_ENV)
    _installed = plan
    _counters.pop(id(plan), None)
    if plan is not None:
        os.environ[FAULTS_ENV] = plan.to_json()
    else:
        os.environ.pop(FAULTS_ENV, None)
    try:
        yield
    finally:
        _installed = previous
        _counters.pop(id(plan), None)
        if previous_env is None:
            os.environ.pop(FAULTS_ENV, None)
        else:
            os.environ[FAULTS_ENV] = previous_env


def maybe_fire(site: str, key: str) -> Optional[str]:
    """Fire the first matching active rule at ``site``; see module doc.

    Returns the fired kind for data-effect kinds (``"corrupt"``,
    ``"torn"``, ``"crash"``, ``"hang"``) and raises for ``transient``;
    returns None when nothing fires.
    """
    plan = current_plan()
    if plan is None:
        return None
    counters = _rule_counters(plan)
    for index, rule in enumerate(plan.rules):
        if rule.site != site or rule.match not in key:
            continue
        if rule.kind == "crash" and not in_subprocess():
            continue  # inert outside workers; budget not consumed
        occurrence, fired = counters[index]
        counters[index][0] = occurrence + 1
        if rule.times is not None and fired >= rule.times:
            continue
        if rule.rate is not None and plan.fraction(
            index, site, key, occurrence
        ) >= rule.rate:
            continue
        counters[index][1] = fired + 1
        # Rare by construction (faults are injected sparingly), so a
        # parseable record of every firing costs nothing on the
        # fault-free path the chaos_overhead benchmark guards.
        _log.info(kv(
            "fault.fired", site=site, key=key, kind=rule.kind,
            rule=index, fired=fired + 1,
        ))
        if rule.kind == "transient":
            raise TransientFault(
                f"injected transient fault at {site}:{key}"
            )
        if rule.kind == "hang":
            time.sleep(rule.seconds)
        return rule.kind
    return None


# ----------------------------------------------------------------------
# Per-cell deadlines and the active retry policy
# ----------------------------------------------------------------------

_active_policy: Optional[RetryPolicy] = None
_deadline_armed = False


def current_policy() -> Optional[RetryPolicy]:
    """The retry policy installed by the innermost :func:`retry_scope`."""
    return _active_policy


@contextlib.contextmanager
def retry_scope(policy: Optional[RetryPolicy]) -> Iterator[None]:
    """Scope ``policy`` as the active retry/timeout policy."""
    global _active_policy
    previous = _active_policy
    _active_policy = policy
    try:
        yield
    finally:
        _active_policy = previous


@contextlib.contextmanager
def cell_deadline(seconds: Optional[float]) -> Iterator[None]:
    """Raise :class:`CellTimeoutError` after ``seconds`` of wall clock.

    SIGALRM-based, so it cuts through pure-Python compute loops and
    ``time.sleep``.  Degrades to a no-op (no enforcement) off the main
    thread or where SIGALRM is unavailable; nested deadlines keep the
    outermost timer.
    """
    global _deadline_armed
    if (
        seconds is None
        or _deadline_armed
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _on_alarm(signum, frame):
        raise CellTimeoutError(
            f"cell exceeded its {seconds:g}s wall-clock deadline"
        )

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    _deadline_armed = True
    try:
        yield
    finally:
        _deadline_armed = False
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


@contextlib.contextmanager
def cell_guard(workload_name: str, label: str) -> Iterator[None]:
    """Injection point + deadline around one simulation cell.

    The cell key is ``"<workload>:<label>"`` (what fault-rule ``match``
    filters see).  A ``crash`` rule hard-exits here — only ever inside
    a worker process — to model a dying worker mid-cell.
    """
    policy = _active_policy
    with cell_deadline(policy.timeout if policy else None):
        kind = maybe_fire("cell", f"{workload_name}:{label}")
        if kind == "crash":
            os._exit(70)  # noqa: SLF001 - modelling an abrupt worker death
        yield
