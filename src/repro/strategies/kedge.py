"""The k-edge compression algorithm (Section 3 + Section 5 of the paper).

"This algorithm compresses a basic block that has been visited by the
execution thread when the k-th edge following its visit is traversed."

The published mechanism (Section 5) is counter-based and this module
implements it verbatim:

* each block (unit) has a counter, reset to zero when the block is
  executed;
* at each branch, the counter of each uncompressed block is increased
  by 1;
* blocks whose counter reaches k have their decompressed version deleted.

``k`` tunes aggressiveness: k=1 recompresses a block as soon as the first
edge after its visit is traversed (minimum memory, maximum churn); large k
delays recompression (better performance, more memory) — the E1 sweep
measures exactly this trade-off.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .base import CompressionPolicy


class KEdgeCompression(CompressionPolicy):
    """Counter-based k-edge recompression policy."""

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self.name = f"kedge({k})"
        self._counters: Dict[int, int] = {}

    def on_unit_decompressed(self, unit_id: int) -> None:
        # A freshly decompressed (possibly pre-decompressed, not yet
        # executed) unit starts counting from zero.
        self._counters[unit_id] = 0

    def on_unit_enter(self, unit_id: int) -> None:
        # "a counter, which is reset to zero when the basic block is
        # executed" (Section 5).
        self._counters[unit_id] = 0

    def on_edge(self, src_unit: int, dst_unit: int) -> List[int]:
        # "At each branch, the counter of each (uncompressed) basic block
        # is increased by 1 and (the decompressed versions of) the basic
        # blocks whose counter reaches k are deleted."  The destination is
        # exempt: it is about to execute, which resets its counter anyway,
        # and deleting it here would force an immediate refetch.
        expired: List[int] = []
        for unit_id in self.view.resident_units():
            if unit_id == dst_unit:
                continue
            count = self._counters.get(unit_id, 0) + 1
            self._counters[unit_id] = count
            if count >= self.k:
                expired.append(unit_id)
        return sorted(expired)

    def on_unit_released(self, unit_id: int) -> None:
        self._counters.pop(unit_id, None)

    def counter(self, unit_id: int) -> Optional[int]:
        """Current counter of ``unit_id`` (None when untracked)."""
        return self._counters.get(unit_id)


class NeverRecompress(CompressionPolicy):
    """k = infinity: once decompressed, a block stays decompressed.

    This is the upper bound on memory consumption (converges to the fully
    uncompressed image over the touched code) and the lower bound on
    recompression overhead; E1 uses it as the right edge of the k sweep.
    """

    name = "never"

    def on_unit_enter(self, unit_id: int) -> None:
        pass

    def on_edge(self, src_unit: int, dst_unit: int) -> List[int]:
        return []
