"""Next-block predictors for pre-decompress-single (Section 4).

"We predict the block (among these...) that is to be the most likely one to
be reached" — the paper does not fix the prediction mechanism, so the E7
ablation compares the natural candidates:

* :class:`StaticProfilePredictor` — offline edge profile from a training
  run (profile-guided, the strongest realistic option in 2005-era systems);
* :class:`OnlineProfilePredictor` — edge counts accumulated during the run
  itself (no training run needed, adapts to the input);
* :class:`LastSuccessorPredictor` — remembers the last successor taken from
  each block (1-bit-per-branch analogue);
* :class:`MarkovPredictor` — first-order context: the successor most often
  taken from ``cur`` given the previous block, falling back to plain
  online counts.
"""

from __future__ import annotations

import abc
from collections import defaultdict
from typing import Dict, Optional, Tuple

from ..cfg.builder import ProgramCFG
from ..cfg.profile import EdgeProfile
from ..registry import Registry


class Predictor(abc.ABC):
    """Predicts the successor the execution thread will take next."""

    name: str = "abstract"

    def bind(self, cfg: ProgramCFG) -> None:
        """Attach to the CFG being executed."""
        self.cfg = cfg

    @abc.abstractmethod
    def predict(self, block_id: int) -> Optional[int]:
        """Most likely successor of ``block_id`` (None at program exits)."""

    def update(self, src: int, dst: int) -> None:
        """Observe the actually-taken edge ``src -> dst``."""

    def predict_path(self, block_id: int, length: int) -> list:
        """Greedy predicted path of up to ``length`` blocks ahead."""
        path = []
        current = block_id
        for _ in range(length):
            nxt = self.predict(current)
            if nxt is None:
                break
            path.append(nxt)
            current = nxt
        return path


class StaticProfilePredictor(Predictor):
    """Profile-guided prediction from an offline :class:`EdgeProfile`."""

    name = "static-profile"

    def __init__(self, profile: EdgeProfile) -> None:
        self.profile = profile

    def predict(self, block_id: int) -> Optional[int]:
        return self.profile.most_likely_successor(self.cfg, block_id)


class OnlineProfilePredictor(Predictor):
    """Edge counts accumulated during the run itself."""

    name = "online-profile"

    def __init__(self) -> None:
        self.profile = EdgeProfile()

    def predict(self, block_id: int) -> Optional[int]:
        return self.profile.most_likely_successor(self.cfg, block_id)

    def update(self, src: int, dst: int) -> None:
        self.profile.record_edge(src, dst)


class LastSuccessorPredictor(Predictor):
    """Predicts whatever successor was taken last time (cheap hardware
    analogue: one block id of state per block)."""

    name = "last-successor"

    def __init__(self) -> None:
        self._last: Dict[int, int] = {}

    def predict(self, block_id: int) -> Optional[int]:
        last = self._last.get(block_id)
        if last is not None:
            return last
        successors = sorted(self.cfg.successors(block_id))
        return successors[0] if successors else None

    def update(self, src: int, dst: int) -> None:
        self._last[src] = dst


class MarkovPredictor(Predictor):
    """First-order path context: P(next | previous, current).

    Falls back to zeroth-order online counts when the (previous, current)
    context has never been seen.
    """

    name = "markov"

    def __init__(self) -> None:
        self._context_counts: Dict[Tuple[int, int], Dict[int, int]] = (
            defaultdict(lambda: defaultdict(int))
        )
        self._fallback = OnlineProfilePredictor()
        self._previous: Optional[int] = None
        self._current: Optional[int] = None

    def bind(self, cfg: ProgramCFG) -> None:
        super().bind(cfg)
        self._fallback.bind(cfg)

    def predict(self, block_id: int) -> Optional[int]:
        if self._current == block_id and self._previous is not None:
            counts = self._context_counts.get((self._previous, block_id))
            if counts:
                return max(sorted(counts), key=lambda b: counts[b])
        return self._fallback.predict(block_id)

    def update(self, src: int, dst: int) -> None:
        if self._current == src and self._previous is not None:
            self._context_counts[(self._previous, src)][dst] += 1
        self._fallback.update(src, dst)
        self._previous, self._current = src, dst


#: The predictor family, in the unified component catalog.
PREDICTORS = Registry("predictors")
PREDICTORS.add("static-profile", StaticProfilePredictor)
PREDICTORS.add("online-profile", OnlineProfilePredictor)
PREDICTORS.add("last-successor", LastSuccessorPredictor)
PREDICTORS.add("markov", MarkovPredictor)


def make_predictor(
    name: str, profile: Optional[EdgeProfile] = None
) -> Predictor:
    """Instantiate a predictor by name.

    ``static-profile`` requires ``profile``; the others ignore it.
    """
    cls = PREDICTORS.get(name)
    if cls is StaticProfilePredictor:
        if profile is None:
            raise ValueError(
                "static-profile predictor needs an offline EdgeProfile"
            )
        return StaticProfilePredictor(profile)
    return cls()


def available_predictors() -> list:
    """Names of all predictors."""
    return PREDICTORS.names()
