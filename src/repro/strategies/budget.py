"""Memory-budget enforcement with victim selection (Section 2).

"All that needs to be done is to check before each basic block
decompression whether this decompression could result in exceeding the
maximum allowable memory space consumption, and if so, compress one of the
decompressed basic blocks... One could use LRU or a similar strategy to
select the victim."

The budget counts the *total* code footprint (compressed area + resident
decompressed copies), matching the paper's memory-space metric.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set


class BudgetError(RuntimeError):
    """Raised when the budget cannot be met even after evicting
    everything evictable (budget smaller than the compressed image plus
    the running block)."""


class MemoryBudget:
    """Cap on the code footprint, with pluggable victim selection.

    ``policy`` is one of:

    * ``"lru"``   — evict the least recently *used* (entered) unit;
    * ``"fifo"``  — evict the longest-resident unit;
    * ``"largest"`` — evict the biggest resident unit first (frees the
      most memory per patch cost).
    """

    POLICIES = ("lru", "fifo", "largest")

    def __init__(self, limit_bytes: int, policy: str = "lru") -> None:
        if limit_bytes <= 0:
            raise ValueError(
                f"budget must be positive, got {limit_bytes}"
            )
        if policy not in self.POLICIES:
            raise ValueError(
                f"unknown eviction policy '{policy}'; "
                f"available: {self.POLICIES}"
            )
        self.limit_bytes = limit_bytes
        self.policy = policy
        self._last_use: Dict[int, int] = {}
        self._resident_since: Dict[int, int] = {}
        self._clock = 0

    # ------------------------------------------------------------------
    # Bookkeeping driven by the simulator
    # ------------------------------------------------------------------

    def on_unit_enter(self, unit_id: int) -> None:
        """A block of ``unit_id`` was executed (refreshes recency)."""
        self._clock += 1
        self._last_use[unit_id] = self._clock

    def on_unit_decompressed(self, unit_id: int) -> None:
        """``unit_id`` became resident."""
        self._clock += 1
        self._resident_since[unit_id] = self._clock
        self._last_use.setdefault(unit_id, self._clock)

    def on_unit_released(self, unit_id: int) -> None:
        """``unit_id`` lost residency."""
        self._resident_since.pop(unit_id, None)

    # ------------------------------------------------------------------
    # Victim selection
    # ------------------------------------------------------------------

    def select_victims(
        self,
        needed_bytes: int,
        current_footprint: int,
        resident: Set[int],
        protected: Set[int],
        size_of: Callable[[int], int],
    ) -> List[int]:
        """Pick units to evict so ``current_footprint + needed_bytes``
        fits under the limit.

        ``protected`` units (the currently executing one and the immediate
        destination) are never chosen.  Raises :class:`BudgetError` when
        the goal is unreachable.
        """
        overshoot = current_footprint + needed_bytes - self.limit_bytes
        if overshoot <= 0:
            return []
        candidates = sorted(u for u in resident if u not in protected)
        if self.policy == "largest":
            candidates.sort(key=lambda unit: -size_of(unit))
        else:
            candidates.sort(key=self._rank)
        victims: List[int] = []
        freed = 0
        for unit in candidates:
            victims.append(unit)
            freed += size_of(unit)
            if freed >= overshoot:
                return victims
        raise BudgetError(
            f"cannot fit {needed_bytes} bytes under budget "
            f"{self.limit_bytes}: footprint {current_footprint}, "
            f"only {freed} evictable"
        )

    def _rank(self, unit_id: int) -> int:
        if self.policy == "lru":
            return self._last_use.get(unit_id, 0)
        return self._resident_since.get(unit_id, 0)  # fifo
