"""Recency-window compression: the natural alternative to k-edge.

The paper's k-edge rule (Section 3) recompresses a block when the k-th
edge *after its last execution* is traversed — per-block timers.  The
obvious alternative a designer would consider is a working-set rule: keep
the W most recently executed units decompressed, recompress everything
older.  Experiment E12 compares the two at matched memory budgets to
justify the paper's choice (k-edge releases cold blocks *eagerly* after
exactly k edges, while a window holds W slots even when the program needs
fewer; a window also recompresses hot-but-unlucky blocks under bursts).

This policy exists for that ablation; it is API-compatible with
:class:`~repro.strategies.base.CompressionPolicy` and can be injected via
``CodeCompressionManager(compression_policy=...)``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List

from .base import CompressionPolicy


class RecencyWindowCompression(CompressionPolicy):
    """Keep the ``window`` most recently *executed* units decompressed.

    Units that were decompressed but never executed (pre-decompression)
    occupy no window slot until first use; they are released only when
    they leave the window after being used, or by eviction policies
    elsewhere.
    """

    def __init__(self, window: int) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = window
        self.name = f"window({window})"
        self._recency: "OrderedDict[int, None]" = OrderedDict()

    def on_unit_enter(self, unit_id: int) -> None:
        self._recency.pop(unit_id, None)
        self._recency[unit_id] = None  # most recent at the end

    def on_edge(self, src_unit: int, dst_unit: int) -> List[int]:
        expired: List[int] = []
        resident = self.view.resident_units()
        while len(self._recency) > self.window:
            victim, _ = self._recency.popitem(last=False)
            if victim == dst_unit:
                # destination is about to run; re-insert as most recent
                self._recency[victim] = None
                if len(self._recency) <= self.window:
                    break
                continue
            if victim in resident:
                expired.append(victim)
        return expired

    def on_unit_released(self, unit_id: int) -> None:
        self._recency.pop(unit_id, None)

    @property
    def tracked(self) -> int:
        """Number of units currently holding window slots."""
        return len(self._recency)
