"""Pre-decompression strategies — Section 4, second option.

Both strategies use the decompression-side k-edge rule: "a basic block is
decompressed (if it is not already in the uncompressed form) when there are
at most k edges that need to be traversed before it could be reached."

* :class:`PreDecompressAll` decompresses **all** blocks at most k edges
  from the exit of the current block ("favors performance over memory
  space consumption").
* :class:`PreDecompressSingle` selects **one** block among them, the one
  predicted most likely to be reached ("favors memory space consumption
  over performance").
"""

from __future__ import annotations

from typing import List, Optional

from .base import STRATEGIES, DecompressionPolicy
from .predictor import Predictor


@STRATEGIES.register("pre-all")
class PreDecompressAll(DecompressionPolicy):
    """Decompress every block within k forward edges of the current exit."""

    uses_thread = True

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self.name = f"pre-all({k})"

    def on_program_start(self, entry_block: int) -> List[int]:
        # Warm the pipeline: the entry itself plus its k-neighbourhood
        # (the entry is needed unconditionally to begin execution).
        hood = self.view.cfg.forward_neighbourhood(entry_block, self.k)
        return sorted({entry_block} | hood)

    def on_block_exit(self, block_id: int) -> List[int]:
        return sorted(self.view.cfg.forward_neighbourhood(block_id, self.k))


@STRATEGIES.register("pre-single")
class PreDecompressSingle(DecompressionPolicy):
    """Decompress the single most-likely-needed block within k edges.

    The prediction follows the predictor's greedy most-likely path from
    the current block and picks the first block on it that is still
    compressed — the nearest future decompression on the expected path.
    """

    uses_thread = True

    def __init__(self, k: int, predictor: Predictor) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self.predictor = predictor
        self.name = f"pre-single({k},{predictor.name})"
        #: Most recent choice, for the simulator's accuracy accounting.
        self.last_choice: Optional[int] = None

    def bind(self, view) -> None:  # type: ignore[override]
        super().bind(view)
        self.predictor.bind(view.cfg)

    def on_program_start(self, entry_block: int) -> List[int]:
        return [entry_block]

    def on_block_exit(self, block_id: int) -> List[int]:
        self.last_choice = None
        path = self.predictor.predict_path(block_id, self.k)
        for candidate in path:
            unit = self.view.unit_of(candidate)
            if not self.view.is_unit_resident(unit):
                self.last_choice = candidate
                return [candidate]
        return []

    def on_edge(self, src_block: int, dst_block: int) -> None:
        self.predictor.update(src_block, dst_block)
