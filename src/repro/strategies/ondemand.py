"""On-demand (lazy) decompression — Section 4, first option.

"A basic block is decompressed only when the execution thread reaches it...
All we need is a bit per basic block to keep track of whether the block
accessed is currently in the compressed form or not.  Its main drawback is
that the decompressions can occur in the critical path."

The policy itself does nothing at block exits: the work happens in the
simulator's fault handler, synchronously on the execution thread, which is
exactly the performance drawback the paper describes.
"""

from __future__ import annotations

from typing import List

from .base import STRATEGIES, DecompressionPolicy


@STRATEGIES.register("ondemand")
class OnDemandDecompression(DecompressionPolicy):
    """Lazy decompression: react to faults only."""

    name = "ondemand"
    uses_thread = False

    def on_block_exit(self, block_id: int) -> List[int]:
        return []
