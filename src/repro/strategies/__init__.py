"""Compression/decompression strategies — the paper's contribution layer."""

from .base import CompressionPolicy, DecompressionPolicy, ManagerView
from .budget import BudgetError, MemoryBudget
from .kedge import KEdgeCompression, NeverRecompress
from .ondemand import OnDemandDecompression
from .predecompress import PreDecompressAll, PreDecompressSingle
from .window import RecencyWindowCompression
from .predictor import (
    LastSuccessorPredictor,
    MarkovPredictor,
    OnlineProfilePredictor,
    Predictor,
    StaticProfilePredictor,
    available_predictors,
    make_predictor,
)

__all__ = [
    "BudgetError",
    "CompressionPolicy",
    "DecompressionPolicy",
    "KEdgeCompression",
    "LastSuccessorPredictor",
    "ManagerView",
    "MarkovPredictor",
    "MemoryBudget",
    "NeverRecompress",
    "OnDemandDecompression",
    "OnlineProfilePredictor",
    "PreDecompressAll",
    "PreDecompressSingle",
    "Predictor",
    "RecencyWindowCompression",
    "StaticProfilePredictor",
    "available_predictors",
    "make_predictor",
]
