"""Compression/decompression strategies — the paper's contribution layer."""

from .base import (
    STRATEGIES,
    CompressionPolicy,
    DecompressionPolicy,
    ManagerView,
)
from .budget import BudgetError, MemoryBudget
from .kedge import KEdgeCompression, NeverRecompress
from .ondemand import OnDemandDecompression
from .predecompress import PreDecompressAll, PreDecompressSingle
from .window import RecencyWindowCompression
from .predictor import (
    LastSuccessorPredictor,
    MarkovPredictor,
    OnlineProfilePredictor,
    Predictor,
    StaticProfilePredictor,
    available_predictors,
    make_predictor,
)

# The uncompressed baseline: no image, no policy — the manager skips
# the compression machinery entirely.  Registered here (not in a policy
# module) because there is no class behind it.
STRATEGIES.add("none", None)

__all__ = [
    "STRATEGIES",
    "BudgetError",
    "CompressionPolicy",
    "DecompressionPolicy",
    "KEdgeCompression",
    "LastSuccessorPredictor",
    "ManagerView",
    "MarkovPredictor",
    "MemoryBudget",
    "NeverRecompress",
    "OnDemandDecompression",
    "OnlineProfilePredictor",
    "PreDecompressAll",
    "PreDecompressSingle",
    "Predictor",
    "RecencyWindowCompression",
    "StaticProfilePredictor",
    "available_predictors",
    "make_predictor",
]
