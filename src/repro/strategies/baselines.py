"""Baseline configurations for experiment E6.

The paper positions its basic-block granularity against (a) not compressing
at all, (b) naive "compress everything, decompress on touch, recompress
immediately", and (c) the function-granularity scheme of Debray and Evans
[6]: "functions constitute compressible units... a large fraction of the
code is rarely touched."

These helpers return ready-made :class:`~repro.core.config.SimulationConfig`
objects so benchmarks and examples build comparisons declaratively.
"""

from __future__ import annotations

from typing import Optional

from ..core.config import SimulationConfig


def uncompressed_baseline(**overrides) -> SimulationConfig:
    """No compression at all: full-size image, zero overhead."""
    config = SimulationConfig(
        codec="null",
        decompression="none",
        k_compress=None,
        label="uncompressed",
    )
    return config.replace(**overrides)


def naive_always_compressed(codec: str = "shared-dict", **overrides) -> SimulationConfig:
    """Most aggressive setting: on-demand decompression, k=1 recompression.

    Minimum memory (at most a couple of blocks resident), maximum churn —
    the left edge of every trade-off curve.
    """
    config = SimulationConfig(
        codec=codec,
        decompression="ondemand",
        k_compress=1,
        label="naive-k1",
    )
    return config.replace(**overrides)


def block_granularity(
    codec: str = "shared-dict",
    k_compress: int = 4,
    decompression: str = "ondemand",
    k_decompress: int = 2,
    **overrides,
) -> SimulationConfig:
    """The paper's scheme at its default operating point."""
    config = SimulationConfig(
        codec=codec,
        decompression=decompression,
        k_compress=k_compress,
        k_decompress=k_decompress,
        label=f"block-{decompression}",
    )
    return config.replace(**overrides)


def function_granularity(
    codec: str = "shared-dict",
    k_compress: int = 4,
    decompression: str = "ondemand",
    k_decompress: int = 2,
    **overrides,
) -> SimulationConfig:
    """Debray-Evans-style function-granularity compression.

    Whole functions are the compression unit: a fault on any block
    decompresses the entire function, and k-edge counters tick per
    function.  Keeps hot *functions* resident but cannot keep only the hot
    *chain inside* a large function, which is precisely the memory the
    paper's finer granularity recovers (Section 6).
    """
    config = SimulationConfig(
        codec=codec,
        decompression=decompression,
        k_compress=k_compress,
        k_decompress=k_decompress,
        granularity="function",
        label=f"function-{decompression}",
    )
    return config.replace(**overrides)
