"""Strategy interfaces.

The paper separates *when to compress* (the k-edge compression algorithm,
Section 3) from *when/what to decompress* (on-demand vs. the
pre-decompression family, Section 4).  The two policy interfaces here map
one-to-one onto that split; the simulator invokes them at block entry, at
every edge traversal, and at block exit.

Policies see the simulator through :class:`ManagerView` — enough to inspect
the CFG, residency, and the access pattern, without owning any mechanism.
"""

from __future__ import annotations

import abc
from typing import Dict, Iterable, List, Optional, Protocol, Set

from ..cfg.builder import ProgramCFG
from ..cfg.profile import EdgeProfile
from ..registry import Registry

#: The decompression-strategy family, in the unified component catalog.
#: Policy classes register themselves in their defining modules; the
#: "none" baseline (no image, no policy) is added by the package init.
STRATEGIES = Registry("strategies", item="decompression strategy")


class ManagerView(Protocol):
    """What a policy may observe of the running simulation."""

    cfg: ProgramCFG
    profile: EdgeProfile

    def unit_of(self, block_id: int) -> int:
        """Compression-unit id owning ``block_id`` (units are single blocks
        at the paper's granularity, whole functions for the E6 baseline)."""
        ...

    def unit_blocks(self, unit_id: int) -> Set[int]:
        """Block ids belonging to ``unit_id``."""
        ...

    def resident_units(self) -> Set[int]:
        """Units that currently have a decompressed copy."""
        ...

    def is_unit_resident(self, unit_id: int) -> bool:
        """True when ``unit_id`` is decompressed (or being decompressed)."""
        ...


class CompressionPolicy(abc.ABC):
    """Decides when a decompressed unit's copy is deleted (recompressed)."""

    name: str = "abstract"

    def bind(self, view: ManagerView) -> None:
        """Attach the policy to a running simulation."""
        self.view = view

    @abc.abstractmethod
    def on_unit_enter(self, unit_id: int) -> None:
        """The execution thread entered a block of ``unit_id``."""

    @abc.abstractmethod
    def on_edge(self, src_unit: int, dst_unit: int) -> List[int]:
        """An edge was traversed; return unit ids to recompress now.

        The destination unit must never be returned (it is about to
        execute); the simulator enforces this with an assertion.
        """

    def on_unit_released(self, unit_id: int) -> None:
        """``unit_id`` lost its decompressed copy (recompress or evict)."""

    def on_unit_decompressed(self, unit_id: int) -> None:
        """``unit_id`` gained a decompressed copy."""


class DecompressionPolicy(abc.ABC):
    """Decides which units to decompress ahead of (or at) need."""

    name: str = "abstract"

    #: True when the policy needs the background decompression thread
    #: (pre-decompression); on-demand runs in the fault handler instead.
    uses_thread: bool = True

    def bind(self, view: ManagerView) -> None:
        """Attach the policy to a running simulation."""
        self.view = view

    def on_program_start(self, entry_block: int) -> List[int]:
        """Blocks to pre-decompress before execution starts."""
        return []

    @abc.abstractmethod
    def on_block_exit(self, block_id: int) -> List[int]:
        """The execution thread is leaving ``block_id``; return block ids to
        pre-decompress (the simulator maps them to units, skips resident
        ones, and schedules the background thread)."""

    def on_edge(self, src_block: int, dst_block: int) -> None:
        """Observe the actually-taken edge (for online predictors)."""
