"""Cycle-domain span tracing for the simulator core.

The tracer is a null object by default: :data:`NULL_TRACER` has
``enabled = False`` and every hook site in the core guards with a single
attribute check (``if tracer.enabled:``), so the disabled path adds one
predictable branch at *rare* event sites only (faults, waits, worker
scheduling, evictions, decodes) and nothing at all to the per-block hot
loop — ``bench_trace_overhead`` pins this below 2%.

Arming is out-of-band on purpose.  A tracer must never ride on
:class:`~repro.core.config.SimulationConfig`: configs are fingerprinted
into store cache keys, and tracing is required to leave results and
fingerprints byte-identical.  Two ways to arm:

* explicitly — ``CodeCompressionManager(cfg, config, tracer=SpanTracer())``;
* ambiently — ``with tracing_scope() as sink: run_grid(...)``; every
  manager constructed inside the scope (both engines — the trace engine
  builds the same manager) asks the sink for a tracer.

The ambient scope is process-global, mirroring
:func:`repro.faults.runtime.retry_scope`; it does not propagate into
``ParallelExecutor`` worker *processes* (their runs simply stay
untraced — results are identical by construction).

Stall kinds map one-to-one onto the call sites of the single charging
site :meth:`~repro.core.timing.TimingModel.stall`:

``decompress``
    full fault handler + synchronous fill, and waiting out an in-flight
    pre-decompression;
``patch``
    patch-only faults (Figure 5 steps 5-6);
``mem``
    memory-hierarchy transfer charges (uncompressed-baseline entry
    streaming);
``contention``
    the end-of-run charge for background threads sharing the core.

Invariants (asserted by the unit tests, exactly, on both engines)::

    phases["execute"] == result.execution_cycles
    sum(phases[f"stall_{k}"] for k in STALL_KINDS) == counters.stall_cycles
    phases["execute"] + sum(stall phases) == result.total_cycles
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

#: The stall taxonomy; one entry per distinct call site of
#: ``TimingModel.stall``.
STALL_KINDS = ("decompress", "patch", "mem", "contention")


class Tracer:
    """Null-object base: every hook is a no-op and ``enabled`` is False.

    Subclasses that record set ``enabled = True``; core hook sites check
    that one attribute and skip the call entirely when it is False, so
    the disabled tracer costs a single branch per *event* (not per
    block).
    """

    enabled = False

    def stall(
        self, at: int, cycles: int, kind: str, counted: bool
    ) -> None:
        """``cycles`` of synchronous penalty charged at cycle ``at``."""

    def worker_job(
        self,
        worker: str,
        unit_id: int,
        scheduled_at: int,
        started_at: int,
        completes_at: int,
    ) -> None:
        """A background job was queued on ``worker``."""

    def worker_cancel(self, at: int, worker: str, unit_id: int) -> None:
        """A pending background job was cancelled (work refunded)."""

    def fill(self, at: int, unit_id: int, cycles: int) -> None:
        """``unit_id`` was materialised (decompressed copy created)."""

    def release(
        self, at: int, unit_id: int, reason: str, patches: int
    ) -> None:
        """``unit_id``'s decompressed copy was dropped (evict/recompress)."""

    def decode(self, block_id: int, codec: str, nbytes: int) -> None:
        """The codec actually ran for ``block_id`` (plaintext-memo miss)."""

    def close(self, execution_cycles: int, total_cycles: int) -> None:
        """End of run: record the execution/total cycle tallies."""


#: The shared inert tracer every untraced run uses.
NULL_TRACER = Tracer()


class SpanTracer(Tracer):
    """A recording tracer: per-kind stall aggregation plus raw spans.

    ``keep_spans=False`` keeps only the aggregate phase totals and event
    counts (the cheapest armed mode — what ``bench_trace_overhead``
    measures as the aggregation floor); with spans kept, recording is
    capped at ``span_cap`` entries per stream and ``dropped_spans``
    counts the overflow, so a pathological run cannot exhaust memory.
    """

    enabled = True

    def __init__(
        self,
        program: str = "",
        keep_spans: bool = True,
        span_cap: int = 200_000,
    ) -> None:
        self.program = program
        self.keep_spans = keep_spans
        self.span_cap = span_cap
        self.dropped_spans = 0
        # Aggregates.
        self.stall_cycles_by_kind: Dict[str, int] = {
            kind: 0 for kind in STALL_KINDS
        }
        self.stall_events: Dict[str, int] = {
            kind: 0 for kind in STALL_KINDS
        }
        self.counts: Dict[str, int] = {
            "fills": 0,
            "releases": 0,
            "evictions": 0,
            "decodes": 0,
            "jobs": 0,
            "cancels": 0,
        }
        self.execution_cycles: Optional[int] = None
        self.total_cycles: Optional[int] = None
        # Raw spans (cycle domain).
        #: (start, duration, kind) per synchronous stall.
        self.stall_spans: List[Tuple[int, int, str]] = []
        #: (worker, unit_id, started_at, completes_at) per background job.
        self.worker_spans: List[Tuple[str, int, int, int]] = []
        #: (at, name, detail) instants: evictions, releases, decodes,
        #: fills, cancels.
        self.instants: List[Tuple[int, str, str]] = []

    # -- recording hooks ----------------------------------------------

    def _keep(self, stream: List) -> bool:
        if not self.keep_spans:
            return False
        if len(stream) >= self.span_cap:
            self.dropped_spans += 1
            return False
        return True

    def stall(
        self, at: int, cycles: int, kind: str, counted: bool
    ) -> None:
        self.stall_cycles_by_kind[kind] += cycles
        self.stall_events[kind] += 1
        if cycles and self._keep(self.stall_spans):
            self.stall_spans.append((at, cycles, kind))

    def worker_job(
        self,
        worker: str,
        unit_id: int,
        scheduled_at: int,
        started_at: int,
        completes_at: int,
    ) -> None:
        self.counts["jobs"] += 1
        if self._keep(self.worker_spans):
            self.worker_spans.append(
                (worker, unit_id, started_at, completes_at)
            )

    def worker_cancel(self, at: int, worker: str, unit_id: int) -> None:
        self.counts["cancels"] += 1
        if self._keep(self.instants):
            self.instants.append((at, "cancel", f"{worker}:u{unit_id}"))

    def fill(self, at: int, unit_id: int, cycles: int) -> None:
        self.counts["fills"] += 1
        if self._keep(self.instants):
            self.instants.append((at, "fill", f"u{unit_id}+{cycles}cy"))

    def release(
        self, at: int, unit_id: int, reason: str, patches: int
    ) -> None:
        self.counts["releases"] += 1
        if reason == "evict":
            self.counts["evictions"] += 1
        if self._keep(self.instants):
            self.instants.append(
                (at, reason, f"u{unit_id} patches={patches}")
            )

    def decode(self, block_id: int, codec: str, nbytes: int) -> None:
        self.counts["decodes"] += 1
        # Decodes happen at most once per block per shared artifact set;
        # they are recorded as count + instant, never per-byte.
        if self._keep(self.instants):
            self.instants.append((-1, "decode", f"b{block_id}:{codec}"))

    def close(self, execution_cycles: int, total_cycles: int) -> None:
        self.execution_cycles = execution_cycles
        self.total_cycles = total_cycles

    # -- aggregation ---------------------------------------------------

    def phases(self) -> Dict[str, int]:
        """The per-run phase breakdown with stable keys.

        ``execute`` plus the four ``stall_*`` entries always sum to the
        run's ``total_cycles``; the sum of the stall entries equals
        ``Counters.stall_cycles`` exactly.
        """
        out: Dict[str, int] = {"execute": self.execution_cycles or 0}
        for kind in STALL_KINDS:
            out[f"stall_{kind}"] = self.stall_cycles_by_kind[kind]
        return out

    def stall_total(self) -> int:
        """All synchronous stall cycles seen, across kinds."""
        return sum(self.stall_cycles_by_kind.values())


class TraceSink:
    """Collects one :class:`SpanTracer` per simulated run in a scope.

    Thread-safe: parallel in-process runs (``ParallelExecutor`` in
    thread mode, the service's inner executors) may each request a
    tracer concurrently.
    """

    def __init__(
        self, keep_spans: bool = True, span_cap: int = 200_000
    ) -> None:
        self.keep_spans = keep_spans
        self.span_cap = span_cap
        self.tracers: List[SpanTracer] = []
        self._lock = threading.Lock()

    def tracer_for(self, program: str) -> SpanTracer:
        tracer = SpanTracer(
            program, keep_spans=self.keep_spans, span_cap=self.span_cap
        )
        with self._lock:
            self.tracers.append(tracer)
        return tracer

    def phases(self) -> Dict[str, int]:
        """Summed phase breakdown across every run the sink saw."""
        total: Dict[str, int] = {"execute": 0}
        for kind in STALL_KINDS:
            total[f"stall_{kind}"] = 0
        with self._lock:
            tracers = list(self.tracers)
        for tracer in tracers:
            for key, value in tracer.phases().items():
                total[key] += value
        return total


_ACTIVE_SINK: Optional[TraceSink] = None
_SINK_LOCK = threading.Lock()


@contextmanager
def tracing_scope(
    sink: Optional[TraceSink] = None,
) -> Iterator[TraceSink]:
    """Arm ambient tracing for every manager built inside the scope.

    Yields the sink (a fresh one when not supplied); after the scope the
    previous sink — usually none — is restored.  Scopes are process-wide
    and non-reentrant by design, like ``retry_scope``.
    """
    global _ACTIVE_SINK
    armed = sink if sink is not None else TraceSink()
    with _SINK_LOCK:
        previous = _ACTIVE_SINK
        _ACTIVE_SINK = armed
    try:
        yield armed
    finally:
        with _SINK_LOCK:
            _ACTIVE_SINK = previous


def current_tracer(program: str) -> Tracer:
    """The tracer a new simulation run should use.

    :data:`NULL_TRACER` when no scope is armed — the zero-cost default.
    """
    sink = _ACTIVE_SINK
    if sink is None:
        return NULL_TRACER
    return sink.tracer_for(program)
