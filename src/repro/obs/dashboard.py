"""The live sweep dashboard: one self-contained HTML page.

Served verbatim by ``GET /dashboard`` — no external assets, no build
step, no dependencies; inline CSS and vanilla JS only, so the page
works from the stdlib server on an air-gapped machine.  The page polls
``GET /metrics`` (JSON) and ``GET /jobs`` every two seconds to render:

* service headline: uptime, queue depth, job counts, store hit rate;
* cell throughput (computed cells per second, from poll deltas);
* a job table with progress, per-job cache hits, and a
  phase-breakdown bar (execute / stall / background cycles) for
  finished jobs;
* a live event feed over each running job's SSE stream.
"""

DASHBOARD_HTML = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro sweep dashboard</title>
<style>
  :root { --bg:#11151a; --panel:#1a2027; --text:#d8dee6; --dim:#7c8691;
          --exec:#4caf7d; --stall:#e0a44c; --bg2:#5c7cfa; --bad:#e05c5c; }
  body { background:var(--bg); color:var(--text); margin:0;
         font:14px/1.5 system-ui, sans-serif; }
  header { padding:14px 22px; border-bottom:1px solid #2a323c;
           display:flex; align-items:baseline; gap:14px; }
  header h1 { font-size:17px; margin:0; }
  header .sub { color:var(--dim); font-size:12px; }
  main { padding:18px 22px; max-width:1100px; }
  .cards { display:flex; flex-wrap:wrap; gap:12px; margin-bottom:18px; }
  .card { background:var(--panel); border-radius:8px; padding:10px 16px;
          min-width:120px; }
  .card .v { font-size:22px; font-weight:600; }
  .card .k { color:var(--dim); font-size:12px; }
  table { border-collapse:collapse; width:100%; background:var(--panel);
          border-radius:8px; overflow:hidden; }
  th, td { text-align:left; padding:7px 12px; font-size:13px; }
  th { color:var(--dim); font-weight:500; border-bottom:1px solid #2a323c; }
  tr + tr td { border-top:1px solid #232b34; }
  .state-done { color:var(--exec); }
  .state-running { color:var(--stall); }
  .state-failed { color:var(--bad); }
  .state-queued { color:var(--dim); }
  .bar { display:flex; height:12px; width:180px; border-radius:3px;
         overflow:hidden; background:#2a323c; }
  .bar div { height:100%; }
  .bar .exec { background:var(--exec); }
  .bar .stall { background:var(--stall); }
  .bar .bg { background:var(--bg2); }
  .legend { color:var(--dim); font-size:12px; margin:8px 0 18px; }
  .legend i { display:inline-block; width:10px; height:10px;
              border-radius:2px; margin:0 4px 0 12px; }
  #events { background:var(--panel); border-radius:8px; margin-top:18px;
            padding:10px 14px; max-height:220px; overflow-y:auto;
            font:12px/1.6 ui-monospace, monospace; color:var(--dim); }
  #events .ok { color:var(--exec); }
  #events .err { color:var(--bad); }
  #error { color:var(--bad); font-size:12px; }
</style>
</head>
<body>
<header>
  <h1>repro sweep dashboard</h1>
  <span class="sub" id="addr"></span>
  <span id="error"></span>
</header>
<main>
  <div class="cards">
    <div class="card"><div class="v" id="uptime">-</div>
      <div class="k">uptime</div></div>
    <div class="card"><div class="v" id="queue">-</div>
      <div class="k">queue depth</div></div>
    <div class="card"><div class="v" id="jobs">-</div>
      <div class="k">jobs (run / done / fail)</div></div>
    <div class="card"><div class="v" id="hitrate">-</div>
      <div class="k">store hit rate</div></div>
    <div class="card"><div class="v" id="throughput">-</div>
      <div class="k">cells / s (computed)</div></div>
  </div>
  <table>
    <thead><tr>
      <th>job</th><th>name</th><th>state</th><th>progress</th>
      <th>hits</th><th>computed</th><th>phase breakdown</th>
    </tr></thead>
    <tbody id="rows"><tr><td colspan="7">loading…</td></tr></tbody>
  </table>
  <div class="legend">phase bar:
    <i style="background:var(--exec)"></i>execute
    <i style="background:var(--stall)"></i>stall
    <i style="background:var(--bg2)"></i>background
  </div>
  <div id="events">waiting for job events…</div>
</main>
<script>
"use strict";
const $ = (id) => document.getElementById(id);
$("addr").textContent = location.origin;
let lastComputed = null, lastTime = null;
const streams = new Map();

function fmtUptime(s) {
  if (s >= 3600) return (s / 3600).toFixed(1) + "h";
  if (s >= 60) return (s / 60).toFixed(1) + "m";
  return s.toFixed(0) + "s";
}

function phaseBar(ph) {
  if (!ph) return "";
  const ex = ph.execute || 0, st = ph.stall || 0, bg = ph.background || 0;
  const total = ex + st + bg;
  if (!total) return "";
  const pct = (v) => (100 * v / total).toFixed(1) + "%";
  const tip = `execute ${ex} / stall ${st} / background ${bg} cycles`;
  return `<div class="bar" title="${tip}">` +
    `<div class="exec" style="width:${pct(ex)}"></div>` +
    `<div class="stall" style="width:${pct(st)}"></div>` +
    `<div class="bg" style="width:${pct(bg)}"></div></div>`;
}

function logEvent(text, cls) {
  const box = $("events");
  const line = document.createElement("div");
  line.textContent = text;
  if (cls) line.className = cls;
  box.appendChild(line);
  while (box.childNodes.length > 200) box.removeChild(box.firstChild);
  box.scrollTop = box.scrollHeight;
}

function watch(job) {
  if (streams.has(job.id)) return;
  const src = new EventSource(`/jobs/${job.id}/events`);
  streams.set(job.id, src);
  src.onmessage = (msg) => {
    try {
      const ev = JSON.parse(msg.data);
      logEvent(`${job.id.slice(0, 8)} ${ev.workload || ""} ` +
               `${ev.label || ""} ${ev.source || ""}` +
               (ev.error ? ` error: ${ev.error}` : ""),
               ev.ok === false ? "err" : "ok");
    } catch (e) { /* keep streaming */ }
  };
  src.addEventListener("end", () => { src.close(); });
  src.onerror = () => { src.close(); streams.delete(job.id); };
}

async function poll() {
  try {
    const [metrics, jobs] = await Promise.all([
      fetch("/metrics").then((r) => r.json()),
      fetch("/jobs").then((r) => r.json()),
    ]);
    $("error").textContent = "";
    $("uptime").textContent =
      fmtUptime(metrics.service.uptime_s || 0);
    $("queue").textContent = metrics.queue_depth;
    const jc = metrics.jobs || {};
    $("jobs").textContent =
      `${jc.running || 0} / ${jc.done || 0} / ${jc.failed || 0}`;
    const store = metrics.store || {};
    const hits = store.hits || 0, misses = store.misses || 0;
    $("hitrate").textContent = (hits + misses)
      ? (100 * hits / (hits + misses)).toFixed(1) + "%" : "-";
    let computed = 0;
    for (const job of jobs.jobs || [])
      computed += (job.progress && job.progress.computed) || 0;
    const now = Date.now() / 1000;
    if (lastComputed !== null && now > lastTime)
      $("throughput").textContent =
        Math.max(0, (computed - lastComputed) / (now - lastTime))
          .toFixed(1);
    lastComputed = computed; lastTime = now;
    const rows = (jobs.jobs || []).map((job) => {
      const p = job.progress || {};
      if (job.state === "running") watch(job);
      return `<tr><td>${job.id.slice(0, 8)}</td>` +
        `<td>${job.name || ""}</td>` +
        `<td class="state-${job.state}">${job.state}</td>` +
        `<td>${p.done || 0}/${p.total || 0}</td>` +
        `<td>${p.hits || 0}</td><td>${p.computed || 0}</td>` +
        `<td>${phaseBar(job.phases)}</td></tr>`;
    });
    $("rows").innerHTML =
      rows.join("") || '<tr><td colspan="7">no jobs yet</td></tr>';
  } catch (err) {
    $("error").textContent = "poll failed: " + err;
  }
  setTimeout(poll, 2000);
}
poll();
</script>
</body>
</html>
"""
