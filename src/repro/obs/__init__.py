"""repro.obs — zero-dependency observability for the simulator stack.

Three layers, all opt-in and all provably inert when unused:

* **Cycle-domain span tracing** (:mod:`repro.obs.tracer`): an opt-in
  :class:`Tracer` receives structured events from the single
  stall-charging site in :class:`~repro.core.timing.TimingModel`, the
  background-worker schedule/cancel sites, residency eviction/fill, and
  per-block codec decode dispatch.  The default is :data:`NULL_TRACER`
  (``enabled`` is False); every hook is a single attribute check, and
  the per-block hot path has no hook at all.  Arm it per run with
  ``CodeCompressionManager(..., tracer=SpanTracer())`` or ambiently for
  a whole sweep with :func:`tracing_scope`.
* **Wall-clock span recording** (:mod:`repro.obs.spans`): the
  executors, the caching store layer, and the sweep service emit
  per-cell spans (queue wait, store hit/miss, compute, retry attempts)
  into an ambient :class:`SpanRecorder` when one is armed via
  :func:`span_scope`.
* **Export** (:mod:`repro.obs.chrome`, :mod:`repro.obs.prometheus`):
  Chrome trace-event JSON (loadable in Perfetto / ``chrome://tracing``)
  for both domains, and Prometheus text exposition for the service
  metrics snapshot.

Tracing never changes simulation results: phase data rides on
``SimulationResult.phases`` (excluded from ResultSet serialisation and
store fingerprints), and the byte-identity of traced vs. untraced
sweeps is pinned by integration tests.
"""

from .chrome import chrome_trace, chrome_trace_json, sink_chrome_trace
from .prometheus import render_prometheus, validate_exposition
from .spans import SpanRecorder, current_recorder, span, span_event, span_scope
from .tracer import (
    NULL_TRACER,
    STALL_KINDS,
    SpanTracer,
    TraceSink,
    Tracer,
    current_tracer,
    tracing_scope,
)

__all__ = [
    "NULL_TRACER",
    "STALL_KINDS",
    "SpanRecorder",
    "SpanTracer",
    "TraceSink",
    "Tracer",
    "chrome_trace",
    "chrome_trace_json",
    "current_recorder",
    "current_tracer",
    "render_prometheus",
    "sink_chrome_trace",
    "span",
    "span_event",
    "span_scope",
    "tracing_scope",
    "validate_exposition",
]
