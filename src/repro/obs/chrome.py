"""Chrome trace-event export for cycle-domain span tracers.

Produces the ``{"traceEvents": [...]}`` JSON object format consumed by
Perfetto (https://ui.perfetto.dev) and ``chrome://tracing``.  One cycle
is written as one microsecond of trace time — the viewers only care
about relative durations.

The execution track is *gap-filled*: stall spans are laid down where the
tracer recorded them and ``execute`` spans are synthesised to cover
every remaining cycle from 0 to ``total_cycles``, so the cycle-sum of
the execution track's spans equals the run's total cycles exactly (the
cookbook recipe asserts this).  Background decompression/compression
jobs render on their own tracks, and evictions/releases/decodes appear
as instant events.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from .tracer import SpanTracer, TraceSink

#: Track (``tid``) layout within one run's process group.
EXECUTION_TRACK = 0
DECOMPRESS_TRACK = 1
COMPRESS_TRACK = 2

_TRACK_NAMES = {
    EXECUTION_TRACK: "execution",
    DECOMPRESS_TRACK: "decompression worker",
    COMPRESS_TRACK: "compression worker",
}

_WORKER_TRACKS = {
    "decompression": DECOMPRESS_TRACK,
    "compression": COMPRESS_TRACK,
}


def _thread_metadata(pid: int) -> List[Dict[str, Any]]:
    return [
        {
            "ph": "M",
            "name": "thread_name",
            "pid": pid,
            "tid": tid,
            "args": {"name": name},
        }
        for tid, name in _TRACK_NAMES.items()
    ]


def execution_track_events(
    tracer: SpanTracer, pid: int = 0
) -> List[Dict[str, Any]]:
    """The gap-filled execution track: stalls where recorded, execute
    spans everywhere else, covering ``[0, total_cycles)`` exactly."""
    total = tracer.total_cycles or 0
    events: List[Dict[str, Any]] = []

    def emit(name: str, cat: str, start: int, dur: int) -> None:
        events.append({
            "name": name,
            "cat": cat,
            "ph": "X",
            "ts": start,
            "dur": dur,
            "pid": pid,
            "tid": EXECUTION_TRACK,
        })

    cursor = 0
    # Stalls never overlap: each one advances the clock past itself.
    for start, dur, kind in sorted(tracer.stall_spans):
        if start > cursor:
            emit("execute", "execute", cursor, start - cursor)
        emit(f"stall:{kind}", "stall", start, dur)
        cursor = max(cursor, start + dur)
    if cursor < total:
        emit("execute", "execute", cursor, total - cursor)
    return events


def chrome_trace(
    tracer: SpanTracer,
    label: Optional[str] = None,
    pid: int = 0,
) -> Dict[str, Any]:
    """One run's tracer as a Chrome trace-event JSON object."""
    events = _thread_metadata(pid)
    events.append({
        "ph": "M",
        "name": "process_name",
        "pid": pid,
        "tid": 0,
        "args": {"name": label or tracer.program or f"run-{pid}"},
    })
    events.extend(execution_track_events(tracer, pid))
    for worker, unit_id, started, completes in tracer.worker_spans:
        events.append({
            "name": f"{worker} u{unit_id}",
            "cat": "background",
            "ph": "X",
            "ts": started,
            "dur": completes - started,
            "pid": pid,
            "tid": _WORKER_TRACKS.get(worker, DECOMPRESS_TRACK),
        })
    for at, name, detail in tracer.instants:
        events.append({
            "name": name,
            "cat": "event",
            "ph": "i",
            "s": "t",
            "ts": max(at, 0),
            "pid": pid,
            "tid": EXECUTION_TRACK,
            "args": {"detail": detail},
        })
    return {
        "traceEvents": events,
        "metadata": {
            "program": tracer.program,
            "phases": tracer.phases(),
            "counts": dict(tracer.counts),
            "dropped_spans": tracer.dropped_spans,
            "unit": "1 cycle = 1us of trace time",
        },
    }


def sink_chrome_trace(sink: TraceSink) -> Dict[str, Any]:
    """A whole sweep's sink as one trace: one process group per run."""
    events: List[Dict[str, Any]] = []
    for pid, tracer in enumerate(sink.tracers):
        events.extend(chrome_trace(tracer, pid=pid)["traceEvents"])
    return {
        "traceEvents": events,
        "metadata": {
            "runs": len(sink.tracers),
            "phases": sink.phases(),
            "unit": "1 cycle = 1us of trace time",
        },
    }


def chrome_trace_json(
    tracer: SpanTracer, label: Optional[str] = None
) -> str:
    """:func:`chrome_trace` rendered to a JSON string."""
    return json.dumps(chrome_trace(tracer, label=label), indent=1)
