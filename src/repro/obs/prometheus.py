"""Prometheus text exposition for the sweep service, plus a validator.

:func:`render_prometheus` turns the ``GET /metrics`` JSON payload (the
``{"service": ..., "queue_depth": ..., "jobs": ..., "store": ...}``
shape built by :class:`~repro.service.app.SweepServer`) into the
Prometheus text exposition format, version 0.0.4: ``# HELP`` / ``#
TYPE`` comments, counters and gauges, and one histogram per endpoint
whose cumulative ``le``-labelled buckets reuse the existing
``BUCKET_BOUNDS_MS`` bounds — read back out of each histogram's
``buckets_ms`` keys, so this module never imports the service layer
(the core imports :mod:`repro.obs`, which must stay leaf-only).

:func:`validate_exposition` is the syntax check ``make obs-smoke`` and
the unit tests run against the scraped text: metric/label name grammar,
float-parseable values, known TYPE keywords, and histogram coherence
(cumulative buckets, ``+Inf`` bucket equal to ``_count``).
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, List, Mapping, Tuple

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
# The label block is matched greedily to the *last* '}' on the line:
# quoted label values may themselves contain '}' (e.g. the endpoint
# label "GET /jobs/{id}"), and the sample value after it is numeric,
# never brace-bearing.
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)$"
)
_LABEL_PAIR = re.compile(
    r'(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"'
    r"(?:,|$)"
)

_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


def _escape(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"')
        .replace("\n", "\\n")
    )


class _Writer:
    def __init__(self) -> None:
        self.lines: List[str] = []

    def header(self, name: str, help_text: str, kind: str) -> None:
        self.lines.append(f"# HELP {name} {help_text}")
        self.lines.append(f"# TYPE {name} {kind}")

    def sample(
        self, name: str, labels: Mapping[str, Any], value: Any
    ) -> None:
        if labels:
            rendered = ",".join(
                f'{key}="{_escape(str(val))}"'
                for key, val in labels.items()
            )
            self.lines.append(f"{name}{{{rendered}}} {value}")
        else:
            self.lines.append(f"{name} {value}")

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"


def render_prometheus(payload: Mapping[str, Any]) -> str:
    """The service metrics payload as Prometheus text exposition."""
    out = _Writer()
    service = payload.get("service", {})

    out.header("repro_uptime_seconds", "Service uptime.", "gauge")
    out.sample("repro_uptime_seconds", {}, service.get("uptime_s", 0))

    out.header(
        "repro_queue_depth", "Jobs waiting in the submit queue.",
        "gauge",
    )
    out.sample("repro_queue_depth", {}, payload.get("queue_depth", 0))

    out.header("repro_jobs", "Jobs by lifecycle state.", "gauge")
    for state, count in sorted(
        (payload.get("jobs") or {}).items()
    ):
        out.sample("repro_jobs", {"state": state}, count)

    out.header(
        "repro_http_responses_total", "Responses by status code.",
        "counter",
    )
    for status, count in sorted(
        (service.get("responses") or {}).items()
    ):
        out.sample(
            "repro_http_responses_total", {"status": status}, count
        )

    requests: Mapping[str, Any] = service.get("requests") or {}
    out.header(
        "repro_http_requests_total", "Requests by endpoint.", "counter",
    )
    for endpoint, hist in sorted(requests.items()):
        out.sample(
            "repro_http_requests_total", {"endpoint": endpoint},
            hist.get("count", 0),
        )

    out.header(
        "repro_http_request_duration_ms",
        "Request latency by endpoint (histogram over the service's "
        "millisecond bucket bounds).",
        "histogram",
    )
    for endpoint, hist in sorted(requests.items()):
        buckets: Mapping[str, int] = hist.get("buckets_ms") or {}
        bounds = sorted(
            int(key[2:]) for key in buckets if key.startswith("<=")
        )
        cumulative = 0
        for bound in bounds:
            cumulative += int(buckets.get(f"<={bound}", 0))
            out.sample(
                "repro_http_request_duration_ms_bucket",
                {"endpoint": endpoint, "le": str(bound)}, cumulative,
            )
        if bounds:
            cumulative += int(buckets.get(f">{bounds[-1]}", 0))
        out.sample(
            "repro_http_request_duration_ms_bucket",
            {"endpoint": endpoint, "le": "+Inf"}, cumulative,
        )
        out.sample(
            "repro_http_request_duration_ms_sum",
            {"endpoint": endpoint}, hist.get("total_ms", 0),
        )
        out.sample(
            "repro_http_request_duration_ms_count",
            {"endpoint": endpoint}, hist.get("count", 0),
        )

    # Store inventory/usage: every numeric scalar becomes a gauge so the
    # exposition never drifts from ``store stats`` as keys are added.
    store: Mapping[str, Any] = payload.get("store") or {}
    for key in sorted(store):
        value = store[key]
        if isinstance(value, bool) or not isinstance(
            value, (int, float)
        ):
            continue
        name = f"repro_store_{key}"
        out.header(name, f"Store stats field '{key}'.", "gauge")
        out.sample(name, {}, value)

    return out.text()


def _parse_labels(raw: str) -> Dict[str, str]:
    """Parse a label block; quoted values may hold ',' '{' '}' '='."""
    labels: Dict[str, str] = {}
    raw = raw.strip()
    if not raw:
        return labels
    position = 0
    while position < len(raw):
        match = _LABEL_PAIR.match(raw, position)
        if match is None:
            raise ValueError(
                f"malformed label pair: {raw[position:]!r}"
            )
        labels[match.group("name")] = match.group("value")
        position = match.end()
    return labels


def validate_exposition(text: str) -> Dict[str, Any]:
    """Syntax-check Prometheus exposition text.

    Returns ``{"metrics": <count>, "samples": <count>}`` on success and
    raises :class:`ValueError` with a line-numbered message on the
    first violation.  Checks: name/label grammar, float values, known
    TYPE keywords, TYPE-before-samples ordering, and histogram
    coherence (cumulative non-decreasing buckets whose ``+Inf`` count
    equals ``_count``).
    """
    types: Dict[str, str] = {}
    samples: List[Tuple[str, Dict[str, str], float]] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                raise ValueError(
                    f"line {lineno}: malformed comment: {line!r}"
                )
            if not _METRIC_NAME.match(parts[2]):
                raise ValueError(
                    f"line {lineno}: bad metric name {parts[2]!r}"
                )
            if parts[1] == "TYPE":
                if len(parts) != 4 or parts[3] not in _TYPES:
                    raise ValueError(
                        f"line {lineno}: bad TYPE: {line!r}"
                    )
                types[parts[2]] = parts[3]
            continue
        match = _SAMPLE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        name = match.group("name")
        if not _METRIC_NAME.match(name):
            raise ValueError(f"line {lineno}: bad metric name {name!r}")
        try:
            value = float(match.group("value"))
        except ValueError as exc:
            raise ValueError(
                f"line {lineno}: non-numeric value "
                f"{match.group('value')!r}"
            ) from exc
        try:
            labels = _parse_labels(match.group("labels") or "")
        except ValueError as exc:
            raise ValueError(f"line {lineno}: {exc}") from exc
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in types:
                family = name[: -len(suffix)]
                break
        if family not in types:
            raise ValueError(
                f"line {lineno}: sample {name!r} has no preceding "
                f"# TYPE"
            )
        samples.append((name, labels, value))

    _check_histograms(types, samples)
    return {"metrics": len(types), "samples": len(samples)}


def _check_histograms(
    types: Mapping[str, str],
    samples: List[Tuple[str, Dict[str, str], float]],
) -> None:
    for family, kind in types.items():
        if kind != "histogram":
            continue
        by_series: Dict[Tuple[Tuple[str, str], ...], Dict] = {}
        for name, labels, value in samples:
            if not name.startswith(family):
                continue
            rest = {k: v for k, v in labels.items() if k != "le"}
            key = tuple(sorted(rest.items()))
            series = by_series.setdefault(
                key, {"buckets": [], "count": None}
            )
            if name == f"{family}_bucket":
                if "le" not in labels:
                    raise ValueError(
                        f"{family}_bucket sample missing 'le' label"
                    )
                series["buckets"].append(
                    (labels["le"], value)
                )
            elif name == f"{family}_count":
                series["count"] = value
        for key, series in by_series.items():
            bounds = series["buckets"]
            if not bounds:
                continue
            values = [v for _, v in bounds]
            if any(
                later < earlier
                for earlier, later in zip(values, values[1:])
            ):
                raise ValueError(
                    f"{family}{dict(key)}: buckets not cumulative"
                )
            inf = [v for le, v in bounds if le in ("+Inf", "inf")]
            if not inf:
                raise ValueError(
                    f"{family}{dict(key)}: missing +Inf bucket"
                )
            if series["count"] is not None and not math.isclose(
                inf[-1], series["count"]
            ):
                raise ValueError(
                    f"{family}{dict(key)}: +Inf bucket "
                    f"{inf[-1]} != _count {series['count']}"
                )
