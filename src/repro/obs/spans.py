"""Wall-clock span recording for executors, the store, and the service.

The cycle-domain tracer (:mod:`repro.obs.tracer`) explains where a
*simulated* run's cycles go; this module explains where a *sweep's*
wall-clock goes — queue wait, store hit/miss resolution, cell compute,
retry attempts.  Hook sites call :func:`span` (a context manager) or
:func:`span_event` (an instant); both are no-ops costing one global
read when no :class:`SpanRecorder` is armed via :func:`span_scope`.

Recorded spans export to the same Chrome trace-event JSON as the cycle
tracer (:meth:`SpanRecorder.to_chrome`), with wall-clock microseconds as
the time axis and one track per thread.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional


class SpanRecorder:
    """Thread-safe wall-clock span log with a hard cap.

    Spans are ``(name, cat, start_us, dur_us, thread, args)`` tuples;
    ``dropped`` counts spans discarded once ``cap`` is reached.
    """

    def __init__(self, cap: int = 100_000) -> None:
        self.cap = cap
        self.dropped = 0
        self.spans: List[Dict[str, Any]] = []
        self._lock = threading.Lock()
        self._origin = time.perf_counter()

    def now_us(self) -> int:
        """Microseconds since the recorder was created."""
        return int((time.perf_counter() - self._origin) * 1e6)

    def record(
        self,
        name: str,
        cat: str,
        start_us: int,
        dur_us: int,
        **args: Any,
    ) -> None:
        entry = {
            "name": name,
            "cat": cat,
            "ts": start_us,
            "dur": dur_us,
            "thread": threading.current_thread().name,
            "args": args,
        }
        with self._lock:
            if len(self.spans) >= self.cap:
                self.dropped += 1
                return
            self.spans.append(entry)

    def by_category(self) -> Dict[str, Dict[str, float]]:
        """Aggregate span count and total milliseconds per category."""
        out: Dict[str, Dict[str, float]] = {}
        with self._lock:
            spans = list(self.spans)
        for entry in spans:
            agg = out.setdefault(
                entry["cat"], {"count": 0, "total_ms": 0.0}
            )
            agg["count"] += 1
            agg["total_ms"] += entry["dur"] / 1000.0
        return out

    def to_chrome(self) -> Dict[str, Any]:
        """Chrome trace-event JSON: one track per recording thread."""
        with self._lock:
            spans = list(self.spans)
        threads = {}
        events: List[Dict[str, Any]] = []
        for entry in spans:
            tid = threads.setdefault(entry["thread"], len(threads))
            events.append({
                "name": entry["name"],
                "cat": entry["cat"],
                "ph": "X" if entry["dur"] else "i",
                **({} if entry["dur"] else {"s": "t"}),
                "ts": entry["ts"],
                "dur": entry["dur"],
                "pid": 0,
                "tid": tid,
                "args": entry["args"],
            })
        for name, tid in threads.items():
            events.append({
                "ph": "M",
                "name": "thread_name",
                "pid": 0,
                "tid": tid,
                "args": {"name": name},
            })
        return {
            "traceEvents": events,
            "metadata": {
                "dropped": self.dropped,
                "unit": "wall-clock microseconds",
            },
        }

    def to_chrome_json(self) -> str:
        return json.dumps(self.to_chrome(), indent=1)


_ACTIVE: Optional[SpanRecorder] = None
_LOCK = threading.Lock()


def current_recorder() -> Optional[SpanRecorder]:
    """The armed recorder, or None (the common, free case)."""
    return _ACTIVE


@contextmanager
def span_scope(
    recorder: Optional[SpanRecorder] = None,
) -> Iterator[SpanRecorder]:
    """Arm wall-clock span recording for the dynamic extent."""
    global _ACTIVE
    armed = recorder if recorder is not None else SpanRecorder()
    with _LOCK:
        previous = _ACTIVE
        _ACTIVE = armed
    try:
        yield armed
    finally:
        with _LOCK:
            _ACTIVE = previous


@contextmanager
def span(name: str, cat: str = "exec", **args: Any) -> Iterator[None]:
    """Record a wall-clock span around the body (no-op when unarmed)."""
    recorder = _ACTIVE
    if recorder is None:
        yield
        return
    start = recorder.now_us()
    try:
        yield
    finally:
        recorder.record(
            name, cat, start, recorder.now_us() - start, **args
        )


def span_event(name: str, cat: str = "event", **args: Any) -> None:
    """Record an instant event (no-op when unarmed)."""
    recorder = _ACTIVE
    if recorder is None:
        return
    recorder.record(name, cat, recorder.now_us(), 0, **args)
