"""The workload suite: registry of embedded benchmark kernels.

The paper's problem setting is "large-scale embedded applications with
complex control structures" — the suite mirrors the classic embedded
benchmark mix (MediaBench/MiBench-era kernels): filtering, CRC, sorting,
graph search, coding, string processing, a state machine, and a
many-function modular application.  Every kernel:

* is hand-written in the target assembly (via :mod:`repro.isa`),
* initialises its own input data in code (the ISA has no data loader),
* computes a result that its ``check`` function verifies against a pure
  Python reference implementation, so simulations are self-validating.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..isa.program import Program
from ..registry import Registry
from ..runtime.machine import Machine


@dataclass
class Workload:
    """A benchmark kernel: program + validation oracle."""

    name: str
    description: str
    program: Program
    #: Validates the final machine state; returns a list of problems
    #: (empty = correct run).
    check: Callable[[Machine], List[str]]

    def validate(self, machine: Machine) -> List[str]:
        """Run the oracle against ``machine``'s final state."""
        return self.check(machine)


#: The workload family, in the unified component catalog.
WORKLOADS = Registry("workloads")


def register_workload(name: str):
    """Decorator registering a zero-argument workload factory."""
    return WORKLOADS.register(name)


def get_workload(name: str) -> Workload:
    """Instantiate the workload registered under ``name``."""
    return WORKLOADS.create(name)


def available_workloads() -> List[str]:
    """Names of all registered workloads."""
    return WORKLOADS.names()


def full_suite() -> List[Workload]:
    """Instantiate every registered workload (the paper-style suite)."""
    return [get_workload(name) for name in available_workloads()]
