"""Sorting kernels: bubble sort (data-dependent branches) and recursive
quicksort (deep call/return behaviour over the stack).
"""

from __future__ import annotations

from typing import List

from ...isa.assembler import assemble
from ...runtime.machine import Machine
from ..suite import Workload, register_workload

_COUNT = 48
_ARRAY = 0x4000


def _input_values() -> List[int]:
    return [((i * 73 + 41) % 97) - 48 for i in range(_COUNT)]


_INIT_SNIPPET = f"""
    li   r1, 0
arr_init:
    muli r4, r1, 73
    addi r4, r4, 41
    li   r5, 97
    mod  r4, r4, r5
    subi r4, r4, 48
    muli r5, r1, 4
    addi r5, r5, {_ARRAY}
    st   r4, 0(r5)
    addi r1, r1, 1
    slti r8, r1, {_COUNT}
    bne  r8, r0, arr_init
"""

_CHECK_SNIPPET = f"""
    ; weighted checksum sum((i+1) * a[i]) -> r14
    li   r1, 0
    li   r14, 0
chk_loop:
    muli r4, r1, 4
    addi r4, r4, {_ARRAY}
    ld   r5, 0(r4)
    addi r6, r1, 1
    mul  r5, r5, r6
    add  r14, r14, r5
    addi r1, r1, 1
    slti r8, r1, {_COUNT}
    bne  r8, r0, chk_loop
    halt
"""

_BUBBLE_SOURCE = f"""
; bubble sort {_COUNT} ints ascending
main:
{_INIT_SNIPPET}
    li   r1, {_COUNT - 1}   ; passes remaining
bub_pass:
    li   r2, 0              ; index
bub_inner:
    muli r4, r2, 4
    addi r4, r4, {_ARRAY}
    ld   r5, 0(r4)          ; a[i]
    ld   r6, 4(r4)          ; a[i+1]
    bge  r6, r5, bub_noswap
    st   r6, 0(r4)
    st   r5, 4(r4)
bub_noswap:
    addi r2, r2, 1
    blt  r2, r1, bub_inner
    subi r1, r1, 1
    bne  r1, r0, bub_pass
{_CHECK_SNIPPET}
"""


def _sorted_checksum() -> int:
    values = sorted(_input_values())
    return sum((i + 1) * v for i, v in enumerate(values))


def _make_sort_check(kernel: str):
    def check(machine: Machine) -> List[str]:
        problems: List[str] = []
        expected = sorted(_input_values())
        for i, value in enumerate(expected):
            got = machine.load_word(_ARRAY + 4 * i)
            if got != value:
                problems.append(
                    f"{kernel}: a[{i}] = {got}, expected {value}"
                )
                if len(problems) > 5:
                    break
        if machine.registers[14] != _sorted_checksum():
            problems.append(
                f"{kernel}: checksum r14 = {machine.registers[14]}, "
                f"expected {_sorted_checksum()}"
            )
        return problems

    return check


@register_workload("bubble")
def build_bubble() -> Workload:
    """Bubble sort: tight doubly-nested loop, data-dependent swap branch."""
    return Workload(
        name="bubble",
        description=f"bubble sort of {_COUNT} ints; data-dependent branch",
        program=assemble(_BUBBLE_SOURCE, "bubble"),
        check=_make_sort_check("bubble"),
    )


_QSORT_SOURCE = f"""
; recursive quicksort (Lomuto partition)
main:
{_INIT_SNIPPET}
    li   r1, 0              ; lo
    li   r2, {_COUNT - 1}   ; hi
    call qsort
{_CHECK_SNIPPET}

qsort:
    blt  r1, r2, qs_work
    ret
qs_work:
    subi sp, sp, 16
    st   ra, 0(sp)
    st   r1, 4(sp)
    st   r2, 8(sp)
    ; pivot = a[hi]
    muli r4, r2, 4
    addi r4, r4, {_ARRAY}
    ld   r5, 0(r4)          ; pivot
    subi r6, r1, 1          ; i
    mov  r7, r1             ; j
qs_part:
    bge  r7, r2, qs_part_done
    muli r4, r7, 4
    addi r4, r4, {_ARRAY}
    ld   r8, 0(r4)          ; a[j]
    bge  r8, r5, qs_noswap
    addi r6, r6, 1
    muli r9, r6, 4
    addi r9, r9, {_ARRAY}
    ld   r10, 0(r9)
    st   r8, 0(r9)
    st   r10, 0(r4)
qs_noswap:
    addi r7, r7, 1
    jmp  qs_part
qs_part_done:
    addi r6, r6, 1          ; p
    muli r9, r6, 4
    addi r9, r9, {_ARRAY}
    ld   r10, 0(r9)         ; a[p]
    muli r4, r2, 4
    addi r4, r4, {_ARRAY}
    ld   r8, 0(r4)          ; a[hi]
    st   r8, 0(r9)
    st   r10, 0(r4)
    st   r6, 12(sp)
    ; qsort(lo, p-1)
    ld   r1, 4(sp)
    subi r2, r6, 1
    call qsort
    ; qsort(p+1, hi)
    ld   r4, 12(sp)
    addi r1, r4, 1
    ld   r2, 8(sp)
    call qsort
    ld   ra, 0(sp)
    addi sp, sp, 16
    ret
"""


@register_workload("quicksort")
def build_quicksort() -> Workload:
    """Recursive quicksort: call/return-heavy control flow."""
    return Workload(
        name="quicksort",
        description=f"recursive quicksort of {_COUNT} ints",
        program=assemble(_QSORT_SOURCE, "quicksort"),
        check=_make_sort_check("quicksort"),
    )
