"""Graph kernel: Dijkstra single-source shortest paths (O(V^2)).

Automotive/network benchmark suites (MiBench) ship exactly this kernel; it
stresses irregular branching (min scans, relaxation tests) over nested
loops.
"""

from __future__ import annotations

from typing import List

from ...isa.assembler import assemble
from ...runtime.machine import Machine
from ..suite import Workload, register_workload

_V = 12
_INF = 30000
_W_BASE = 0x5000     # V x V weight matrix
_DIST_BASE = 0x5400
_VISITED_BASE = 0x5500


def _weights() -> List[List[int]]:
    w = [[_INF] * _V for _ in range(_V)]
    for i in range(_V):
        w[i][i] = 0
        for j in range(_V):
            if i != j and (i * 7 + j * 13) % 4 == 0:
                w[i][j] = (i * j + i + j) % 9 + 1
    return w


def _dijkstra_reference() -> List[int]:
    w = _weights()
    dist = [_INF] * _V
    dist[0] = 0
    visited = [False] * _V
    for _ in range(_V):
        u, best = -1, _INF + 1
        for v in range(_V):
            if not visited[v] and dist[v] < best:
                best, u = dist[v], v
        if u < 0:
            break
        visited[u] = True
        for v in range(_V):
            if dist[u] + w[u][v] < dist[v]:
                dist[v] = dist[u] + w[u][v]
    return dist


_DIJKSTRA_SOURCE = f"""
; Dijkstra from node 0 over a {_V}-node weighted digraph
main:
    ; build weight matrix
    li   r1, 0              ; i
w_i:
    li   r2, 0              ; j
w_j:
    muli r4, r1, {_V}
    add  r4, r4, r2
    muli r4, r4, 4
    addi r4, r4, {_W_BASE}
    li   r5, {_INF}
    beq  r1, r2, w_diag
    muli r6, r1, 7
    muli r7, r2, 13
    add  r6, r6, r7
    andi r6, r6, 3          ; (7i + 13j) % 4
    bne  r6, r0, w_store
    mul  r6, r1, r2
    add  r6, r6, r1
    add  r6, r6, r2
    li   r7, 9
    mod  r6, r6, r7
    addi r5, r6, 1
    jmp  w_store
w_diag:
    li   r5, 0
w_store:
    st   r5, 0(r4)
    addi r2, r2, 1
    slti r8, r2, {_V}
    bne  r8, r0, w_j
    addi r1, r1, 1
    slti r8, r1, {_V}
    bne  r8, r0, w_i

    ; init dist / visited
    li   r1, 0
d_init:
    muli r4, r1, 4
    addi r5, r4, {_DIST_BASE}
    li   r6, {_INF}
    st   r6, 0(r5)
    addi r5, r4, {_VISITED_BASE}
    st   r0, 0(r5)
    addi r1, r1, 1
    slti r8, r1, {_V}
    bne  r8, r0, d_init
    li   r4, {_DIST_BASE}
    st   r0, 0(r4)          ; dist[0] = 0

    li   r9, 0              ; outer iteration
dj_outer:
    ; find unvisited u with min dist
    li   r1, 0              ; v
    li   r2, {_INF + 1}     ; best
    subi r3, r0, 1          ; u = -1
dj_scan:
    muli r4, r1, 4
    addi r5, r4, {_VISITED_BASE}
    ld   r6, 0(r5)
    bne  r6, r0, dj_scan_next
    addi r5, r4, {_DIST_BASE}
    ld   r6, 0(r5)
    bge  r6, r2, dj_scan_next
    mov  r2, r6
    mov  r3, r1
dj_scan_next:
    addi r1, r1, 1
    slti r8, r1, {_V}
    bne  r8, r0, dj_scan
    blt  r3, r0, dj_done    ; no reachable unvisited node

    ; visit u (r3), relax all v
    muli r4, r3, 4
    addi r5, r4, {_VISITED_BASE}
    li   r6, 1
    st   r6, 0(r5)
    addi r5, r4, {_DIST_BASE}
    ld   r7, 0(r5)          ; dist[u]
    li   r1, 0              ; v
dj_relax:
    muli r4, r3, {_V}
    add  r4, r4, r1
    muli r4, r4, 4
    addi r4, r4, {_W_BASE}
    ld   r5, 0(r4)          ; w[u][v]
    add  r5, r5, r7         ; dist[u] + w[u][v]
    muli r4, r1, 4
    addi r4, r4, {_DIST_BASE}
    ld   r6, 0(r4)          ; dist[v]
    bge  r5, r6, dj_norelax
    st   r5, 0(r4)
dj_norelax:
    addi r1, r1, 1
    slti r8, r1, {_V}
    bne  r8, r0, dj_relax

    addi r9, r9, 1
    slti r8, r9, {_V}
    bne  r8, r0, dj_outer
dj_done:
    ; checksum distances -> r14
    li   r1, 0
    li   r14, 0
dj_sum:
    muli r4, r1, 4
    addi r4, r4, {_DIST_BASE}
    ld   r5, 0(r4)
    add  r14, r14, r5
    addi r1, r1, 1
    slti r8, r1, {_V}
    bne  r8, r0, dj_sum
    halt
"""


@register_workload("dijkstra")
def build_dijkstra() -> Workload:
    """O(V^2) Dijkstra (MiBench-style network kernel)."""

    def check(machine: Machine) -> List[str]:
        problems: List[str] = []
        dist = _dijkstra_reference()
        for v in range(_V):
            got = machine.load_word(_DIST_BASE + 4 * v)
            if got != dist[v]:
                problems.append(
                    f"dijkstra: dist[{v}] = {got}, expected {dist[v]}"
                )
        if machine.registers[14] != sum(dist):
            problems.append(
                f"dijkstra: checksum r14 = {machine.registers[14]}, "
                f"expected {sum(dist)}"
            )
        return problems

    return Workload(
        name="dijkstra",
        description=f"Dijkstra over {_V} nodes (O(V^2) scan + relax)",
        program=assemble(_DIJKSTRA_SOURCE, "dijkstra"),
        check=check,
    )
