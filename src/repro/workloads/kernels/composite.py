"""Composite application: several kernels chained into one program.

Embedded applications are phase-structured (init, transform, encode, ...).
This workload chains four kernels — matmul, FIR, bubble sort, histogram —
into a single binary by prefixing each phase's labels and replacing its
``halt`` with a jump to the next phase.  Phases touch disjoint data
regions, so every phase's memory oracle still applies at the end.

This is the suite's "large application" shape: earlier phases' code goes
cold once they finish — exactly the pattern basic-block compression
exploits (Section 6's "large fraction of the code is rarely touched").
"""

from __future__ import annotations

import re
from typing import Callable, List

from ...isa.assembler import assemble
from ...runtime.machine import Machine
from ..suite import Workload, register_workload
from . import coding, linalg, sorting, strings

_LABEL_DEF = re.compile(r"^\s*([A-Za-z_.$][\w.$]*):", re.MULTILINE)


def _prefix_phase(source: str, prefix: str, next_label: str) -> str:
    """Prefix all labels in ``source`` and chain ``halt`` to the next
    phase."""
    labels = set(_LABEL_DEF.findall(source))
    renamed = source
    # Longest-first avoids prefixing 'loop' inside 'outer_loop'.
    for label in sorted(labels, key=len, reverse=True):
        renamed = re.sub(
            rf"\b{re.escape(label)}\b", f"{prefix}_{label}", renamed
        )
    count = renamed.count("halt")
    if count != 1:
        raise ValueError(
            f"phase '{prefix}' must have exactly one halt, found {count}"
        )
    return renamed.replace("halt", f"jmp  {next_label}")


def _build_composite_source() -> str:
    phases = [
        ("mm", linalg._MATMUL_SOURCE),
        ("fir", linalg._FIR_SOURCE),
        ("srt", sorting._BUBBLE_SOURCE),
        ("hst", strings._HIST_SOURCE),
    ]
    parts: List[str] = ["main:", "    jmp  mm_main"]
    for index, (prefix, source) in enumerate(phases):
        if index + 1 < len(phases):
            next_label = f"{phases[index + 1][0]}_main"
        else:
            next_label = "app_done"
        parts.append(_prefix_phase(source, prefix, next_label))
    parts.append("app_done:")
    parts.append("    halt")
    return "\n".join(parts)


@register_workload("composite")
def build_composite() -> Workload:
    """Four-phase application (matmul -> fir -> sort -> histogram)."""

    def check(machine: Machine) -> List[str]:
        problems: List[str] = []
        # Phase oracles over their disjoint memory regions.
        for name, oracle in (
            ("matmul", linalg.build_matmul),
            ("fir", linalg.build_fir),
            ("bubble", sorting.build_bubble),
            ("histogram", strings.build_histogram),
        ):
            phase_problems = oracle().check(machine)
            # Register checks (r14 checksum) are only valid for the final
            # phase; drop checksum complaints from earlier phases.
            if name != "histogram":
                phase_problems = [
                    p for p in phase_problems if "checksum" not in p
                ]
            problems.extend(phase_problems)
        return problems

    return Workload(
        name="composite",
        description="4-phase app: matmul, fir, bubble sort, histogram",
        program=assemble(_build_composite_source(), "composite"),
        check=check,
    )
