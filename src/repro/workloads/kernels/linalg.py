"""Linear-algebra kernels: matrix multiply and FIR filter.

Classic embedded DSP workloads: deep loop nests with high temporal reuse of
a small set of basic blocks — the regime where the k-edge parameter's
memory/performance trade-off is most visible.
"""

from __future__ import annotations

from typing import List

from ...isa.assembler import assemble
from ...runtime.machine import Machine
from ..suite import Workload, register_workload

# ---------------------------------------------------------------------------
# matmul: C = A x B, N x N integer matrices
# ---------------------------------------------------------------------------

_N = 8
_A_BASE = 0x1000
_B_BASE = 0x1100
_C_BASE = 0x1200

_MATMUL_SOURCE = f"""
; C = A * B over {_N}x{_N} int matrices; A[i][j] = i + 2j, B[i][j] = 3i - j
main:
    li   r1, 0              ; i
init_i:
    li   r2, 0              ; j
init_j:
    muli r4, r1, {_N}
    add  r4, r4, r2
    muli r5, r4, 4
    addi r6, r5, {_A_BASE}
    add  r7, r1, r2
    add  r7, r7, r2         ; i + 2j
    st   r7, 0(r6)
    addi r6, r5, {_B_BASE}
    muli r7, r1, 3
    sub  r7, r7, r2         ; 3i - j
    st   r7, 0(r6)
    addi r2, r2, 1
    slti r8, r2, {_N}
    bne  r8, r0, init_j
    addi r1, r1, 1
    slti r8, r1, {_N}
    bne  r8, r0, init_i

    li   r1, 0              ; i
mm_i:
    li   r2, 0              ; j
mm_j:
    li   r3, 0              ; k
    li   r9, 0              ; acc
mm_k:
    muli r4, r1, {_N}
    add  r4, r4, r3
    muli r4, r4, 4
    addi r4, r4, {_A_BASE}
    ld   r5, 0(r4)          ; A[i][k]
    muli r4, r3, {_N}
    add  r4, r4, r2
    muli r4, r4, 4
    addi r4, r4, {_B_BASE}
    ld   r6, 0(r4)          ; B[k][j]
    mul  r7, r5, r6
    add  r9, r9, r7
    addi r3, r3, 1
    slti r8, r3, {_N}
    bne  r8, r0, mm_k
    muli r4, r1, {_N}
    add  r4, r4, r2
    muli r4, r4, 4
    addi r4, r4, {_C_BASE}
    st   r9, 0(r4)
    addi r2, r2, 1
    slti r8, r2, {_N}
    bne  r8, r0, mm_j
    addi r1, r1, 1
    slti r8, r1, {_N}
    bne  r8, r0, mm_i

    li   r1, 0              ; checksum C into r14
    li   r14, 0
sum_loop:
    muli r4, r1, 4
    addi r4, r4, {_C_BASE}
    ld   r5, 0(r4)
    add  r14, r14, r5
    addi r1, r1, 1
    slti r8, r1, {_N * _N}
    bne  r8, r0, sum_loop
    halt
"""


def _matmul_reference():
    a = [[i + 2 * j for j in range(_N)] for i in range(_N)]
    b = [[3 * i - j for j in range(_N)] for i in range(_N)]
    c = [
        [
            sum(a[i][k] * b[k][j] for k in range(_N))
            for j in range(_N)
        ]
        for i in range(_N)
    ]
    return c


@register_workload("matmul")
def build_matmul() -> Workload:
    """Dense integer matrix multiply (triple loop nest)."""

    def check(machine: Machine) -> List[str]:
        problems: List[str] = []
        c = _matmul_reference()
        for i in range(_N):
            for j in range(_N):
                got = machine.load_word(_C_BASE + 4 * (i * _N + j))
                if got != c[i][j]:
                    problems.append(
                        f"matmul: C[{i}][{j}] = {got}, expected {c[i][j]}"
                    )
        checksum = sum(sum(row) for row in c)
        if machine.registers[14] != checksum:
            problems.append(
                f"matmul: checksum r14 = {machine.registers[14]}, "
                f"expected {checksum}"
            )
        return problems

    return Workload(
        name="matmul",
        description=f"{_N}x{_N} integer matrix multiply; triple loop nest",
        program=assemble(_MATMUL_SOURCE, "matmul"),
        check=check,
    )


# ---------------------------------------------------------------------------
# fir: 8-tap FIR filter over 64 samples
# ---------------------------------------------------------------------------

_SAMPLES = 64
_TAPS = 8
_X_BASE = 0x2000
_H_BASE = 0x2100
_Y_BASE = 0x2200

_FIR_SOURCE = f"""
; y[n] = sum_k h[k] * x[n-k], n = {_TAPS - 1}..{_SAMPLES - 1}
; x[i] = (7i mod 13) - 6, h[k] = k - 3
main:
    li   r1, 0
x_init:
    muli r4, r1, 7
    li   r5, 13
    mod  r4, r4, r5
    subi r4, r4, 6
    muli r5, r1, 4
    addi r5, r5, {_X_BASE}
    st   r4, 0(r5)
    addi r1, r1, 1
    slti r8, r1, {_SAMPLES}
    bne  r8, r0, x_init
    li   r1, 0
h_init:
    subi r4, r1, 3
    muli r5, r1, 4
    addi r5, r5, {_H_BASE}
    st   r4, 0(r5)
    addi r1, r1, 1
    slti r8, r1, {_TAPS}
    bne  r8, r0, h_init

    li   r1, {_TAPS - 1}    ; n
fir_n:
    li   r2, 0              ; k
    li   r9, 0              ; acc
fir_k:
    muli r4, r2, 4
    addi r4, r4, {_H_BASE}
    ld   r5, 0(r4)          ; h[k]
    sub  r4, r1, r2
    muli r4, r4, 4
    addi r4, r4, {_X_BASE}
    ld   r6, 0(r4)          ; x[n-k]
    mul  r7, r5, r6
    add  r9, r9, r7
    addi r2, r2, 1
    slti r8, r2, {_TAPS}
    bne  r8, r0, fir_k
    muli r4, r1, 4
    addi r4, r4, {_Y_BASE}
    st   r9, 0(r4)
    addi r1, r1, 1
    slti r8, r1, {_SAMPLES}
    bne  r8, r0, fir_n

    li   r1, {_TAPS - 1}    ; checksum y into r14
    li   r14, 0
y_sum:
    muli r4, r1, 4
    addi r4, r4, {_Y_BASE}
    ld   r5, 0(r4)
    add  r14, r14, r5
    addi r1, r1, 1
    slti r8, r1, {_SAMPLES}
    bne  r8, r0, y_sum
    halt
"""


def _fir_reference():
    x = [(7 * i) % 13 - 6 for i in range(_SAMPLES)]
    h = [k - 3 for k in range(_TAPS)]
    y = {}
    for n in range(_TAPS - 1, _SAMPLES):
        y[n] = sum(h[k] * x[n - k] for k in range(_TAPS))
    return y


@register_workload("fir")
def build_fir() -> Workload:
    """8-tap FIR filter (DSP inner loop with sliding window)."""

    def check(machine: Machine) -> List[str]:
        problems: List[str] = []
        y = _fir_reference()
        for n, expected in y.items():
            got = machine.load_word(_Y_BASE + 4 * n)
            if got != expected:
                problems.append(
                    f"fir: y[{n}] = {got}, expected {expected}"
                )
        checksum = sum(y.values())
        if machine.registers[14] != checksum:
            problems.append(
                f"fir: checksum r14 = {machine.registers[14]}, "
                f"expected {checksum}"
            )
        return problems

    return Workload(
        name="fir",
        description=f"{_TAPS}-tap FIR over {_SAMPLES} samples",
        program=assemble(_FIR_SOURCE, "fir"),
        check=check,
    )
