"""Control-flow-heavy kernels: FSM tokenizer, cold-path ladder, modular app.

These three target the paper's motivation directly:

* ``fsm`` — a tokenizer DFA: many small blocks, input-dependent hopping.
* ``cold_paths`` — one big function with a 16-arm branch ladder where only
  two arms are hot: the case where block granularity beats function
  granularity ("a particular basic block chain within a large function is
  repeatedly executed", Section 6).
* ``modular`` — many small functions, three hot, the rest cold: the case
  function-granularity schemes (Debray-Evans) are built for.
"""

from __future__ import annotations

from typing import Dict, List

from ...isa import instructions as ins
from ...isa.assembler import assemble
from ...isa.program import ProgramBuilder
from ...runtime.machine import Machine
from ..suite import Workload, register_workload

# ---------------------------------------------------------------------------
# fsm: tokenizer DFA (idle / word / number states)
# ---------------------------------------------------------------------------

_FSM_LEN = 160
_FSM_TEXT_BASE = 0x6800


def _fsm_text() -> List[int]:
    chars = []
    for i in range(_FSM_LEN):
        bucket = (i * 17 + 3) % 11
        if bucket < 4:
            chars.append(65 + (i % 26))       # letter
        elif bucket < 7:
            chars.append(48 + (i % 10))       # digit
        elif bucket < 9:
            chars.append(32)                  # space
        else:
            chars.append(46)                  # '.'
    return chars


def _fsm_reference() -> int:
    words = numbers = 0
    state = 0  # 0 idle, 1 word, 2 number
    for c in _fsm_text():
        if 65 <= c <= 90:
            cls = 0
        elif 48 <= c <= 57:
            cls = 1
        elif c == 32:
            cls = 2
        else:
            cls = 3
        if state == 0:
            if cls == 0:
                state, words = 1, words + 1
            elif cls == 1:
                state, numbers = 2, numbers + 1
        elif state == 1:
            if cls == 1:
                state, numbers = 2, numbers + 1
            elif cls != 0:
                state = 0
        else:  # number
            if cls == 0:
                state, words = 1, words + 1
            elif cls != 1:
                state = 0
    return words * 1000 + numbers


_FSM_SOURCE = f"""
; tokenizer DFA over {_FSM_LEN} generated chars; r14 = words*1000 + numbers
main:
    li   r1, 0
txt_init:
    muli r4, r1, 17
    addi r4, r4, 3
    li   r5, 11
    mod  r4, r4, r5         ; bucket
    slti r8, r4, 4
    bne  r8, r0, mk_letter
    slti r8, r4, 7
    bne  r8, r0, mk_digit
    slti r8, r4, 9
    bne  r8, r0, mk_space
    li   r5, 46
    jmp  mk_store
mk_letter:
    li   r5, 26
    mod  r5, r1, r5
    addi r5, r5, 65
    jmp  mk_store
mk_digit:
    li   r5, 10
    mod  r5, r1, r5
    addi r5, r5, 48
    jmp  mk_store
mk_space:
    li   r5, 32
mk_store:
    muli r4, r1, 4
    addi r4, r4, {_FSM_TEXT_BASE}
    st   r5, 0(r4)
    addi r1, r1, 1
    slti r8, r1, {_FSM_LEN}
    bne  r8, r0, txt_init

    li   r1, 0              ; index
    li   r3, 0              ; state
    li   r11, 0             ; words
    li   r12, 0             ; numbers
fsm_loop:
    muli r4, r1, 4
    addi r4, r4, {_FSM_TEXT_BASE}
    ld   r5, 0(r4)          ; c
    ; classify into r4: 0 letter, 1 digit, 2 space, 3 other
    li   r4, 3
    li   r8, 65
    blt  r5, r8, cl_not_letter
    li   r8, 91
    bge  r5, r8, cl_not_letter
    li   r4, 0
    jmp  cl_done
cl_not_letter:
    li   r8, 48
    blt  r5, r8, cl_not_digit
    li   r8, 58
    bge  r5, r8, cl_not_digit
    li   r4, 1
    jmp  cl_done
cl_not_digit:
    li   r8, 32
    bne  r5, r8, cl_done
    li   r4, 2
cl_done:
    beq  r3, r0, st_idle
    li   r8, 1
    beq  r3, r8, st_word
    jmp  st_num
st_idle:
    beq  r4, r0, go_word
    li   r8, 1
    beq  r4, r8, go_num
    jmp  next_char
st_word:
    beq  r4, r0, next_char
    li   r8, 1
    beq  r4, r8, go_num
    li   r3, 0
    jmp  next_char
st_num:
    li   r8, 1
    beq  r4, r8, next_char
    beq  r4, r0, go_word
    li   r3, 0
    jmp  next_char
go_word:
    li   r3, 1
    addi r11, r11, 1
    jmp  next_char
go_num:
    li   r3, 2
    addi r12, r12, 1
next_char:
    addi r1, r1, 1
    slti r8, r1, {_FSM_LEN}
    bne  r8, r0, fsm_loop
    muli r14, r11, 1000
    add  r14, r14, r12
    halt
"""


@register_workload("fsm")
def build_fsm() -> Workload:
    """Tokenizer DFA: dense, input-driven block hopping."""

    def check(machine: Machine) -> List[str]:
        expected = _fsm_reference()
        if machine.registers[14] != expected:
            return [
                f"fsm: r14 = {machine.registers[14]}, expected {expected}"
            ]
        return []

    return Workload(
        name="fsm",
        description=f"tokenizer DFA over {_FSM_LEN} chars",
        program=assemble(_FSM_SOURCE, "fsm"),
        check=check,
    )


# ---------------------------------------------------------------------------
# cold_paths: hot chain inside a big branch ladder (Section 6 motivation)
# ---------------------------------------------------------------------------

_COLD_ARMS = 16
_COLD_ITER = 200
_LCG_MULT = 1103515245
_LCG_INC = 12345
_LCG_MASK = 0x7FFFFFFF


def _cold_selectors() -> List[int]:
    value = 99
    selectors = []
    for _ in range(_COLD_ITER):
        value = (value * _LCG_MULT + _LCG_INC) & _LCG_MASK
        selector = (value >> 16) & 15
        selectors.append(selector if selector >= 13 else selector & 1)
    return selectors


def _cold_reference() -> int:
    total = 0
    for arm in _cold_selectors():
        total += 17 * arm + 5
    return total & 0xFFFFFFF


def _build_cold_program():
    b = ProgramBuilder("cold_paths")
    b.label("main")
    b.emit(
        ins.li(1, 0),                    # iteration counter
        ins.li(2, 99),                   # LCG state
        ins.lui(10, _LCG_MULT >> 16),
        ins.ori(10, 10, _LCG_MULT & 0xFFFF),
        ins.li(14, 0),                   # accumulator
        ins.lui(9, _LCG_MASK >> 16),
        ins.ori(9, 9, _LCG_MASK & 0xFFFF),
    )
    b.label("loop")
    # advance LCG, compute arm selector into r3
    b.emit(
        ins.mul(2, 2, 10),
        ins.addi(2, 2, _LCG_INC),
        ins.and_(2, 2, 9),
        ins.shri(3, 2, 16),
        ins.andi(3, 3, 15),
        # hot remap: selector < 13 -> selector & 1
        ins.slti(8, 3, 13),
        ins.beq(8, 0, ".keep_cold"),
        ins.andi(3, 3, 1),
    )
    b.label(".keep_cold")
    # dispatch ladder: compare r3 against each arm id
    for arm in range(_COLD_ARMS):
        b.emit(
            ins.li(8, arm),
            ins.beq(3, 8, f".arm{arm}"),
        )
    b.emit(ins.jmp(".next"))  # unreachable safety
    for arm in range(_COLD_ARMS):
        b.label(f".arm{arm}")
        # live work: r14 += 17*arm + 5 (split across instructions)
        b.emit(
            ins.addi(14, 14, 17 * arm),
            ins.addi(14, 14, 5),
        )
        # bulk filler: dead arithmetic unique to this arm (12 instrs)
        for j in range(12):
            ops = [
                ins.muli(4, 1, arm + j + 2),
                ins.addi(5, 4, j * 3 + 1),
                ins.xori(6, 5, (arm * 37 + j) & 0xFFFF),
                ins.shli(7, 6, (j % 5) + 1),
            ]
            b.emit(ops[j % 4])
        for j in range(8):
            b.emit(ins.add(4 + (j % 3), 4 + ((j + 1) % 3), 4 + ((j + 2) % 3)))
        b.emit(ins.jmp(".next"))
    b.label(".next")
    # mask accumulator and loop
    b.emit(
        ins.lui(8, 0x0FFF),
        ins.ori(8, 8, 0xFFFF),
        ins.and_(14, 14, 8),
        ins.addi(1, 1, 1),
        ins.slti(8, 1, _COLD_ITER),
        ins.bne(8, 0, "loop"),
        ins.halt(),
    )
    return b.build()


@register_workload("cold_paths")
def build_cold_paths() -> Workload:
    """16-arm ladder, 2 hot arms: the hot-chain-in-big-function case."""

    def check(machine: Machine) -> List[str]:
        expected = _cold_reference()
        if machine.registers[14] != expected:
            return [
                f"cold_paths: r14 = {machine.registers[14]}, "
                f"expected {expected}"
            ]
        return []

    return Workload(
        name="cold_paths",
        description=(
            f"{_COLD_ARMS}-arm branch ladder, 2 hot arms, "
            f"{_COLD_ITER} iterations"
        ),
        program=_build_cold_program(),
        check=check,
    )


# ---------------------------------------------------------------------------
# modular: many small functions, three hot (Debray-Evans shape)
# ---------------------------------------------------------------------------

_N_FUNCS = 12
_HOT_FUNCS = 3
_MOD_ITER = 150


def _modular_reference() -> int:
    total = 0
    for f in range(_N_FUNCS):          # cold init pass: each once
        total += f * 13 + 7
    for i in range(_MOD_ITER):         # hot loop
        f = i % _HOT_FUNCS
        total += f * 13 + 7
    return total


def _build_modular_program():
    b = ProgramBuilder("modular")
    b.label("main")
    b.emit(ins.li(14, 0))
    # Cold phase: call every function once.
    for f in range(_N_FUNCS):
        b.emit(ins.call(f"func{f}"))
    # Hot phase: rotate through the first three functions.
    b.emit(ins.li(1, 0))
    b.label("hot_loop")
    b.emit(
        ins.li(5, _HOT_FUNCS),
        ins.mod(2, 1, 5),
    )
    for f in range(_HOT_FUNCS):
        b.emit(
            ins.li(8, f),
            ins.beq(2, 8, f".call{f}"),
        )
    b.emit(ins.jmp(".hot_next"))
    for f in range(_HOT_FUNCS):
        b.label(f".call{f}")
        b.emit(ins.call(f"func{f}"), ins.jmp(".hot_next"))
    b.label(".hot_next")
    b.emit(
        ins.addi(1, 1, 1),
        ins.slti(8, 1, _MOD_ITER),
        ins.bne(8, 0, "hot_loop"),
        ins.halt(),
    )
    # Functions: one live accumulation + unique filler body.
    for f in range(_N_FUNCS):
        b.label(f"func{f}")
        b.emit(ins.addi(14, 14, f * 13 + 7))
        for j in range(18):
            ops = [
                ins.muli(4, 14, f + j + 1),
                ins.xori(5, 4, (f * 53 + j * 7) & 0xFFFF),
                ins.addi(6, 5, f * 11 + j),
                ins.shri(7, 6, (j % 4) + 1),
                ins.sub(4, 7, 5),
                ins.or_(5, 4, 6),
            ]
            b.emit(ops[j % 6])
        b.emit(ins.ret())
    return b.build()


@register_workload("modular")
def build_modular() -> Workload:
    """12 small functions, 3 hot: the function-granularity-friendly shape."""

    def check(machine: Machine) -> List[str]:
        expected = _modular_reference()
        if machine.registers[14] != expected:
            return [
                f"modular: r14 = {machine.registers[14]}, "
                f"expected {expected}"
            ]
        return []

    return Workload(
        name="modular",
        description=(
            f"{_N_FUNCS} functions, {_HOT_FUNCS} hot, "
            f"{_MOD_ITER}-iteration hot loop"
        ),
        program=_build_modular_program(),
        check=check,
    )
