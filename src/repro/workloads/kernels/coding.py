"""Coding kernels: bitwise CRC-32 and a simplified ADPCM encoder.

Telecom/network-style workloads: bit-twiddling inner loops (CRC) and a
branchy quantise-and-adapt loop (ADPCM), both classic embedded benchmarks.
"""

from __future__ import annotations

from typing import List

from ...isa.assembler import assemble
from ...runtime.machine import Machine
from ..suite import Workload, register_workload

# ---------------------------------------------------------------------------
# crc32: bitwise (table-free) CRC-32 over a byte message
# ---------------------------------------------------------------------------

_MSG_LEN = 64
_MSG_BASE = 0x3000
_POLY = 0xEDB88320


def _message() -> List[int]:
    return [(i * 37 + 11) & 0xFF for i in range(_MSG_LEN)]


def _crc32_reference() -> int:
    crc = 0xFFFFFFFF
    for byte in _message():
        crc ^= byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ _POLY
            else:
                crc >>= 1
    return crc ^ 0xFFFFFFFF


_CRC_SOURCE = f"""
; bitwise CRC-32; message bytes m[i] = (37i + 11) & 0xFF, one per word
main:
    li   r1, 0
msg_init:
    muli r4, r1, 37
    addi r4, r4, 11
    andi r4, r4, 255
    muli r5, r1, 4
    addi r5, r5, {_MSG_BASE}
    st   r4, 0(r5)
    addi r1, r1, 1
    slti r8, r1, {_MSG_LEN}
    bne  r8, r0, msg_init

    ; crc = 0xFFFFFFFF
    lui  r2, 0xFFFF
    ori  r2, r2, 0xFFFF
    ; poly = 0xEDB88320
    lui  r3, {_POLY >> 16}
    ori  r3, r3, {_POLY & 0xFFFF}

    li   r1, 0              ; byte index
crc_byte:
    muli r4, r1, 4
    addi r4, r4, {_MSG_BASE}
    ld   r5, 0(r4)
    xor  r2, r2, r5         ; crc ^= byte
    li   r6, 8              ; bit counter
crc_bit:
    andi r7, r2, 1
    shri r2, r2, 1
    beq  r7, r0, crc_nopoly
    xor  r2, r2, r3
crc_nopoly:
    subi r6, r6, 1
    bne  r6, r0, crc_bit
    addi r1, r1, 1
    slti r8, r1, {_MSG_LEN}
    bne  r8, r0, crc_byte

    ; final xor; result in r14
    lui  r4, 0xFFFF
    ori  r4, r4, 0xFFFF
    xor  r14, r2, r4
    halt
"""


@register_workload("crc32")
def build_crc32() -> Workload:
    """Bitwise CRC-32 (bit-serial inner loop, taken/not-taken mix)."""

    def check(machine: Machine) -> List[str]:
        expected = _crc32_reference()
        got = machine.registers[14] & 0xFFFFFFFF
        if got != expected:
            return [f"crc32: r14 = {got:#010x}, expected {expected:#010x}"]
        return []

    return Workload(
        name="crc32",
        description=f"bitwise CRC-32 over {_MSG_LEN} bytes",
        program=assemble(_CRC_SOURCE, "crc32"),
        check=check,
    )


# ---------------------------------------------------------------------------
# adpcm: simplified adaptive delta encoder
# ---------------------------------------------------------------------------

_N_SAMPLES = 96
_X_BASE = 0x3400
_CODE_BASE = 0x3600


def _samples() -> List[int]:
    # Triangle-ish wave with pseudo-random jitter, all in code below.
    return [
        ((i * 11) % 64) - 32 + ((i * i) % 7) for i in range(_N_SAMPLES)
    ]


def _adpcm_reference():
    pred, step = 0, 4
    codes = []
    for x in _samples():
        diff = x - pred
        sign = 0
        if diff < 0:
            sign = 8
            diff = -diff
        code = (diff * 4) // step
        if code > 7:
            code = 7
        delta = (code * step) // 4
        if sign:
            pred -= delta
        else:
            pred += delta
        if code >= 4:
            step *= 2
            if step > 16384:
                step = 16384
        else:
            step //= 2
            if step < 1:
                step = 1
        codes.append(sign | code)
    checksum = 0
    for c in codes:
        checksum = (checksum * 31 + c) & 0x7FFFFFFF
    return codes, checksum


_ADPCM_SOURCE = f"""
; simplified ADPCM: quantise diff to 4-bit code, adapt step size
; x[i] = ((11i mod 64) - 32) + (i*i mod 7)
main:
    li   r1, 0
x_init:
    muli r4, r1, 11
    li   r5, 64
    mod  r4, r4, r5
    subi r4, r4, 32
    mul  r5, r1, r1
    li   r6, 7
    mod  r5, r5, r6
    add  r4, r4, r5
    muli r5, r1, 4
    addi r5, r5, {_X_BASE}
    st   r4, 0(r5)
    addi r1, r1, 1
    slti r8, r1, {_N_SAMPLES}
    bne  r8, r0, x_init

    li   r1, 0              ; i
    li   r2, 0              ; pred
    li   r3, 4              ; step
    li   r14, 0             ; checksum
enc_loop:
    muli r4, r1, 4
    addi r4, r4, {_X_BASE}
    ld   r5, 0(r4)          ; x
    sub  r6, r5, r2         ; diff
    li   r7, 0              ; sign
    bge  r6, r0, enc_pos
    li   r7, 8
    sub  r6, r0, r6         ; diff = -diff
enc_pos:
    muli r6, r6, 4
    div  r6, r6, r3         ; code = diff*4/step
    slti r8, r6, 8
    bne  r8, r0, enc_clamped
    li   r6, 7
enc_clamped:
    mul  r9, r6, r3
    shri r9, r9, 2          ; delta = code*step/4
    beq  r7, r0, enc_add
    sub  r2, r2, r9
    jmp  enc_adapt
enc_add:
    add  r2, r2, r9
enc_adapt:
    slti r8, r6, 4
    bne  r8, r0, enc_shrink
    muli r3, r3, 2
    li   r8, 16384
    slt  r9, r8, r3
    beq  r9, r0, enc_store
    li   r3, 16384
    jmp  enc_store
enc_shrink:
    shri r3, r3, 1
    bne  r3, r0, enc_store
    li   r3, 1
enc_store:
    or   r4, r7, r6         ; code nibble
    muli r5, r1, 4
    addi r5, r5, {_CODE_BASE}
    st   r4, 0(r5)
    muli r14, r14, 31
    add  r14, r14, r4
    lui  r5, 0x7FFF
    ori  r5, r5, 0xFFFF
    and  r14, r14, r5
    addi r1, r1, 1
    slti r8, r1, {_N_SAMPLES}
    bne  r8, r0, enc_loop
    halt
"""


@register_workload("adpcm")
def build_adpcm() -> Workload:
    """Simplified ADPCM encoder (branchy quantise/adapt loop)."""

    def check(machine: Machine) -> List[str]:
        problems: List[str] = []
        codes, checksum = _adpcm_reference()
        for i, code in enumerate(codes):
            got = machine.load_word(_CODE_BASE + 4 * i)
            if got != code:
                problems.append(
                    f"adpcm: code[{i}] = {got}, expected {code}"
                )
                if len(problems) > 5:
                    break
        if machine.registers[14] != checksum:
            problems.append(
                f"adpcm: checksum r14 = {machine.registers[14]}, "
                f"expected {checksum}"
            )
        return problems

    return Workload(
        name="adpcm",
        description=f"simplified ADPCM over {_N_SAMPLES} samples",
        program=assemble(_ADPCM_SOURCE, "adpcm"),
        check=check,
    )
