"""Micro kernels: small warm-up programs (quickstart-sized).

``fib`` and ``gcd`` are deliberately tiny: they exercise the whole pipeline
(assemble -> CFG -> compress -> simulate -> validate) in milliseconds and
anchor documentation examples.
"""

from __future__ import annotations

from typing import List

from ...isa.assembler import assemble
from ...runtime.machine import Machine
from ..suite import Workload, register_workload

_FIB_N = 24

_FIB_SOURCE = f"""
; iterative fibonacci: r3 = fib({_FIB_N})
main:
    li   r1, {_FIB_N}       ; counter
    li   r2, 0              ; fib(i-1)
    li   r3, 1              ; fib(i)
fib_loop:
    add  r4, r2, r3
    mov  r2, r3
    mov  r3, r4
    subi r1, r1, 1
    bne  r1, r0, fib_loop
    halt
"""


def _fib(n: int) -> int:
    a, b = 0, 1
    for _ in range(n):
        a, b = b, a + b
    return b


@register_workload("fib")
def build_fib() -> Workload:
    """Iterative Fibonacci — the minimal single-loop workload."""

    def check(machine: Machine) -> List[str]:
        expected = _fib(_FIB_N)
        if machine.registers[3] != expected:
            return [
                f"fib: r3 = {machine.registers[3]}, expected {expected}"
            ]
        return []

    return Workload(
        name="fib",
        description=f"iterative fibonacci({_FIB_N}); one tight loop",
        program=assemble(_FIB_SOURCE, "fib"),
        check=check,
    )


_GCD_A = 1071 * 13
_GCD_B = 462 * 13

_GCD_SOURCE = f"""
; Euclid's algorithm: r1 = gcd({_GCD_A}, {_GCD_B})
main:
    li   r1, {_GCD_A}
    li   r2, {_GCD_B}
gcd_loop:
    beq  r2, r0, gcd_done
    mod  r3, r1, r2
    mov  r1, r2
    mov  r2, r3
    jmp  gcd_loop
gcd_done:
    halt
"""


@register_workload("gcd")
def build_gcd() -> Workload:
    """Euclid's GCD — loop with data-dependent trip count."""
    import math

    def check(machine: Machine) -> List[str]:
        expected = math.gcd(_GCD_A, _GCD_B)
        if machine.registers[1] != expected:
            return [
                f"gcd: r1 = {machine.registers[1]}, expected {expected}"
            ]
        return []

    return Workload(
        name="gcd",
        description=f"Euclid gcd({_GCD_A}, {_GCD_B}); modulo loop",
        program=assemble(_GCD_SOURCE, "gcd"),
        check=check,
    )
