"""Synthetic structured-program generator.

The hand-written kernels are faithful but small; the paper's setting is
"large-scale embedded applications with complex control structures".  This
generator produces arbitrarily large, always-terminating programs with:

* counted loops (nestable), whose trip counts are compile-time constants;
* data-dependent diamonds driven by an in-program LCG (deterministic but
  irregular branch outcomes, like real input-dependent code);
* calls to generated helper functions (some hot, some cold);
* straight-line filler blocks with realistic instruction mixes.

Generated programs have no hand-written oracle; the differential oracle is
used instead: a run under any compression configuration must produce
exactly the same final register state and block trace as the uncompressed
baseline (the integration tests rely on this).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Tuple

from ..isa import instructions as ins
from ..isa.program import Program, ProgramBuilder

#: Register allocation for generated code.  The LCG state and the live
#: accumulator must never be clobbered by filler.
_LCG_REG = 1       # pseudo-random state (live across the whole program)
_COND_REG = 2      # branch condition scratch
_ACC_REG = 14      # live accumulator (observable result)
_SCRATCH = (3, 4, 5, 6, 7)   # filler-only registers
_LOOP_REGS = (11, 12, 10, 8)  # loop counters by nesting depth

_LCG_MULT = 1103515245
_LCG_INC = 12345
_LCG_MASK_HI = 0x7FFF
_LCG_MASK_LO = 0xFFFF
_LCG_CONST_REG = 9  # holds the multiplier


@dataclass(frozen=True)
class GeneratorConfig:
    """Tunable shape of generated programs.

    ``segments`` top-level constructs are emitted; each is a loop, a
    diamond, a call, or a straight block, chosen with the given
    probabilities (straight-line takes the remainder).
    """

    seed: int = 1
    segments: int = 14
    max_loop_depth: int = 2
    loop_prob: float = 0.40
    branch_prob: float = 0.30
    call_prob: float = 0.12
    block_instrs: Tuple[int, int] = (4, 14)
    loop_iters: Tuple[int, int] = (3, 10)
    functions: int = 4
    function_instrs: Tuple[int, int] = (8, 24)

    def __post_init__(self) -> None:
        if self.segments < 1:
            raise ValueError("segments must be >= 1")
        if not 0 <= self.loop_prob + self.branch_prob + self.call_prob <= 1:
            raise ValueError("segment probabilities must sum to <= 1")
        if self.max_loop_depth < 0 or self.max_loop_depth > len(_LOOP_REGS):
            raise ValueError(
                f"max_loop_depth must be in [0, {len(_LOOP_REGS)}]"
            )


class _Generator:
    def __init__(self, config: GeneratorConfig) -> None:
        self.config = config
        self.rng = random.Random(config.seed)
        self.builder = ProgramBuilder(f"synthetic-{config.seed}")
        # Real code draws constants from a small per-program palette
        # (offsets, strides, masks recur); random immediates would make
        # the synthetic code artificially incompressible.
        self._imm_palette = [
            self.rng.randrange(-128, 128) for _ in range(10)
        ]
        self._mask_palette = [
            self.rng.randrange(0, 0x4000) for _ in range(6)
        ]

    # -- filler ---------------------------------------------------------

    def _filler_instruction(self):
        rng = self.rng
        rd = rng.choice(_SCRATCH)
        rs1 = rng.choice(_SCRATCH)
        rs2 = rng.choice(_SCRATCH)
        kind = rng.randrange(8)
        if kind == 0:
            return ins.addi(rd, rs1, rng.choice(self._imm_palette))
        if kind == 1:
            return ins.muli(rd, rs1, rng.choice((2, 3, 4, 5, 8)))
        if kind == 2:
            return ins.xor(rd, rs1, rs2)
        if kind == 3:
            return ins.add(rd, rs1, rs2)
        if kind == 4:
            return ins.shli(rd, rs1, rng.choice((1, 2, 4)))
        if kind == 5:
            return ins.shri(rd, rs1, rng.choice((1, 2, 4)))
        if kind == 6:
            return ins.ori(rd, rs1, rng.choice(self._mask_palette))
        return ins.sub(rd, rs1, rs2)

    def _emit_block(self, count: int) -> None:
        for _ in range(count):
            self.builder.emit(self._filler_instruction())
        # One live accumulation so the block is observable.
        self.builder.emit(
            ins.addi(_ACC_REG, _ACC_REG, self.rng.choice((1, 3, 5, 7)))
        )

    def _emit_lcg_step(self) -> None:
        self.builder.emit(
            ins.mul(_LCG_REG, _LCG_REG, _LCG_CONST_REG),
            ins.addi(_LCG_REG, _LCG_REG, _LCG_INC),
            ins.shri(_LCG_REG, _LCG_REG, 1),  # keep it positive
        )

    # -- segments -------------------------------------------------------

    def _emit_segment(self, depth: int) -> None:
        rng = self.rng
        roll = rng.random()
        config = self.config
        if roll < config.loop_prob and depth < config.max_loop_depth:
            self._emit_loop(depth)
        elif roll < config.loop_prob + config.branch_prob:
            self._emit_diamond(depth)
        elif roll < (config.loop_prob + config.branch_prob
                     + config.call_prob) and self._function_labels:
            self.builder.emit(ins.call(rng.choice(self._function_labels)))
        else:
            self._emit_block(rng.randint(*config.block_instrs))

    def _emit_loop(self, depth: int) -> None:
        rng = self.rng
        counter = _LOOP_REGS[depth]
        iters = rng.randint(*self.config.loop_iters)
        head = self.builder.fresh_label("loop")
        self.builder.emit(ins.li(counter, iters))
        self.builder.label(head)
        for _ in range(rng.randint(1, 2)):
            self._emit_segment(depth + 1)
        self.builder.emit(
            ins.subi(counter, counter, 1),
            ins.bne(counter, 0, head),
        )

    def _emit_diamond(self, depth: int) -> None:
        rng = self.rng
        else_label = self.builder.fresh_label("else")
        join_label = self.builder.fresh_label("join")
        self._emit_lcg_step()
        bit = rng.randrange(1, 4)
        self.builder.emit(
            ins.andi(_COND_REG, _LCG_REG, (1 << bit)),
            ins.beq(_COND_REG, 0, else_label),
        )
        self._emit_block(rng.randint(*self.config.block_instrs))
        self.builder.emit(ins.jmp(join_label))
        self.builder.label(else_label)
        self._emit_block(rng.randint(*self.config.block_instrs))
        self.builder.label(join_label)

    # -- functions ------------------------------------------------------

    def _emit_functions(self) -> None:
        self._function_labels: List[str] = []
        for index in range(self.config.functions):
            label = f"helper{index}"
            self._function_labels.append(label)

    def _emit_function_bodies(self) -> None:
        for label in self._function_labels:
            self.builder.label(label)
            self._emit_block(
                self.rng.randint(*self.config.function_instrs)
            )
            self.builder.emit(ins.ret())

    # -- top level ------------------------------------------------------

    def generate(self) -> Program:
        b = self.builder
        self._emit_functions()
        b.label("main")
        b.emit(
            ins.li(_LCG_REG, self.config.seed % 30000 + 7),
            ins.lui(_LCG_CONST_REG, _LCG_MULT >> 16),
            ins.ori(_LCG_CONST_REG, _LCG_CONST_REG, _LCG_MULT & 0xFFFF),
            ins.li(_ACC_REG, 0),
        )
        for scratch in _SCRATCH:
            b.emit(ins.li(scratch, scratch * 3 + 1))
        for _ in range(self.config.segments):
            self._emit_segment(0)
        b.emit(ins.halt())
        self._emit_function_bodies()
        return b.build()


def generate_program(config: GeneratorConfig) -> Program:
    """Generate a deterministic synthetic program from ``config``.

    The same config always yields the same program (seeded RNG), so
    experiments on synthetic workloads are reproducible.
    """
    return _Generator(config).generate()


def generate_sized_program(
    seed: int, target_bytes: int, **overrides
) -> Program:
    """Generate a program of roughly ``target_bytes`` of code.

    Scales the segment count until the target is met (within one
    iteration's granularity).  Useful for size-sweep experiments.
    """
    segments = max(2, target_bytes // 120)
    config = GeneratorConfig(seed=seed, segments=segments, **overrides)
    program = generate_program(config)
    while program.size_bytes < target_bytes:
        segments = int(segments * 1.5) + 1
        config = GeneratorConfig(seed=seed, segments=segments, **overrides)
        program = generate_program(config)
    return program
