"""Workloads: embedded benchmark kernels and synthetic program generators.

Importing this package registers every kernel in the suite registry.
"""

from .suite import (
    Workload,
    available_workloads,
    full_suite,
    get_workload,
    register_workload,
)

# Importing the kernel modules populates the registry.
from .generators import (
    GeneratorConfig,
    generate_program,
    generate_sized_program,
)
from .kernels import (  # noqa: F401  (registration side effect)
    coding,
    composite,
    control,
    graph,
    linalg,
    micro,
    sorting,
    strings,
)

__all__ = [
    "GeneratorConfig",
    "Workload",
    "generate_program",
    "generate_sized_program",
    "available_workloads",
    "full_suite",
    "get_workload",
    "register_workload",
]
