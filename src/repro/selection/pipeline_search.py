"""The ``pipeline-search`` assignment policy.

Layered pipelines (see :mod:`repro.compress.pipeline`) make the codec
space per unit much larger than the flat registry: every composition
of transform layers and entropy stage is a candidate.  This policy
explores that space per compression unit under the same machinery the
``knapsack`` policy uses:

1. **Floor** — each unit takes the smallest payload over {base codec,
   uncompressed, the first *N* pipelines of the curated candidate pool
   (:data:`~repro.compress.pipeline.CANDIDATE_PIPELINES`)}, ties
   broken by predicted decompression latency and then spec string, so
   the result is deterministic.
2. **Model-overhead pruning** — a shared-model pipeline used by only a
   few units can cost more in model bytes than its payloads save.
   Candidates whose total payload benefit (vs. the units' next-best
   choice) is smaller than their model overhead are dropped, worst
   first, until the selection is stable — the exact accounting
   :meth:`~repro.selection.assignment.AssignmentContext.image_size`
   charges.
3. **Hot upgrades** — the bytes the floor saved relative to the
   uniform base-codec image are spent keeping the hottest units
   uncompressed (value = predicted synchronous decompression cycles
   saved, weight = size increase), reusing the knapsack policy's
   greedy + DP refinement.  The mixed image therefore never exceeds
   the uniform one.

Spec forms: ``"pipeline-search"`` (whole pool) or
``"pipeline-search:3"`` (first 3 candidates).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..compress.codec import resolve_codec_spec
from ..compress.pipeline import CANDIDATE_PIPELINES
from .assignment import (
    ASSIGNMENTS,
    UNCOMPRESSED,
    AssignmentContext,
    AssignmentPolicy,
    UnitStats,
)
from .policies import KnapsackAssignment


@ASSIGNMENTS.register("pipeline-search")
class PipelineSearchAssignment(AssignmentPolicy):
    """Per-unit search over the curated pipeline composition pool."""

    def __init__(self, candidates: float = 0) -> None:
        pool = CANDIDATE_PIPELINES
        count = int(candidates)
        if count != candidates or count < 0 or count > len(pool):
            raise ValueError(
                f"candidates must be an integer in [0, {len(pool)}] "
                f"(0 = the whole pool), got {candidates}"
            )
        if count == 0:
            count = len(pool)
        self.candidate_specs: Tuple[str, ...] = tuple(
            resolve_codec_spec(spec) for spec in pool[:count]
        )

    # -- selection ------------------------------------------------------

    def assign(self, context: AssignmentContext) -> Dict[int, str]:
        base = context.base_codec
        options: List[str] = []
        for name in (base, UNCOMPRESSED, *self.candidate_specs):
            if name not in options:
                options.append(name)

        def payload_size(unit: UnitStats, name: str) -> int:
            if name == UNCOMPRESSED:
                return unit.size_bytes
            return context.unit_payload_size(unit.unit_id, name)

        def latency(name: str, nbytes: int) -> int:
            if name == UNCOMPRESSED:
                return 0
            return context.decompress_latency(name, nbytes)

        def best_for(unit: UnitStats, allowed: Sequence[str]) -> str:
            return min(
                allowed,
                key=lambda name: (
                    payload_size(unit, name),
                    latency(name, unit.size_bytes),
                    name,
                ),
            )

        allowed = list(options)
        out = {
            unit.unit_id: best_for(unit, allowed)
            for unit in context.units
        }
        out = self._prune_models(context, allowed, out, best_for)
        # Safeguard: the floor must never lose to the plain
        # base-vs-uncompressed floor (the knapsack policy's floor),
        # whatever the greedy pruning above settled on — this keeps
        # the mixed image provably within the uniform budget.
        base_floor = {
            unit.unit_id: best_for(unit, (base, UNCOMPRESSED))
            for unit in context.units
        }
        if context.image_size(out) > context.image_size(base_floor):
            out = base_floor
        return self._upgrade_hot(context, out, payload_size, latency)

    @staticmethod
    def _prune_models(context, allowed, out, best_for):
        """Drop candidates whose model overhead exceeds their benefit.

        Uses the exact whole-image accounting
        (:meth:`AssignmentContext.image_size`, payloads plus one model
        per distinct codec): each round tries removing one currently
        used codec, re-floors the remaining pool, and keeps the single
        removal that shrinks the image most (ties broken by name).
        Terminates because the pool only shrinks.
        """
        def refloor(pool):
            return {
                unit.unit_id: best_for(unit, pool)
                for unit in context.units
            }

        while True:
            current_size = context.image_size(out)
            best: "Tuple[int, str, dict, list] | None" = None
            for name in sorted(set(out.values())):
                if name == UNCOMPRESSED:
                    continue
                rest = [n for n in allowed if n != name]
                trial = refloor(rest)
                size = context.image_size(trial)
                if size < current_size and (
                    best is None or (size, name) < (best[0], best[1])
                ):
                    best = (size, name, trial, rest)
            if best is None:
                return out
            _, _, out, allowed = best

    @staticmethod
    def _upgrade_hot(context, out, payload_size, latency):
        """Spend spare bytes (vs. the uniform base image) keeping the
        hottest units uncompressed — the knapsack step."""
        budget = context.uniform_image_size
        spare = budget - context.image_size(out)
        if spare <= 0:
            return out
        candidates: List[Tuple[int, int, int]] = []
        for unit in context.units:
            current = out[unit.unit_id]
            if current == UNCOMPRESSED or unit.hotness <= 0:
                continue
            value = unit.hotness * latency(current, unit.size_bytes)
            weight = unit.size_bytes - payload_size(unit, current)
            if value > 0:
                candidates.append(
                    (value, max(weight, 0), unit.unit_id)
                )
        if not candidates:
            return out
        greedy = KnapsackAssignment._greedy(candidates, spare)
        refined = KnapsackAssignment._dp_refine(candidates, spare)
        chosen = refined if refined is not None and (
            sum(v for v, _, _ in refined)
            > sum(v for v, _, _ in greedy)
        ) else greedy
        for _, _, unit_id in chosen:
            out[unit_id] = UNCOMPRESSED
        return out
