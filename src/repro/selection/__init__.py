"""``repro.selection`` — profile-guided per-unit codec assignment.

Maps each compression unit to its own codec (including ``"null"``,
i.e. uncompressed) so hot code stays cheap to enter while cold code
compresses aggressively — the paper's selectivity trade-off made
explicit and sweepable via ``SimulationConfig.assignment``.

See :mod:`repro.selection.assignment` for the policy interface and
:mod:`repro.selection.policies` for the built-ins (``uniform``,
``hotness-threshold``, ``knapsack``); ``docs/strategies.md`` maps them
back to the paper.  :mod:`repro.selection.pipeline_search` extends the
family over the layered-pipeline composition space
(``pipeline-search[:candidates]``, see ``docs/pipelines.md``).
"""

from .assignment import (
    ASSIGNMENTS,
    UNCOMPRESSED,
    AssignmentContext,
    AssignmentError,
    AssignmentPolicy,
    CodecAssignment,
    UnitStats,
    assignment_artifacts,
    available_assignments,
    build_assignment,
    make_policy,
    parse_assignment,
    unit_map,
    validate_assignment,
)
from .pipeline_search import PipelineSearchAssignment
from .policies import (
    HotnessThresholdAssignment,
    KnapsackAssignment,
    UniformAssignment,
)

__all__ = [
    "ASSIGNMENTS",
    "UNCOMPRESSED",
    "AssignmentContext",
    "AssignmentError",
    "AssignmentPolicy",
    "CodecAssignment",
    "HotnessThresholdAssignment",
    "KnapsackAssignment",
    "PipelineSearchAssignment",
    "UniformAssignment",
    "UnitStats",
    "assignment_artifacts",
    "available_assignments",
    "build_assignment",
    "make_policy",
    "parse_assignment",
    "unit_map",
    "validate_assignment",
]
