"""The built-in codec-assignment policies.

Three policies ship with the registry:

* ``uniform`` — every unit gets the configured base codec; the
  byte-identical default (the residency layer short-circuits it onto
  the exact pre-selection code path).
* ``hotness-threshold`` — the paper's selectivity argument in its
  bluntest form: the hottest units (top fraction by profiled or
  estimated execution count) stay uncompressed (or any cheap codec,
  e.g. ``rle``) so re-entering them never pays decompression latency;
  every other unit takes whichever of {base codec, uncompressed} is
  smaller (a codec that *inflates* a unit buys latency with no space —
  strictly worse than storing the bytes raw).
* ``knapsack`` — selective compression under an explicit size budget:
  start from the per-unit minimum-size floor, then spend the bytes the
  floor saved (relative to ``budget_fraction`` x the uniform image) on
  keeping the most valuable units uncompressed.  Value is predicted
  decompression cycles saved (hotness x base-codec latency), weight is
  the size increase; a greedy density pass is refined by an exact 0/1
  knapsack DP over the top candidates.  With the default budget
  fraction of 1.0 the mixed image is never larger than the uniform
  one — the "equal or smaller footprint, fewer stalls" point E14
  measures.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from ..compress.codec import available_codecs, is_known_codec
from .assignment import (
    ASSIGNMENTS,
    UNCOMPRESSED,
    AssignmentContext,
    AssignmentPolicy,
)

#: The DP refinement considers at most this many greedy candidates and
#: this much spare capacity; beyond that the greedy solution stands
#: (the refinement is a polish, not the workhorse).
_DP_MAX_ITEMS = 32
_DP_MAX_CAPACITY = 4096


@ASSIGNMENTS.register("uniform")
class UniformAssignment(AssignmentPolicy):
    """Every unit gets the base codec — today's single-codec behaviour."""

    def assign(self, context: AssignmentContext) -> Dict[int, str]:
        return {
            unit.unit_id: context.base_codec for unit in context.units
        }


@ASSIGNMENTS.register("hotness-threshold")
class HotnessThresholdAssignment(AssignmentPolicy):
    """Top-``hot_fraction`` units by hotness stay cheap to enter.

    ``hot_codec`` defaults to ``"null"`` (uncompressed); ``"rle"`` is
    the other sensible choice (near-zero latency, some compression).
    Cold units take the smaller of {base codec, uncompressed} so an
    inflating payload is never stored.
    """

    def __init__(
        self, hot_fraction: float = 0.25, hot_codec: str = UNCOMPRESSED
    ) -> None:
        if not 0.0 < float(hot_fraction) <= 1.0:
            raise ValueError(
                f"hot_fraction must be in (0, 1], got {hot_fraction}"
            )
        # Validate the codec name here so a typo fails at spec
        # validation (clean argparse/ConfigError), not mid-run after
        # the profiling pass.  Pipeline specs are accepted too, though
        # colon-parameterised ones cannot travel inside an assignment
        # spec (the spec grammar claims colons first).
        if not is_known_codec(str(hot_codec)):
            raise ValueError(
                f"unknown hot_codec '{hot_codec}'; "
                f"available: {available_codecs()} or a pipeline spec"
            )
        self.hot_fraction = float(hot_fraction)
        self.hot_codec = str(hot_codec)

    def assign(self, context: AssignmentContext) -> Dict[int, str]:
        out: Dict[int, str] = {}
        for unit in context.units:
            base_size = context.unit_payload_size(
                unit.unit_id, context.base_codec
            )
            out[unit.unit_id] = (
                UNCOMPRESSED if unit.size_bytes <= base_size
                else context.base_codec
            )
        ranked = sorted(
            (u for u in context.units if u.hotness > 0),
            key=lambda u: (-u.hotness, u.unit_id),
        )
        hot_count = max(
            1, round(self.hot_fraction * len(context.units))
        ) if ranked else 0
        for unit in ranked[:hot_count]:
            out[unit.unit_id] = self.hot_codec
        return out


@ASSIGNMENTS.register("knapsack")
class KnapsackAssignment(AssignmentPolicy):
    """Maximise predicted cycles saved under a compressed-size budget.

    The budget is ``budget_fraction`` x the uniform (all-base-codec)
    image size; 1.0 guarantees the mixed image never exceeds uniform.
    """

    def __init__(self, budget_fraction: float = 1.0) -> None:
        value = float(budget_fraction)
        if not math.isfinite(value) or value <= 0.0:
            raise ValueError(
                f"budget_fraction must be a finite positive number, "
                f"got {budget_fraction}"
            )
        self.budget_fraction = value

    def assign(self, context: AssignmentContext) -> Dict[int, str]:
        base = context.base_codec
        # Floor: the smallest-image assignment (base vs uncompressed
        # per unit; ties go to uncompressed — same bytes, no latency).
        out: Dict[int, str] = {}
        for unit in context.units:
            base_size = context.unit_payload_size(unit.unit_id, base)
            out[unit.unit_id] = (
                UNCOMPRESSED if unit.size_bytes <= base_size else base
            )
        budget = int(
            round(self.budget_fraction * context.uniform_image_size)
        )
        spare = budget - context.image_size(out)
        if spare <= 0:
            return out
        # Upgrade candidates: units still on the base codec.  Value is
        # the predicted synchronous decompression cycles saved over the
        # run; weight is the image bytes the upgrade costs.
        candidates: List[Tuple[int, int, int]] = []  # (value, weight, unit)
        for unit in context.units:
            if out[unit.unit_id] != base or unit.hotness <= 0:
                continue
            value = unit.hotness * context.decompress_latency(
                base, unit.size_bytes
            )
            weight = unit.size_bytes - context.unit_payload_size(
                unit.unit_id, base
            )
            if value > 0:
                candidates.append((value, max(weight, 0), unit.unit_id))
        if not candidates:
            return out
        greedy = self._greedy(candidates, spare)
        refined = self._dp_refine(candidates, spare)
        chosen = refined if refined is not None and (
            sum(v for v, _, _ in refined)
            > sum(v for v, _, _ in greedy)
        ) else greedy
        for _, _, unit_id in chosen:
            out[unit_id] = UNCOMPRESSED
        return out

    @staticmethod
    def _greedy(
        candidates: List[Tuple[int, int, int]], spare: int
    ) -> List[Tuple[int, int, int]]:
        """Density-ordered greedy selection within ``spare`` bytes."""
        ranked = sorted(
            candidates,
            key=lambda c: (-(c[0] / (c[1] or 1)), c[2]),
        )
        taken: List[Tuple[int, int, int]] = []
        spent = 0
        for value, weight, unit_id in ranked:
            if spent + weight <= spare:
                spent += weight
                taken.append((value, weight, unit_id))
        return taken

    @staticmethod
    def _dp_refine(
        candidates: List[Tuple[int, int, int]], spare: int
    ) -> "List[Tuple[int, int, int]] | None":
        """Exact 0/1 knapsack over the densest candidates.

        Returns None when the instance is too large to solve exactly
        (the greedy answer stands).
        """
        if spare > _DP_MAX_CAPACITY:
            return None
        ranked = sorted(
            candidates,
            key=lambda c: (-(c[0] / (c[1] or 1)), c[2]),
        )[:_DP_MAX_ITEMS]
        # best[w] = (total value, chosen tuple-list) using <= w bytes.
        best: List[Tuple[int, Tuple[Tuple[int, int, int], ...]]] = [
            (0, ())
        ] * (spare + 1)
        for item in ranked:
            value, weight, _ = item
            for w in range(spare, weight - 1, -1):
                take_value = best[w - weight][0] + value
                if take_value > best[w][0]:
                    best[w] = (
                        take_value, best[w - weight][1] + (item,)
                    )
        return list(best[spare][1])
