"""Per-unit codec assignment: the selective-compression layer.

The paper's central trade-off is *selectivity*: frequently executed code
should stay cheap to enter while cold code compresses aggressively
(Sections 3-4 build the k-edge and pre-decompression machinery around
exactly that hot/cold axis).  A single global codec cannot express it —
every unit pays the same decompression latency however hot it is.  This
module maps each compression unit to its own codec, including the
``"null"`` codec (stored bytes == code bytes, zero decompression
latency), which *is* the "keep this unit uncompressed" choice.

The pieces:

* :class:`AssignmentContext` — what a policy may look at: unit geometry
  (respecting the configured granularity), per-unit hotness (offline
  edge profile when available, a static loop-nesting estimate
  otherwise), exact per-unit payload sizes under any candidate codec
  (served from the shared compression-artifact memo, so sweeps never
  recompress), and the codec cost models for predicting cycles saved.
* :class:`AssignmentPolicy` subclasses in the :data:`ASSIGNMENTS`
  registry (part of the unified component catalog; ``repro list``
  enumerates them).  Policy specs are strings — ``"knapsack"`` or
  parameterised ``"knapsack:0.9"`` — so they travel unchanged through
  :class:`~repro.core.config.SimulationConfig`, JSON spec files, CSV
  columns, and store fingerprints.
* :class:`CodecAssignment` — the frozen result: unit -> codec name,
  flattened to block -> codec name for the image layer, with a
  canonical digest used to memoize mixed-codec artifacts.
* :func:`build_assignment` / :func:`assignment_artifacts` — resolve a
  config into an assignment and the matching (memoized) mixed-codec
  :class:`~repro.memory.image.CompressionArtifacts`.

``assignment="uniform"`` is special-cased by the residency layer to the
exact pre-selection code path, so default results stay byte-identical.
"""

from __future__ import annotations

import abc
import hashlib
import json
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Mapping,
    Optional,
    Tuple,
)

from ..cfg.builder import ProgramCFG
from ..cfg.loops import natural_loops
from ..cfg.profile import EdgeProfile
from ..compress.codec import CodecError, get_codec, resolve_codec_spec
from ..memory.image import (
    CompressionArtifacts,
    artifact_cache,
    compression_artifacts,
)
from ..registry import Registry

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a cycle
    from ..core.config import SimulationConfig

#: The codec name that means "store this unit uncompressed": payload
#: bytes equal code bytes and decompression costs zero cycles.
UNCOMPRESSED = "null"

#: Assignment policies, in the unified component catalog.
ASSIGNMENTS = Registry("assignments", item="assignment policy")

#: Static hotness fallback: a block nested in ``d`` natural loops is
#: weighted ``_LOOP_WEIGHT ** d`` when no edge profile is available.
_LOOP_WEIGHT = 8
_LOOP_DEPTH_CAP = 6


class AssignmentError(ValueError):
    """Raised for malformed assignment specs or invalid policy output."""


def unit_map(
    cfg: ProgramCFG, granularity: str
) -> Tuple[Dict[int, int], Dict[int, Tuple[int, ...]]]:
    """The (block -> unit, unit -> blocks) maps for a granularity.

    The single source of unit geometry, shared by the residency
    subsystem and the assignment context so the two can never disagree
    about what a "compression unit" is.
    """
    if granularity == "function":
        unit_of = dict(cfg.function_of)
        unit_blocks = {
            unit: tuple(sorted(blocks))
            for unit, blocks in cfg.functions.items()
        }
    else:
        unit_of = {
            block.block_id: block.block_id for block in cfg.blocks
        }
        unit_blocks = {
            block.block_id: (block.block_id,) for block in cfg.blocks
        }
    return unit_of, unit_blocks


# ----------------------------------------------------------------------
# Spec parsing
# ----------------------------------------------------------------------


def parse_assignment(spec: str) -> Tuple[str, Tuple[object, ...]]:
    """Split an assignment spec into (policy name, parameters).

    Specs are colon-separated: ``"knapsack"``, ``"knapsack:0.9"``,
    ``"hotness-threshold:0.25:rle"``.  Numeric parameters become
    floats; everything else passes through as a string (codec names).
    """
    if not isinstance(spec, str) or not spec:
        raise AssignmentError(
            f"assignment spec must be a non-empty string, got {spec!r}"
        )
    name, _, rest = spec.partition(":")
    if name not in ASSIGNMENTS:
        raise AssignmentError(
            f"unknown assignment policy '{name}'; "
            f"available: {ASSIGNMENTS.names()}"
        )
    params: List[object] = []
    if rest:
        for token in rest.split(":"):
            try:
                params.append(float(token))
            except ValueError:
                params.append(token)
    return name, tuple(params)


def make_policy(spec: str) -> "AssignmentPolicy":
    """Instantiate the policy an assignment spec names.

    Raises :class:`AssignmentError` for unknown policies or parameters
    the policy's constructor rejects.
    """
    name, params = parse_assignment(spec)
    try:
        policy = ASSIGNMENTS.create(name, *params)
    except (TypeError, ValueError) as exc:
        raise AssignmentError(
            f"invalid parameters for assignment policy '{name}' "
            f"(spec {spec!r}): {exc}"
        ) from None
    policy.spec = spec
    return policy


def validate_assignment(spec: str) -> None:
    """Raise :class:`AssignmentError` unless ``spec`` is well-formed."""
    make_policy(spec)


def available_assignments() -> List[str]:
    """Registered assignment policy names (registration order)."""
    return ASSIGNMENTS.names(sort=False)


# ----------------------------------------------------------------------
# The context policies see
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class UnitStats:
    """One compression unit as a policy sees it."""

    unit_id: int
    blocks: Tuple[int, ...]
    size_bytes: int
    hotness: int


class AssignmentContext:
    """Everything an assignment policy may consult.

    Payload sizes come from the shared per-(CFG, codec) artifact memo,
    so asking for a codec's sizes trains/compresses at most once per
    process — and not at all when a sweep already built them.
    """

    def __init__(
        self,
        cfg: ProgramCFG,
        base_codec: str,
        granularity: str = "block",
        profile: Optional[EdgeProfile] = None,
    ) -> None:
        self.cfg = cfg
        self.base_codec = base_codec
        self.granularity = granularity
        _, self._unit_blocks = unit_map(cfg, granularity)
        hotness = self._hotness_by_block(profile)
        self.units: List[UnitStats] = [
            UnitStats(
                unit_id=unit_id,
                blocks=blocks,
                size_bytes=sum(
                    cfg.block(b).size_bytes for b in blocks
                ),
                hotness=sum(hotness.get(b, 0) for b in blocks),
            )
            for unit_id, blocks in sorted(self._unit_blocks.items())
        ]
        self.profiled = profile is not None and any(
            profile.block_counts.values()
        )
        self._payload_cache: Dict[str, List[int]] = {}

    def _hotness_by_block(
        self, profile: Optional[EdgeProfile]
    ) -> Dict[int, int]:
        """Per-block execution weight: profiled counts when available,
        otherwise a static loop-nesting estimate (deeper = hotter)."""
        if profile is not None and any(profile.block_counts.values()):
            return {
                block.block_id: profile.block_count(block.block_id)
                for block in self.cfg.blocks
            }
        depth: Dict[int, int] = {
            block.block_id: 0 for block in self.cfg.blocks
        }
        for loop in natural_loops(self.cfg):
            for block_id in loop.body:
                depth[block_id] = min(
                    depth[block_id] + 1, _LOOP_DEPTH_CAP
                )
        return {
            block_id: _LOOP_WEIGHT ** d if d else 0
            for block_id, d in depth.items()
        }

    # -- sizes and costs ----------------------------------------------

    def _payload_sizes(self, codec_name: str) -> List[int]:
        sizes = self._payload_cache.get(codec_name)
        if sizes is None:
            artifacts = compression_artifacts(self.cfg, codec_name)
            sizes = [len(p) for p in artifacts.payloads]
            self._payload_cache[codec_name] = sizes
        return sizes

    def unit_payload_size(self, unit_id: int, codec_name: str) -> int:
        """Compressed bytes of ``unit_id`` under ``codec_name``."""
        sizes = self._payload_sizes(codec_name)
        return sum(sizes[b] for b in self._unit_blocks[unit_id])

    def model_overhead(self, codec_name: str) -> int:
        """The codec's shared-model bytes, charged once per image."""
        artifacts = compression_artifacts(self.cfg, codec_name)
        return int(getattr(artifacts.codec, "model_overhead_bytes", 0))

    def decompress_latency(self, codec_name: str, nbytes: int) -> int:
        """Modelled cycles to decompress ``nbytes`` with the codec."""
        return get_codec(codec_name).costs.decompress_latency(nbytes)

    def image_size(self, unit_codecs: Mapping[int, str]) -> int:
        """Exact compressed-image bytes of a candidate assignment:
        payloads plus one model overhead per distinct codec used."""
        total = sum(
            self.unit_payload_size(unit.unit_id,
                                   unit_codecs[unit.unit_id])
            for unit in self.units
        )
        for codec_name in sorted(set(unit_codecs.values())):
            total += self.model_overhead(codec_name)
        return total

    @property
    def uniform_image_size(self) -> int:
        """The all-base-codec image size (the budget baseline)."""
        return self.image_size(
            {unit.unit_id: self.base_codec for unit in self.units}
        )


# ----------------------------------------------------------------------
# Policy interface and the frozen result
# ----------------------------------------------------------------------


class AssignmentPolicy(abc.ABC):
    """Maps compression units to codec names.

    Subclasses register in :data:`ASSIGNMENTS` and implement
    :meth:`assign`.  Constructors take the (numeric or string)
    parameters parsed from the policy spec and must validate them.
    """

    #: Registry key; subclasses override via the register decorator.
    name: str = "abstract"

    #: The full spec string this instance was built from (set by
    #: :func:`make_policy`).
    spec: str = ""

    @abc.abstractmethod
    def assign(self, context: AssignmentContext) -> Dict[int, str]:
        """Return a complete unit-id -> codec-name mapping."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(spec={self.spec or self.name!r})"


@dataclass(frozen=True)
class CodecAssignment:
    """A resolved per-unit codec assignment.

    ``unit_codecs`` is what the policy decided; ``block_codecs`` is the
    flattened per-block view the image layer consumes.  ``digest`` is a
    canonical content hash, used to memoize the mixed-codec artifacts
    exactly like a codec name memoizes uniform artifacts.
    """

    policy: str
    base_codec: str
    unit_codecs: Mapping[int, str]
    block_codecs: Mapping[int, str]

    def codec_names(self) -> Tuple[str, ...]:
        """Distinct codec names in use, sorted."""
        return tuple(sorted(set(self.unit_codecs.values())))

    def summary(self) -> Dict[str, int]:
        """Unit count per codec name (report-friendly)."""
        out: Dict[str, int] = {}
        for codec_name in self.unit_codecs.values():
            out[codec_name] = out.get(codec_name, 0) + 1
        return dict(sorted(out.items()))

    @property
    def digest(self) -> str:
        """Canonical content hash of the block -> codec mapping."""
        payload = json.dumps(
            {
                "base": self.base_codec,
                "blocks": {
                    str(b): c for b, c in self.block_codecs.items()
                },
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def build_assignment(
    cfg: ProgramCFG, config: "SimulationConfig"
) -> CodecAssignment:
    """Resolve ``config.assignment`` into a :class:`CodecAssignment`.

    The policy sees the configured granularity's unit geometry and the
    config's offline edge profile (static loop-nesting hotness when the
    profile is absent or empty).  The returned mapping is validated:
    every unit assigned, every codec name registered.
    """
    policy = make_policy(config.assignment)
    context = AssignmentContext(
        cfg,
        base_codec=config.codec,
        granularity=config.granularity,
        profile=config.profile,
    )
    unit_codecs = dict(policy.assign(context))
    _, unit_blocks = unit_map(cfg, config.granularity)
    for unit_id in unit_blocks:
        codec_name = unit_codecs.get(unit_id)
        if codec_name is None:
            raise AssignmentError(
                f"assignment policy '{config.assignment}' left unit "
                f"{unit_id} unassigned"
            )
        try:
            # Flat names pass through; pipeline specs canonicalize so
            # the digest (and the artifact memo keys) never see two
            # spellings of one pipeline.
            unit_codecs[unit_id] = resolve_codec_spec(codec_name)
        except CodecError:
            raise AssignmentError(
                f"assignment policy '{config.assignment}' chose "
                f"unknown codec '{codec_name}' for unit {unit_id}"
            ) from None
    block_codecs = {
        block_id: unit_codecs[unit_id]
        for unit_id, blocks in unit_blocks.items()
        for block_id in blocks
    }
    return CodecAssignment(
        policy=config.assignment,
        base_codec=config.codec,
        unit_codecs=unit_codecs,
        block_codecs=block_codecs,
    )


def assignment_artifacts(
    cfg: ProgramCFG, assignment: CodecAssignment
) -> CompressionArtifacts:
    """Mixed-codec compression artifacts for an assignment (memoized).

    Per-codec payloads come from the shared
    :func:`~repro.memory.image.compression_artifacts` memo, so distinct
    assignments over the same program reuse each codec's trained model
    and payload list; the combined mixed view itself is memoized in the
    same LRU under a synthetic ``assignment:<digest>`` key, giving
    sweep cells that share an assignment the same single-build
    guarantee uniform cells have.
    """
    cache = artifact_cache()
    key = f"assignment:{assignment.digest}"
    cached = cache.get(cfg, key)
    if cached is not None:
        return cached
    per_codec = {
        name: compression_artifacts(cfg, name)
        for name in assignment.codec_names()
    }
    if assignment.base_codec in per_codec:
        base = per_codec[assignment.base_codec].codec
    else:  # every unit moved off the base codec
        base = get_codec(assignment.base_codec)
    some = next(iter(per_codec.values()))
    payloads = [
        per_codec[assignment.block_codecs[block.block_id]]
        .payloads[block.block_id]
        for block in cfg.blocks
    ]
    codec_map = {
        block.block_id: per_codec[
            assignment.block_codecs[block.block_id]
        ].codec
        for block in cfg.blocks
    }
    artifacts = CompressionArtifacts(
        codec=base,
        block_data=some.block_data,
        payloads=payloads,
        codec_map=codec_map,
    )
    cache.put(cfg, key, artifacts)
    return artifacts
