"""Bit-level I/O used by the entropy and dictionary coders.

Bits are written MSB-first within each byte, which is the conventional
layout for canonical Huffman streams in embedded decompressors (it allows
table-driven decoding by peeking at the top bits).

Both directions are *batched*: the writer accumulates whole fields into a
small integer and drains completed bytes immediately (so a 15-bit code is
two integer operations and at most two byte appends, never 15 single-bit
round trips), and the reader extracts multi-bit fields straight out of
the underlying byte string with one ``int.from_bytes`` over the covered
slice.  The stream format is identical to the original bit-at-a-time
implementation (preserved in :mod:`repro.compress.reference`); the
property tests assert byte equality.
"""

from __future__ import annotations


class BitIOError(ValueError):
    """Raised on malformed bit streams (overruns, bad field widths)."""


class BitWriter:
    """Accumulates bits MSB-first and renders them as bytes.

    Internally ``_acc`` holds the sub-byte remainder (always fewer than 8
    bits); completed bytes are drained into ``_buffer`` on every write, so
    the accumulator stays a machine-word-sized int no matter how much is
    written.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._acc = 0
        self._filled = 0  # bits currently in _acc (0..7)
        self._bit_count = 0

    def write_bit(self, bit: int) -> None:
        """Append a single bit (0 or 1)."""
        if bit not in (0, 1):
            raise BitIOError(f"bit must be 0 or 1, got {bit}")
        acc = (self._acc << 1) | bit
        filled = self._filled + 1
        self._bit_count += 1
        if filled == 8:
            self._buffer.append(acc)
            acc = 0
            filled = 0
        self._acc = acc
        self._filled = filled

    def write_bits(self, value: int, width: int) -> None:
        """Append ``width`` bits of ``value`` (most significant first)."""
        if width < 0:
            raise BitIOError(f"width must be non-negative, got {width}")
        if value < 0 or value >> width:
            raise BitIOError(
                f"value {value} does not fit in {width} bits"
            )
        acc = (self._acc << width) | value
        filled = self._filled + width
        self._bit_count += width
        if filled >= 8:
            # Drain every completed byte in one ``to_bytes`` instead of
            # a byte-at-a-time loop — for wide fields (the bulk run
            # path feeds kilobit accumulators through here) this is the
            # difference between one big-int operation and dozens.
            whole = filled >> 3
            filled -= whole << 3
            self._buffer += (acc >> filled).to_bytes(whole, "big")
            acc &= (1 << filled) - 1
        self._acc = acc
        self._filled = filled

    def write_run(self, values, width: int) -> None:
        """Append each of ``values`` as a ``width``-bit field (bulk path).

        Byte-identical to calling :meth:`write_bits` per value; the
        fields are packed word-at-a-time into bounded big-int chunks so
        a thousand-code run costs a handful of integer operations
        instead of a thousand accumulator round trips.
        """
        if width < 0:
            raise BitIOError(f"width must be non-negative, got {width}")
        if width == 0:
            for value in values:
                if value:
                    raise BitIOError(
                        f"value {value} does not fit in 0 bits"
                    )
            return
        limit = 1 << width
        # Bound chunk accumulators to ~2 kilobits: big-int shifts are
        # cheap at that size and the cost stays linear in total bits.
        chunk = max(1, 2048 // width)
        for start in range(0, len(values), chunk):
            part = values[start:start + chunk]
            acc = 0
            for value in part:
                if value < 0 or value >= limit:
                    raise BitIOError(
                        f"value {value} does not fit in {width} bits"
                    )
                acc = (acc << width) | value
            self.write_bits(acc, width * len(part))

    def write_bytes(self, data: bytes) -> None:
        """Append whole bytes (bulk path; fast when byte-aligned)."""
        if self._filled == 0:
            self._buffer += data
            self._bit_count += 8 * len(data)
            return
        # Unaligned: feed bounded chunks through write_bits so the
        # accumulator stays small (one giant int would drain byte by
        # byte in quadratic time).
        for start in range(0, len(data), 256):
            chunk = data[start : start + 256]
            self.write_bits(int.from_bytes(chunk, "big"), 8 * len(chunk))

    def write_unary(self, value: int) -> None:
        """Append ``value`` in unary: ``value`` ones then a zero."""
        if value < 0:
            raise BitIOError(f"unary value must be non-negative, got {value}")
        # value ones followed by one zero, as a single (value+1)-wide field.
        self.write_bits(((1 << value) - 1) << 1, value + 1)

    def write_gamma(self, value: int) -> None:
        """Append Elias-gamma code of ``value`` (value >= 1)."""
        if value < 1:
            raise BitIOError(f"gamma value must be >= 1, got {value}")
        width = value.bit_length()
        self.write_unary(width - 1)
        self.write_bits(value - (1 << (width - 1)), width - 1)

    @property
    def bit_length(self) -> int:
        """Total number of bits written so far."""
        return self._bit_count

    def getvalue(self) -> bytes:
        """Return the bit stream padded with zero bits to a whole byte."""
        if self._filled == 0:
            return bytes(self._buffer)
        tail = self._acc << (8 - self._filled)
        return bytes(self._buffer) + bytes((tail,))


class BitReader:
    """Reads bits MSB-first from a byte string."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._position = 0  # bit position
        self._total_bits = len(data) * 8

    @property
    def bits_remaining(self) -> int:
        """Number of unread bits (including any padding)."""
        return self._total_bits - self._position

    @property
    def bit_position(self) -> int:
        """Current absolute bit offset."""
        return self._position

    def read_bit(self) -> int:
        """Read one bit; raises :class:`BitIOError` past the end."""
        position = self._position
        if position >= self._total_bits:
            raise BitIOError("bit stream exhausted")
        byte = self._data[position >> 3]
        self._position = position + 1
        return (byte >> (7 - (position & 7))) & 1

    def read_bits(self, width: int) -> int:
        """Read ``width`` bits as an unsigned integer."""
        if width < 0:
            raise BitIOError(f"width must be non-negative, got {width}")
        position = self._position
        end = position + width
        if end > self._total_bits:
            raise BitIOError("bit stream exhausted")
        first = position >> 3
        last = (end + 7) >> 3
        chunk = int.from_bytes(self._data[first:last], "big")
        self._position = end
        return (chunk >> ((last << 3) - end)) & ((1 << width) - 1)

    def read_run(self, width: int, count: int):
        """Read ``count`` consecutive ``width``-bit fields (bulk path).

        Returns a list of unsigned integers, identical to ``count``
        :meth:`read_bits` calls; whole chunks of the underlying bytes
        are converted with one ``int.from_bytes`` each and the fields
        sliced out of the big int, so per-field cost is a shift and a
        mask.  Raises :class:`BitIOError` (without consuming anything)
        when the stream holds fewer than ``width * count`` bits.
        """
        if width < 0:
            raise BitIOError(f"width must be non-negative, got {width}")
        if count < 0:
            raise BitIOError(f"count must be non-negative, got {count}")
        position = self._position
        end = position + width * count
        if end > self._total_bits:
            raise BitIOError("bit stream exhausted")
        if width == 0:
            return [0] * count
        out = []
        append = out.append
        mask = (1 << width) - 1
        data = self._data
        step = max(1, 2048 // width)
        for start in range(0, count, step):
            fields = min(step, count - start)
            stop = position + fields * width
            first = position >> 3
            last = (stop + 7) >> 3
            big = int.from_bytes(data[first:last], "big") \
                >> ((last << 3) - stop)
            for index in range(fields - 1, -1, -1):
                append((big >> (index * width)) & mask)
            position = stop
        self._position = end
        return out

    def peek_bits(self, width: int) -> int:
        """Return the next ``width`` bits without consuming them.

        Bits past the end of the stream read as zero (the writer pads the
        final byte with zeros, so this matches the on-disk layout); callers
        that care about truncation must bound their advance by
        :attr:`bits_remaining`.
        """
        position = self._position
        end = position + width
        total = self._total_bits
        pad = 0
        if end > total:
            pad = end - total
            end = total
        first = position >> 3
        last = (end + 7) >> 3
        chunk = int.from_bytes(self._data[first:last], "big")
        value = (chunk >> ((last << 3) - end)) & ((1 << (width - pad)) - 1)
        return value << pad

    def skip_bits(self, width: int) -> None:
        """Advance the read position by ``width`` bits."""
        if width < 0:
            raise BitIOError(f"width must be non-negative, got {width}")
        if self._position + width > self._total_bits:
            raise BitIOError("bit stream exhausted")
        self._position += width

    def read_bytes(self, count: int) -> bytes:
        """Read ``count`` whole bytes (bulk path; fast when aligned)."""
        position = self._position
        if position & 7 == 0:
            start = position >> 3
            if position + 8 * count > self._total_bits:
                raise BitIOError("bit stream exhausted")
            self._position = position + 8 * count
            return bytes(self._data[start : start + count])
        return self.read_bits(8 * count).to_bytes(count, "big")

    def read_unary(self) -> int:
        """Read a unary-coded value (count of ones before the zero)."""
        count = 0
        while self.read_bit():
            count += 1
        return count

    def read_gamma(self) -> int:
        """Read an Elias-gamma coded value."""
        width = self.read_unary() + 1
        if width == 1:
            return 1
        return (1 << (width - 1)) | self.read_bits(width - 1)
