"""Bit-level I/O used by the entropy and dictionary coders.

Bits are written MSB-first within each byte, which is the conventional
layout for canonical Huffman streams in embedded decompressors (it allows
table-driven decoding by peeking at the top bits).
"""

from __future__ import annotations

from typing import Iterable, List


class BitIOError(ValueError):
    """Raised on malformed bit streams (overruns, bad field widths)."""


class BitWriter:
    """Accumulates bits MSB-first and renders them as bytes."""

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._current = 0
        self._filled = 0
        self._bit_count = 0

    def write_bit(self, bit: int) -> None:
        """Append a single bit (0 or 1)."""
        if bit not in (0, 1):
            raise BitIOError(f"bit must be 0 or 1, got {bit}")
        self._current = (self._current << 1) | bit
        self._filled += 1
        self._bit_count += 1
        if self._filled == 8:
            self._buffer.append(self._current)
            self._current = 0
            self._filled = 0

    def write_bits(self, value: int, width: int) -> None:
        """Append ``width`` bits of ``value`` (most significant first)."""
        if width < 0:
            raise BitIOError(f"width must be non-negative, got {width}")
        if value < 0 or (width < 64 and value >= (1 << width)):
            raise BitIOError(
                f"value {value} does not fit in {width} bits"
            )
        for position in range(width - 1, -1, -1):
            self.write_bit((value >> position) & 1)

    def write_unary(self, value: int) -> None:
        """Append ``value`` in unary: ``value`` ones then a zero."""
        if value < 0:
            raise BitIOError(f"unary value must be non-negative, got {value}")
        for _ in range(value):
            self.write_bit(1)
        self.write_bit(0)

    def write_gamma(self, value: int) -> None:
        """Append Elias-gamma code of ``value`` (value >= 1)."""
        if value < 1:
            raise BitIOError(f"gamma value must be >= 1, got {value}")
        width = value.bit_length()
        self.write_unary(width - 1)
        self.write_bits(value - (1 << (width - 1)), width - 1)

    @property
    def bit_length(self) -> int:
        """Total number of bits written so far."""
        return self._bit_count

    def getvalue(self) -> bytes:
        """Return the bit stream padded with zero bits to a whole byte."""
        if self._filled == 0:
            return bytes(self._buffer)
        tail = self._current << (8 - self._filled)
        return bytes(self._buffer) + bytes((tail,))


class BitReader:
    """Reads bits MSB-first from a byte string."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._position = 0  # bit position

    @property
    def bits_remaining(self) -> int:
        """Number of unread bits (including any padding)."""
        return len(self._data) * 8 - self._position

    @property
    def bit_position(self) -> int:
        """Current absolute bit offset."""
        return self._position

    def read_bit(self) -> int:
        """Read one bit; raises :class:`BitIOError` past the end."""
        if self._position >= len(self._data) * 8:
            raise BitIOError("bit stream exhausted")
        byte = self._data[self._position >> 3]
        bit = (byte >> (7 - (self._position & 7))) & 1
        self._position += 1
        return bit

    def read_bits(self, width: int) -> int:
        """Read ``width`` bits as an unsigned integer."""
        if width < 0:
            raise BitIOError(f"width must be non-negative, got {width}")
        value = 0
        for _ in range(width):
            value = (value << 1) | self.read_bit()
        return value

    def read_unary(self) -> int:
        """Read a unary-coded value (count of ones before the zero)."""
        count = 0
        while self.read_bit():
            count += 1
        return count

    def read_gamma(self) -> int:
        """Read an Elias-gamma coded value."""
        width = self.read_unary() + 1
        if width == 1:
            return 1
        return (1 << (width - 1)) | self.read_bits(width - 1)
