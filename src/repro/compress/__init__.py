"""Compression substrate: bit I/O, codecs, and measurement helpers.

All codecs are lossless over arbitrary byte strings and registered in a
name-indexed registry; the simulator charges their modelled cycle costs.
"""

from .bitio import BitIOError, BitReader, BitWriter
from .codec import (
    Codec,
    CodecCosts,
    CodecError,
    NullCodec,
    available_codecs,
    get_codec,
    is_known_codec,
    is_pipeline_spec,
    register_codec,
    resolve_codec_spec,
)
from .dictionary import DictionaryCodec
from .huffman import HuffmanCodec
from .lz77 import LZ77Codec
from .lzw import LZWCodec
from .pipeline import (
    CANDIDATE_PIPELINES,
    PIPELINES,
    PipelineCodec,
    PipelineError,
    PipelineSpec,
    available_pipelines,
    parse_pipeline_payload,
    parse_pipeline_spec,
)
from .rle import MTFRLECodec, RLECodec
from .shared import (
    SharedDictionaryCodec,
    SharedFieldsCodec,
    SharedHuffmanCodec,
    SharedModelCodec,
)
from .stats import (
    BlockCompressionStats,
    ImageCompressionStats,
    block_bytes,
    compare_codecs,
    measure_block,
    measure_image,
)
from .transforms import TRANSFORMS, Transform, available_transforms

__all__ = [
    "BitIOError",
    "BitReader",
    "BitWriter",
    "BlockCompressionStats",
    "CANDIDATE_PIPELINES",
    "Codec",
    "CodecCosts",
    "CodecError",
    "DictionaryCodec",
    "HuffmanCodec",
    "ImageCompressionStats",
    "LZ77Codec",
    "LZWCodec",
    "MTFRLECodec",
    "NullCodec",
    "PIPELINES",
    "PipelineCodec",
    "PipelineError",
    "PipelineSpec",
    "RLECodec",
    "TRANSFORMS",
    "Transform",
    "SharedDictionaryCodec",
    "SharedFieldsCodec",
    "SharedHuffmanCodec",
    "SharedModelCodec",
    "available_codecs",
    "available_pipelines",
    "available_transforms",
    "block_bytes",
    "compare_codecs",
    "get_codec",
    "is_known_codec",
    "is_pipeline_spec",
    "measure_block",
    "measure_image",
    "parse_pipeline_payload",
    "parse_pipeline_spec",
    "register_codec",
    "resolve_codec_spec",
]
