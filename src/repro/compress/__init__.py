"""Compression substrate: bit I/O, codecs, and measurement helpers.

All codecs are lossless over arbitrary byte strings and registered in a
name-indexed registry; the simulator charges their modelled cycle costs.
"""

from .bitio import BitIOError, BitReader, BitWriter
from .codec import (
    Codec,
    CodecCosts,
    CodecError,
    NullCodec,
    available_codecs,
    get_codec,
    register_codec,
)
from .dictionary import DictionaryCodec
from .huffman import HuffmanCodec
from .lz77 import LZ77Codec
from .lzw import LZWCodec
from .rle import MTFRLECodec, RLECodec
from .shared import (
    SharedDictionaryCodec,
    SharedFieldsCodec,
    SharedHuffmanCodec,
    SharedModelCodec,
)
from .stats import (
    BlockCompressionStats,
    ImageCompressionStats,
    block_bytes,
    compare_codecs,
    measure_block,
    measure_image,
)

__all__ = [
    "BitIOError",
    "BitReader",
    "BitWriter",
    "BlockCompressionStats",
    "Codec",
    "CodecCosts",
    "CodecError",
    "DictionaryCodec",
    "HuffmanCodec",
    "ImageCompressionStats",
    "LZ77Codec",
    "LZWCodec",
    "MTFRLECodec",
    "NullCodec",
    "RLECodec",
    "SharedDictionaryCodec",
    "SharedFieldsCodec",
    "SharedHuffmanCodec",
    "SharedModelCodec",
    "available_codecs",
    "block_bytes",
    "compare_codecs",
    "get_codec",
    "measure_block",
    "measure_image",
    "register_codec",
]
