"""Frozen seed implementations of the bit I/O and Huffman hot paths.

The batched :mod:`repro.compress.bitio` and the table-driven decoder in
:mod:`repro.compress.huffman` must stay *byte-identical* to the original
bit-at-a-time implementations this repository seeded with.  This module
preserves those originals verbatim (modulo naming) so that

* the property tests can assert equivalence against the real seed code
  rather than against a re-derivation of it, and
* the ``bench`` CLI can measure the fast path's speedup over the seed
  implementation PR-over-PR.

Nothing here is exported through the package API and nothing in the
runtime imports it; it is a test/benchmark artifact.  Do not "optimise"
this module — its entire value is staying slow and obviously correct.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .bitio import BitIOError


class ReferenceBitWriter:
    """Seed ``BitWriter``: accumulates single bits MSB-first."""

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._current = 0
        self._filled = 0
        self._bit_count = 0

    def write_bit(self, bit: int) -> None:
        if bit not in (0, 1):
            raise BitIOError(f"bit must be 0 or 1, got {bit}")
        self._current = (self._current << 1) | bit
        self._filled += 1
        self._bit_count += 1
        if self._filled == 8:
            self._buffer.append(self._current)
            self._current = 0
            self._filled = 0

    def write_bits(self, value: int, width: int) -> None:
        if width < 0:
            raise BitIOError(f"width must be non-negative, got {width}")
        if value < 0 or (width < 64 and value >= (1 << width)):
            raise BitIOError(
                f"value {value} does not fit in {width} bits"
            )
        for position in range(width - 1, -1, -1):
            self.write_bit((value >> position) & 1)

    def write_unary(self, value: int) -> None:
        if value < 0:
            raise BitIOError(f"unary value must be non-negative, got {value}")
        for _ in range(value):
            self.write_bit(1)
        self.write_bit(0)

    def write_gamma(self, value: int) -> None:
        if value < 1:
            raise BitIOError(f"gamma value must be >= 1, got {value}")
        width = value.bit_length()
        self.write_unary(width - 1)
        self.write_bits(value - (1 << (width - 1)), width - 1)

    @property
    def bit_length(self) -> int:
        return self._bit_count

    def getvalue(self) -> bytes:
        if self._filled == 0:
            return bytes(self._buffer)
        tail = self._current << (8 - self._filled)
        return bytes(self._buffer) + bytes((tail,))


class ReferenceBitReader:
    """Seed ``BitReader``: extracts single bits MSB-first."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._position = 0  # bit position

    @property
    def bits_remaining(self) -> int:
        return len(self._data) * 8 - self._position

    @property
    def bit_position(self) -> int:
        return self._position

    def read_bit(self) -> int:
        if self._position >= len(self._data) * 8:
            raise BitIOError("bit stream exhausted")
        byte = self._data[self._position >> 3]
        bit = (byte >> (7 - (self._position & 7))) & 1
        self._position += 1
        return bit

    def read_bits(self, width: int) -> int:
        if width < 0:
            raise BitIOError(f"width must be non-negative, got {width}")
        value = 0
        for _ in range(width):
            value = (value << 1) | self.read_bit()
        return value

    def read_unary(self) -> int:
        count = 0
        while self.read_bit():
            count += 1
        return count

    def read_gamma(self) -> int:
        width = self.read_unary() + 1
        if width == 1:
            return 1
        return (1 << (width - 1)) | self.read_bits(width - 1)


# ----------------------------------------------------------------------
# Seed Huffman codec (dict-probing decoder, per-byte dict-lookup encoder)
# ----------------------------------------------------------------------

_TAG_RAW = 0
_TAG_SINGLE = 1
_TAG_HUFFMAN = 2
_MAX_CODE_LENGTH = 15


def reference_huffman_compress(data: bytes) -> bytes:
    """Seed ``HuffmanCodec.compress``: per-byte dict lookups into the
    bit-at-a-time writer."""
    from collections import Counter

    from .huffman import _canonical_codes, _code_lengths

    if not data:
        return bytes((_TAG_RAW, 0, 0, 0, 0))
    frequencies = Counter(data)
    if len(frequencies) == 1:
        symbol = data[0]
        return bytes((_TAG_SINGLE, symbol)) + len(data).to_bytes(4, "big")

    lengths = _code_lengths(frequencies)
    codes = _canonical_codes(lengths)
    writer = ReferenceBitWriter()
    for byte in data:
        code, length = codes[byte]
        writer.write_bits(code, length)
    bitstream = writer.getvalue()

    header = bytearray((_TAG_HUFFMAN,))
    header += len(data).to_bytes(4, "big")
    for pair_start in range(0, 256, 2):
        high = lengths.get(pair_start, 0)
        low = lengths.get(pair_start + 1, 0)
        header.append((high << 4) | low)
    payload = bytes(header) + bitstream
    if len(payload) >= len(data) + 5:
        return bytes((_TAG_RAW,)) + len(data).to_bytes(4, "big") + data
    return payload


def reference_huffman_decompress(payload: bytes) -> bytes:
    """Seed ``HuffmanCodec.decompress``: per-bit ``(code, length)`` dict
    probing."""
    from .codec import CodecError
    from .huffman import _canonical_codes

    if not payload:
        raise CodecError("empty huffman payload")
    tag = payload[0]
    if tag == _TAG_RAW:
        if len(payload) < 5:
            raise CodecError("truncated raw header")
        length = int.from_bytes(payload[1:5], "big")
        body = payload[5 : 5 + length]
        if len(body) != length:
            raise CodecError(
                f"raw body truncated: expected {length}, got {len(body)}"
            )
        return body
    if tag == _TAG_SINGLE:
        if len(payload) < 6:
            raise CodecError("truncated single-symbol header")
        return bytes((payload[1],)) * int.from_bytes(payload[2:6], "big")
    if tag != _TAG_HUFFMAN:
        raise CodecError(f"unknown huffman payload tag {tag}")
    if len(payload) < 5 + 128:
        raise CodecError("truncated huffman header")

    original_length = int.from_bytes(payload[1:5], "big")
    lengths: Dict[int, int] = {}
    for pair_start in range(0, 256, 2):
        packed = payload[5 + pair_start // 2]
        if packed >> 4:
            lengths[pair_start] = packed >> 4
        if packed & 0xF:
            lengths[pair_start + 1] = packed & 0xF
    codes = _canonical_codes(lengths)
    decode_table: Dict[Tuple[int, int], int] = {
        (code, length): symbol
        for symbol, (code, length) in codes.items()
    }

    reader = ReferenceBitReader(payload[5 + 128 :])
    out = bytearray()
    try:
        while len(out) < original_length:
            code = 0
            length = 0
            while True:
                code = (code << 1) | reader.read_bit()
                length += 1
                if length > _MAX_CODE_LENGTH:
                    raise CodecError("invalid huffman code in stream")
                symbol = decode_table.get((code, length))
                if symbol is not None:
                    out.append(symbol)
                    break
    except BitIOError as exc:
        raise CodecError(f"huffman stream truncated: {exc}") from exc
    return bytes(out)
