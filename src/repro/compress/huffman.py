"""Canonical Huffman codec over bytes.

Canonical Huffman is the workhorse of embedded code compressors (IBM
CodePack [14 in the paper] is Huffman-based): the code table serialises as
just one code length per symbol, and decoding is table-driven.  The payload
layout is::

    [1 byte: format tag]
    tag 0: raw passthrough       -> [4 bytes length][raw bytes]
    tag 1: single-symbol stream  -> [1 byte symbol][4 bytes count]
    tag 2: huffman               -> [4 bytes original length]
                                    [256 x 4-bit code lengths (128 bytes)]
                                    [bit stream]

Raw passthrough keeps the codec safe on incompressible input (the header
costs 5 bytes but correctness is preserved — ``decompress(compress(x)) ==
x`` always).
"""

from __future__ import annotations

import heapq
from collections import Counter
from typing import Dict, Iterable, List, Optional, Tuple

from .bitio import BitIOError, BitReader, BitWriter
from .codec import Codec, CodecCosts, CodecError, register_codec

try:  # pragma: no cover - exercised indirectly via byte_frequencies
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is optional
    _np = None

_TAG_RAW = 0
_TAG_SINGLE = 1
_TAG_HUFFMAN = 2


def byte_frequencies(chunks: Iterable[bytes]) -> Counter:
    """Tally byte values across ``chunks`` into a :class:`Counter`.

    Table-driven counting shared by the entropy coders: with numpy
    available each chunk is counted by one ``bincount`` over a zero-copy
    ``frombuffer`` view; the pure-stdlib fallback leans on
    ``Counter.update``'s C fast path.  Both produce identical counters
    (only order can differ, and every consumer sorts), so trained models
    and payloads are byte-for-byte independent of which path ran.
    """
    if _np is not None:
        totals = _np.zeros(256, dtype=_np.int64)
        for chunk in chunks:
            if chunk:
                totals += _np.bincount(
                    _np.frombuffer(chunk, dtype=_np.uint8), minlength=256
                )
        return Counter(
            {int(symbol): int(totals[symbol])
             for symbol in _np.nonzero(totals)[0]}
        )
    frequencies: Counter = Counter()
    for chunk in chunks:
        frequencies.update(chunk)
    return frequencies

#: Code lengths are stored in 4 bits, so depth must not exceed 15.
_MAX_CODE_LENGTH = 15


def _code_lengths(frequencies: Counter) -> Dict[int, int]:
    """Compute Huffman code lengths, depth-limited to 15 bits.

    Depth limiting uses the standard heuristic of flattening frequencies
    (sqrt) and recomputing until the limit holds; inputs are <= 64 KiB so
    two rounds always suffice in practice.
    """
    freqs: Dict[int, int] = dict(frequencies)
    while True:
        lengths = _huffman_depths(freqs)
        if not lengths or max(lengths.values()) <= _MAX_CODE_LENGTH:
            return lengths
        freqs = {
            symbol: max(1, int(count ** 0.5))
            for symbol, count in freqs.items()
        }


def _huffman_depths(frequencies: Dict[int, int]) -> Dict[int, int]:
    if len(frequencies) == 1:
        symbol = next(iter(frequencies))
        return {symbol: 1}
    heap: List[Tuple[int, int, List[int]]] = []
    for order, (symbol, count) in enumerate(sorted(frequencies.items())):
        heap.append((count, order, [symbol]))
    heapq.heapify(heap)
    depths: Dict[int, int] = {symbol: 0 for symbol in frequencies}
    tiebreak = len(heap)
    while len(heap) > 1:
        count_a, _, symbols_a = heapq.heappop(heap)
        count_b, _, symbols_b = heapq.heappop(heap)
        for symbol in symbols_a + symbols_b:
            depths[symbol] += 1
        heapq.heappush(
            heap, (count_a + count_b, tiebreak, symbols_a + symbols_b)
        )
        tiebreak += 1
    return depths


def _canonical_codes(lengths: Dict[int, int]) -> Dict[int, Tuple[int, int]]:
    """Assign canonical codes: map symbol -> (code, length)."""
    ordered = sorted(
        (length, symbol) for symbol, length in lengths.items() if length
    )
    codes: Dict[int, Tuple[int, int]] = {}
    code = 0
    previous_length = 0
    for length, symbol in ordered:
        code <<= length - previous_length
        codes[symbol] = (code, length)
        code += 1
        previous_length = length
    return codes


class CanonicalDecoder:
    """Table-driven decoder for a canonical Huffman code.

    Instead of probing a ``(code, length)`` dict one bit at a time, the
    decoder peeks ``max_length`` bits and walks the per-length first-code
    /offset tables (the classic CodePack/zlib idiom): a canonical code of
    length ``L`` decodes as ``symbols[base[L] + top_L_bits - first[L]]``
    where ``first[L]`` is the smallest code of that length.  One peek and
    a handful of integer compares replace up to 15 dict probes per symbol.

    A one-level 256-entry root table resolves every code of up to 8 bits
    (the overwhelmingly common case) with a single indexed load; longer
    codes fall back to the first-code walk over lengths 9..15.
    """

    _ROOT_BITS = 8
    _PEEK_BITS = 16  # root byte + up to 8 more bits covers length <= 15

    __slots__ = (
        "max_length", "_first", "_base", "_count", "_symbols", "_root"
    )

    def __init__(self, lengths: Dict[int, int]) -> None:
        if not lengths:
            raise ValueError("cannot build a decoder for an empty code")
        self.max_length = max(lengths.values())
        if self.max_length > self._PEEK_BITS:
            raise ValueError(
                f"code depth {self.max_length} exceeds the decoder's "
                f"{self._PEEK_BITS}-bit peek window"
            )
        count = [0] * (self.max_length + 1)
        for length in lengths.values():
            count[length] += 1
        # Symbols in canonical order (sorted by (length, symbol)) — the
        # same order _canonical_codes assigns codes in.
        self._symbols = [
            symbol for _, symbol in sorted(
                (length, symbol) for symbol, length in lengths.items()
            )
        ]
        first = [0] * (self.max_length + 1)
        base = [0] * (self.max_length + 1)
        code = 0
        index = 0
        for length in range(1, self.max_length + 1):
            first[length] = code
            base[length] = index
            code = (code + count[length]) << 1
            index += count[length]
        self._first = first
        self._base = base
        self._count = count
        # Root table: every 8-bit prefix whose top bits are a code of
        # length <= 8 maps straight to (symbol, length).
        root: List[Optional[Tuple[int, int]]] = [None] * (
            1 << self._ROOT_BITS
        )
        index = 0
        for length in range(1, min(self.max_length, self._ROOT_BITS) + 1):
            for i in range(count[length]):
                entry = (self._symbols[base[length] + i], length)
                prefix = (first[length] + i) << (self._ROOT_BITS - length)
                span = 1 << (self._ROOT_BITS - length)
                root[prefix : prefix + span] = [entry] * span
        self._root = root

    def read_symbol(self, reader: BitReader) -> int:
        """Decode one symbol from ``reader``, consuming its code bits.

        Raises :class:`BitIOError` when the stream ends mid-code and
        :class:`ValueError` when the bits match no code word.
        """
        window = reader.peek_bits(self._PEEK_BITS)
        entry = self._root[window >> (self._PEEK_BITS - self._ROOT_BITS)]
        if entry is not None:
            symbol, length = entry
        else:
            symbol, length = self._decode_slow(
                window, reader.bits_remaining
            )
        if length > reader.bits_remaining:
            raise BitIOError("bit stream exhausted")
        reader.skip_bits(length)
        return symbol

    def _decode_slow(self, window: int, remaining: int) -> Tuple[int, int]:
        """Resolve a code longer than the root table covers.

        ``window`` holds the next ``_PEEK_BITS`` stream bits
        (zero-padded); returns ``(symbol, length)``.
        """
        max_length = self.max_length
        first = self._first
        count = self._count
        peeked = window >> (self._PEEK_BITS - max_length)
        for length in range(self._ROOT_BITS + 1, max_length + 1):
            if not count[length]:
                continue
            offset = (peeked >> (max_length - length)) - first[length]
            if offset < count[length]:
                return self._symbols[self._base[length] + offset], length
        if remaining < max_length:
            raise BitIOError("bit stream exhausted")
        raise ValueError("invalid huffman code in stream")

    def decode_block(self, data: bytes, count: int) -> bytes:
        """Decode ``count`` symbols from ``data`` in one tight loop.

        The batched equivalent of ``count`` :meth:`read_symbol` calls on a
        fresh reader over ``data`` — used by the block decompressors where
        the symbol count is known up front and no other fields interleave
        with the code words.
        """
        root = self._root
        peek_bits = self._PEEK_BITS
        root_shift = peek_bits - self._ROOT_BITS
        from_bytes = int.from_bytes
        total = len(data) * 8
        pos = 0
        out = bytearray(count)
        for i in range(count):
            byte_index = pos >> 3
            segment = data[byte_index : byte_index + 3]
            have = (len(segment) << 3) - (pos & 7)
            value = from_bytes(segment, "big")
            if have >= peek_bits:
                window = (value >> (have - peek_bits)) & 0xFFFF
            else:
                window = (value << (peek_bits - have)) & 0xFFFF
            entry = root[window >> root_shift]
            if entry is not None:
                symbol, length = entry
            else:
                symbol, length = self._decode_slow(window, total - pos)
            pos += length
            if pos > total:
                raise BitIOError("bit stream exhausted")
            out[i] = symbol
        return bytes(out)


@register_codec("huffman")
class HuffmanCodec(Codec):
    """Canonical Huffman over individual bytes."""

    costs = CodecCosts(
        decompress_cycles_per_byte=6.0,
        compress_cycles_per_byte=12.0,
        fixed=60,
    )

    def compress(self, data: bytes) -> bytes:
        if not data:
            return bytes((_TAG_RAW, 0, 0, 0, 0))
        frequencies = byte_frequencies((data,))
        if len(frequencies) == 1:
            symbol = data[0]
            return bytes((_TAG_SINGLE, symbol)) + len(data).to_bytes(4, "big")

        lengths = _code_lengths(frequencies)
        codes = _canonical_codes(lengths)
        # Dense 256-entry encode table: one tuple load per input byte
        # instead of a dict probe (absent symbols never occur in data).
        encode_table: List[Optional[Tuple[int, int]]] = [None] * 256
        for symbol, pair in codes.items():
            encode_table[symbol] = pair
        # Inlined batched bit packing (same layout as BitWriter): codes
        # accumulate into a small int and completed bytes drain at once.
        stream = bytearray()
        append = stream.append
        acc = 0
        filled = 0
        for byte in data:
            code, length = encode_table[byte]  # type: ignore[misc]
            acc = (acc << length) | code
            filled += length
            while filled >= 8:
                filled -= 8
                append((acc >> filled) & 0xFF)
            acc &= (1 << filled) - 1
        if filled:
            append((acc << (8 - filled)) & 0xFF)
        bitstream = bytes(stream)

        header = bytearray((_TAG_HUFFMAN,))
        header += len(data).to_bytes(4, "big")
        for pair_start in range(0, 256, 2):
            high = lengths.get(pair_start, 0)
            low = lengths.get(pair_start + 1, 0)
            header.append((high << 4) | low)
        payload = bytes(header) + bitstream
        if len(payload) >= len(data) + 5:
            return bytes((_TAG_RAW,)) + len(data).to_bytes(4, "big") + data
        return payload

    def decompress(self, payload: bytes) -> bytes:
        if not payload:
            raise CodecError("empty huffman payload")
        tag = payload[0]
        if tag == _TAG_RAW:
            if len(payload) < 5:
                raise CodecError("truncated raw header")
            length = int.from_bytes(payload[1:5], "big")
            body = payload[5 : 5 + length]
            if len(body) != length:
                raise CodecError(
                    f"raw body truncated: expected {length}, got {len(body)}"
                )
            return body
        if tag == _TAG_SINGLE:
            if len(payload) < 6:
                raise CodecError("truncated single-symbol header")
            return bytes((payload[1],)) * int.from_bytes(payload[2:6], "big")
        if tag != _TAG_HUFFMAN:
            raise CodecError(f"unknown huffman payload tag {tag}")
        if len(payload) < 5 + 128:
            raise CodecError("truncated huffman header")

        original_length = int.from_bytes(payload[1:5], "big")
        lengths: Dict[int, int] = {}
        for pair_start in range(0, 256, 2):
            packed = payload[5 + pair_start // 2]
            if packed >> 4:
                lengths[pair_start] = packed >> 4
            if packed & 0xF:
                lengths[pair_start + 1] = packed & 0xF
        if original_length == 0:
            return b""
        if not lengths:
            raise CodecError("invalid huffman code in stream")
        decoder = CanonicalDecoder(lengths)
        try:
            return decoder.decode_block(payload[5 + 128 :], original_length)
        except BitIOError as exc:
            raise CodecError(f"huffman stream truncated: {exc}") from exc
        except ValueError:
            raise CodecError("invalid huffman code in stream") from None
