"""Canonical Huffman codec over bytes.

Canonical Huffman is the workhorse of embedded code compressors (IBM
CodePack [14 in the paper] is Huffman-based): the code table serialises as
just one code length per symbol, and decoding is table-driven.  The payload
layout is::

    [1 byte: format tag]
    tag 0: raw passthrough       -> [4 bytes length][raw bytes]
    tag 1: single-symbol stream  -> [1 byte symbol][4 bytes count]
    tag 2: huffman               -> [4 bytes original length]
                                    [256 x 4-bit code lengths (128 bytes)]
                                    [bit stream]

Raw passthrough keeps the codec safe on incompressible input (the header
costs 5 bytes but correctness is preserved — ``decompress(compress(x)) ==
x`` always).
"""

from __future__ import annotations

import heapq
from collections import Counter
from typing import Dict, List, Tuple

from .bitio import BitIOError, BitReader, BitWriter
from .codec import Codec, CodecCosts, CodecError, register_codec

_TAG_RAW = 0
_TAG_SINGLE = 1
_TAG_HUFFMAN = 2

#: Code lengths are stored in 4 bits, so depth must not exceed 15.
_MAX_CODE_LENGTH = 15


def _code_lengths(frequencies: Counter) -> Dict[int, int]:
    """Compute Huffman code lengths, depth-limited to 15 bits.

    Depth limiting uses the standard heuristic of flattening frequencies
    (sqrt) and recomputing until the limit holds; inputs are <= 64 KiB so
    two rounds always suffice in practice.
    """
    freqs: Dict[int, int] = dict(frequencies)
    while True:
        lengths = _huffman_depths(freqs)
        if not lengths or max(lengths.values()) <= _MAX_CODE_LENGTH:
            return lengths
        freqs = {
            symbol: max(1, int(count ** 0.5))
            for symbol, count in freqs.items()
        }


def _huffman_depths(frequencies: Dict[int, int]) -> Dict[int, int]:
    if len(frequencies) == 1:
        symbol = next(iter(frequencies))
        return {symbol: 1}
    heap: List[Tuple[int, int, List[int]]] = []
    for order, (symbol, count) in enumerate(sorted(frequencies.items())):
        heap.append((count, order, [symbol]))
    heapq.heapify(heap)
    depths: Dict[int, int] = {symbol: 0 for symbol in frequencies}
    tiebreak = len(heap)
    while len(heap) > 1:
        count_a, _, symbols_a = heapq.heappop(heap)
        count_b, _, symbols_b = heapq.heappop(heap)
        for symbol in symbols_a + symbols_b:
            depths[symbol] += 1
        heapq.heappush(
            heap, (count_a + count_b, tiebreak, symbols_a + symbols_b)
        )
        tiebreak += 1
    return depths


def _canonical_codes(lengths: Dict[int, int]) -> Dict[int, Tuple[int, int]]:
    """Assign canonical codes: map symbol -> (code, length)."""
    ordered = sorted(
        (length, symbol) for symbol, length in lengths.items() if length
    )
    codes: Dict[int, Tuple[int, int]] = {}
    code = 0
    previous_length = 0
    for length, symbol in ordered:
        code <<= length - previous_length
        codes[symbol] = (code, length)
        code += 1
        previous_length = length
    return codes


@register_codec("huffman")
class HuffmanCodec(Codec):
    """Canonical Huffman over individual bytes."""

    costs = CodecCosts(
        decompress_cycles_per_byte=6.0,
        compress_cycles_per_byte=12.0,
        fixed=60,
    )

    def compress(self, data: bytes) -> bytes:
        if not data:
            return bytes((_TAG_RAW, 0, 0, 0, 0))
        frequencies = Counter(data)
        if len(frequencies) == 1:
            symbol = data[0]
            return bytes((_TAG_SINGLE, symbol)) + len(data).to_bytes(4, "big")

        lengths = _code_lengths(frequencies)
        codes = _canonical_codes(lengths)
        writer = BitWriter()
        for byte in data:
            code, length = codes[byte]
            writer.write_bits(code, length)
        bitstream = writer.getvalue()

        header = bytearray((_TAG_HUFFMAN,))
        header += len(data).to_bytes(4, "big")
        for pair_start in range(0, 256, 2):
            high = lengths.get(pair_start, 0)
            low = lengths.get(pair_start + 1, 0)
            header.append((high << 4) | low)
        payload = bytes(header) + bitstream
        if len(payload) >= len(data) + 5:
            return bytes((_TAG_RAW,)) + len(data).to_bytes(4, "big") + data
        return payload

    def decompress(self, payload: bytes) -> bytes:
        if not payload:
            raise CodecError("empty huffman payload")
        tag = payload[0]
        if tag == _TAG_RAW:
            if len(payload) < 5:
                raise CodecError("truncated raw header")
            length = int.from_bytes(payload[1:5], "big")
            body = payload[5 : 5 + length]
            if len(body) != length:
                raise CodecError(
                    f"raw body truncated: expected {length}, got {len(body)}"
                )
            return body
        if tag == _TAG_SINGLE:
            if len(payload) < 6:
                raise CodecError("truncated single-symbol header")
            return bytes((payload[1],)) * int.from_bytes(payload[2:6], "big")
        if tag != _TAG_HUFFMAN:
            raise CodecError(f"unknown huffman payload tag {tag}")
        if len(payload) < 5 + 128:
            raise CodecError("truncated huffman header")

        original_length = int.from_bytes(payload[1:5], "big")
        lengths: Dict[int, int] = {}
        for pair_start in range(0, 256, 2):
            packed = payload[5 + pair_start // 2]
            if packed >> 4:
                lengths[pair_start] = packed >> 4
            if packed & 0xF:
                lengths[pair_start + 1] = packed & 0xF
        codes = _canonical_codes(lengths)
        decode_table: Dict[Tuple[int, int], int] = {
            (code, length): symbol
            for symbol, (code, length) in codes.items()
        }

        reader = BitReader(payload[5 + 128 :])
        out = bytearray()
        try:
            while len(out) < original_length:
                code = 0
                length = 0
                while True:
                    code = (code << 1) | reader.read_bit()
                    length += 1
                    if length > _MAX_CODE_LENGTH:
                        raise CodecError("invalid huffman code in stream")
                    symbol = decode_table.get((code, length))
                    if symbol is not None:
                        out.append(symbol)
                        break
        except BitIOError as exc:
            raise CodecError(f"huffman stream truncated: {exc}") from exc
        return bytes(out)
