"""Shared-model codecs: one program-wide model, tiny per-block payloads.

Per-block self-contained payloads (see :mod:`repro.compress.huffman`,
:mod:`repro.compress.dictionary`) pay a header per block, which dominates at
basic-block sizes (tens of bytes).  Real embedded decompressors — IBM
CodePack [14 in the paper], the dictionary schemes of Lefurgy et al.
[16, 17] — therefore keep **one global model** (Huffman tables / word
dictionary) for the whole program, built at link time and stored once.

These codecs do the same: :meth:`SharedModelCodec.train` fits the model on
the whole code image.  Two payload formats exist:

* the self-contained :meth:`~repro.compress.codec.Codec.compress` format
  (``tag + 2-byte length + body``), so the generic codec contract and its
  property tests hold;
* the *sized* :meth:`SharedModelCodec.compress_block` format used by code
  images (``tag + body``, 1 byte of overhead): the block table already
  records every block's uncompressed size, exactly like the line/block
  address tables of real decompression hardware.

The model's own size is reported via :attr:`model_overhead_bytes` and
charged once to the compressed image.

An untrained codec trains itself on the first input it compresses (so
single-buffer round-trips work); decompression requires the same instance
or an identically trained one — like firmware that bakes the table into the
decompressor ROM.
"""

from __future__ import annotations

import abc
from collections import Counter
from typing import Dict, List, Sequence, Tuple

from .bitio import BitIOError, BitReader, BitWriter
from .codec import Codec, CodecCosts, CodecError, register_codec
from .huffman import (
    CanonicalDecoder,
    _canonical_codes,
    _code_lengths,
    byte_frequencies,
)

_TAG_RAW = 0
_TAG_CODED = 1

_WORD = 4


class SharedModelCodec(Codec, abc.ABC):
    """Base for codecs with a train-once, program-wide model."""

    def __init__(self) -> None:
        self._trained = False

    @property
    def is_trained(self) -> bool:
        """True once :meth:`train` has run."""
        return self._trained

    @property
    @abc.abstractmethod
    def model_overhead_bytes(self) -> int:
        """Bytes the shared model itself occupies in memory."""

    def train(self, samples: Sequence[bytes]) -> None:
        """Fit the shared model on ``samples`` (typically all blocks)."""
        self._fit(samples)
        self._trained = True

    @abc.abstractmethod
    def _fit(self, samples: Sequence[bytes]) -> None:
        """Subclass hook: build the model from the training corpus."""

    @abc.abstractmethod
    def _encode_body(self, data: bytes) -> bytes:
        """Encode ``data`` into the model-coded body (no header)."""

    @abc.abstractmethod
    def _decode_body(self, body: bytes, length: int) -> bytes:
        """Decode a body produced by :meth:`_encode_body`."""

    def _ensure_trained(self, data: bytes) -> None:
        if not self._trained:
            self.train([data])

    @abc.abstractmethod
    def _model_state(self) -> bytes:
        """Subclass hook: a canonical byte serialisation of the model."""

    def model_digest(self) -> str:
        """SHA-256 over the trained model's canonical serialisation.

        Training is deterministic, so two codecs trained on the same
        corpus agree here — the experiment store uses this to assert
        that payloads reloaded from disk decode under a freshly
        retrained model exactly as they did under the original.
        """
        import hashlib

        if not self._trained:
            raise CodecError(
                f"codec '{self.name}' must be trained before digesting"
            )
        return hashlib.sha256(self._model_state()).hexdigest()

    # ------------------------------------------------------------------
    # Sized format (1-byte overhead; length lives in the block table)
    # ------------------------------------------------------------------

    def compress_block(self, data: bytes) -> bytes:
        """Compress for a code image: ``[tag][body]``."""
        self._ensure_trained(data)
        body = self._encode_body(data)
        if len(body) >= len(data):
            return bytes((_TAG_RAW,)) + data
        return bytes((_TAG_CODED,)) + body

    def decompress_block(self, payload: bytes, length: int) -> bytes:
        """Invert :meth:`compress_block` given the block's known size."""
        if not payload:
            raise CodecError("empty shared-codec block payload")
        tag, body = payload[0], payload[1:]
        if tag == _TAG_RAW:
            if len(body) < length:
                raise CodecError("raw block body truncated")
            return body[:length]
        if tag != _TAG_CODED:
            raise CodecError(f"unknown shared-codec tag {tag}")
        if not self._trained:
            raise CodecError(
                f"codec '{self.name}' must be trained before decompression"
            )
        return self._decode_body(body, length)

    # ------------------------------------------------------------------
    # Self-contained format (generic Codec contract)
    # ------------------------------------------------------------------

    def compress(self, data: bytes) -> bytes:
        if len(data) > 0xFFFF:
            raise CodecError(
                f"shared-model codecs accept inputs up to 64 KiB, got "
                f"{len(data)}"
            )
        return len(data).to_bytes(2, "big") + self.compress_block(data)

    def decompress(self, payload: bytes) -> bytes:
        if len(payload) < 3:
            raise CodecError("truncated shared-codec payload")
        length = int.from_bytes(payload[:2], "big")
        return self.decompress_block(payload[2:], length)


@register_codec("shared-dict")
class SharedDictionaryCodec(SharedModelCodec):
    """Program-wide frequent-word dictionary (CodePack-style).

    Words (4-byte instruction encodings) seen at least twice across the
    training corpus enter the dictionary, most frequent first, up to
    ``max_entries``.  Payload words encode as ``1 + index_bits`` bits when
    in the dictionary, ``1 + 32`` bits literal otherwise.
    """

    costs = CodecCosts(
        decompress_cycles_per_byte=1.5,
        compress_cycles_per_byte=5.0,
        fixed=25,
    )

    def __init__(self, max_entries: int = 4096) -> None:
        super().__init__()
        if not 1 <= max_entries <= 65536:
            raise ValueError(
                f"max_entries must be in [1, 65536], got {max_entries}"
            )
        self.max_entries = max_entries
        self._dictionary: List[bytes] = []
        self._index_of: Dict[bytes, int] = {}
        self._index_bits = 1

    def _fit(self, samples: Sequence[bytes]) -> None:
        counts: Counter = Counter()
        for sample in samples:
            for i in range(len(sample) // _WORD):
                counts[sample[i * _WORD : (i + 1) * _WORD]] += 1
        self._dictionary = [
            word for word, count in counts.most_common(self.max_entries)
            if count >= 2
        ]
        self._index_of = {
            word: index for index, word in enumerate(self._dictionary)
        }
        self._index_bits = max(
            1, (max(1, len(self._dictionary)) - 1).bit_length()
        )

    def _model_state(self) -> bytes:
        return (
            self._index_bits.to_bytes(2, "big")
            + b"".join(self._dictionary)
        )

    @property
    def model_overhead_bytes(self) -> int:
        # Entries plus a 4-byte count/width header in the decoder.
        return len(self._dictionary) * _WORD + 4

    def _encode_body(self, data: bytes) -> bytes:
        writer = BitWriter()
        write_bits = writer.write_bits
        index_of = self._index_of
        index_bits = self._index_bits
        hit_flag = 1 << index_bits
        word_count = len(data) // _WORD
        for i in range(word_count):
            word = data[i * _WORD : (i + 1) * _WORD]
            index = index_of.get(word)
            if index is not None:
                # Flag bit and index emitted as one batched field.
                write_bits(hit_flag | index, index_bits + 1)
            else:
                # Flag bit 0 + 32 literal bits = one 33-bit field.
                write_bits(int.from_bytes(word, "big"), 33)
        for byte in data[word_count * _WORD :]:
            write_bits(byte, 8)
        return writer.getvalue()

    def _decode_body(self, body: bytes, length: int) -> bytes:
        reader = BitReader(body)
        out = bytearray()
        try:
            for _ in range(length // _WORD):
                if reader.read_bit():
                    index = reader.read_bits(self._index_bits)
                    if index >= len(self._dictionary):
                        raise CodecError(
                            f"dictionary index {index} out of range"
                        )
                    out += self._dictionary[index]
                else:
                    out += reader.read_bits(32).to_bytes(_WORD, "big")
            for _ in range(length % _WORD):
                out.append(reader.read_bits(8))
        except BitIOError as exc:
            raise CodecError(f"shared-dict stream truncated: {exc}") from exc
        return bytes(out)


#: Pseudo-symbol for bytes unseen during training: its code is followed by
#: the raw 8-bit literal.  Keeps the table sparse (only seen symbols are
#: stored) while every byte string stays encodable.
_ESCAPE = 256


class _ByteHuffmanModel:
    """A trained canonical Huffman code over one byte stream.

    The table stores only symbols seen in training plus one escape code —
    matching how real decompressor tables are serialised, and keeping the
    model overhead proportional to the alphabet actually used.
    """

    def __init__(self, frequencies: Counter) -> None:
        seen: Dict[int, int] = {
            symbol: count for symbol, count in frequencies.items() if count
        }
        # The escape gets a middling weight so rare-but-possible literals
        # are not absurdly long.
        seen[_ESCAPE] = max(1, sum(seen.values()) // max(1, len(seen) * 8))
        lengths = _code_lengths(Counter(seen))
        self.codes = _canonical_codes(lengths)
        self._decoder = CanonicalDecoder(lengths)
        self._escape_pair = self.codes[_ESCAPE]

    @property
    def size_bytes(self) -> int:
        """Serialized table size: symbol byte + 4-bit length per entry."""
        entries = len(self.codes)
        return entries + (entries + 1) // 2 + 2

    def state_bytes(self) -> bytes:
        """Canonical serialisation: (symbol, code, length) sorted rows."""
        return b"".join(
            symbol.to_bytes(2, "big")
            + code.to_bytes(4, "big")
            + length.to_bytes(1, "big")
            for symbol, (code, length) in sorted(self.codes.items())
        )

    def write_symbol(self, writer: BitWriter, symbol: int) -> None:
        entry = self.codes.get(symbol)
        if entry is None:
            # Escape then literal, fused into one batched field write.
            code, length = self._escape_pair
            writer.write_bits((code << 8) | symbol, length + 8)
            return
        code, length = entry
        writer.write_bits(code, length)

    def read_symbol(self, reader: BitReader) -> int:
        try:
            symbol = self._decoder.read_symbol(reader)
        except BitIOError:
            raise
        except ValueError:
            raise CodecError("invalid shared huffman code") from None
        if symbol == _ESCAPE:
            return reader.read_bits(8)
        return symbol


@register_codec("shared-huffman")
class SharedHuffmanCodec(SharedModelCodec):
    """Program-wide canonical Huffman over bytes (CodePack-like entropy
    stage with the table in the decoder, not in every payload)."""

    costs = CodecCosts(
        decompress_cycles_per_byte=6.0,
        compress_cycles_per_byte=12.0,
        fixed=35,
    )

    def __init__(self) -> None:
        super().__init__()
        self._model: _ByteHuffmanModel = None  # type: ignore[assignment]

    def _fit(self, samples: Sequence[bytes]) -> None:
        self._model = _ByteHuffmanModel(byte_frequencies(samples))

    def _model_state(self) -> bytes:
        return self._model.state_bytes()

    @property
    def model_overhead_bytes(self) -> int:
        return self._model.size_bytes if self._model else 0

    def _encode_body(self, data: bytes) -> bytes:
        writer = BitWriter()
        for byte in data:
            self._model.write_symbol(writer, byte)
        return writer.getvalue()

    def _decode_body(self, body: bytes, length: int) -> bytes:
        reader = BitReader(body)
        out = bytearray()
        try:
            while len(out) < length:
                out.append(self._model.read_symbol(reader))
        except BitIOError as exc:
            raise CodecError(
                f"shared-huffman stream truncated: {exc}"
            ) from exc
        return bytes(out)


@register_codec("shared-fields")
class SharedFieldsCodec(SharedModelCodec):
    """Field-split Huffman over the ISA's fixed instruction layout.

    Fixed-width RISC instructions have wildly different statistics per
    byte position: the opcode byte is drawn from a couple dozen values,
    the register byte from a few pairs, and the 16-bit field is mostly
    small constants.  Compressing each of the four byte positions with its
    own shared Huffman code (as real field-partitioned code compressors
    do) beats a single byte model at basic-block sizes.

    Bytes past the last whole 4-byte word are coded with the position-0
    model.
    """

    costs = CodecCosts(
        decompress_cycles_per_byte=5.0,
        compress_cycles_per_byte=10.0,
        fixed=35,
    )

    def __init__(self) -> None:
        super().__init__()
        self._models: List[_ByteHuffmanModel] = []

    def _fit(self, samples: Sequence[bytes]) -> None:
        # Stride slicing peels each byte position out of every sample in
        # C (``sample[position::4]``), so the per-position tallies go
        # through the same table-driven counter as the byte models
        # instead of a Python loop over every (offset, byte) pair.
        self._models = [
            _ByteHuffmanModel(
                byte_frequencies(
                    sample[position::_WORD] for sample in samples
                )
            )
            for position in range(_WORD)
        ]

    def _model_state(self) -> bytes:
        return b"\0".join(model.state_bytes() for model in self._models)

    @property
    def model_overhead_bytes(self) -> int:
        return sum(model.size_bytes for model in self._models)

    def _encode_body(self, data: bytes) -> bytes:
        writer = BitWriter()
        for offset, byte in enumerate(data):
            self._models[offset % _WORD].write_symbol(writer, byte)
        return writer.getvalue()

    def _decode_body(self, body: bytes, length: int) -> bytes:
        reader = BitReader(body)
        out = bytearray()
        try:
            for offset in range(length):
                out.append(
                    self._models[offset % _WORD].read_symbol(reader)
                )
        except BitIOError as exc:
            raise CodecError(
                f"shared-fields stream truncated: {exc}"
            ) from exc
        return bytes(out)
