"""Codec interface, cost model, and registry.

The paper leaves the choice of compressor open ("how one can perform
compressions", Section 3, is about *when*, not *how*); real systems it cites
use Huffman-style entropy coders (CodePack [14]) and dictionary schemes
(Lefurgy et al. [16, 17]).  We provide several codecs behind one interface
so the E4 ablation can compare them, and a per-byte cycle-cost model so the
runtime can charge realistic (de)compression latencies.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Type

from ..registry import Registry


class CodecError(ValueError):
    """Raised when a payload cannot be decoded (corruption, wrong codec)."""


@dataclass(frozen=True)
class CodecCosts:
    """Cycle-cost model of a codec for the runtime thread timelines.

    ``decompress_cycles_per_byte`` is charged per *output* (uncompressed)
    byte; ``compress_cycles_per_byte`` per input byte; ``fixed`` cycles are
    charged once per operation (table setup, handler entry).
    """

    decompress_cycles_per_byte: float
    compress_cycles_per_byte: float
    fixed: int = 20

    def decompress_latency(self, uncompressed_size: int) -> int:
        """Cycles to decompress a block of ``uncompressed_size`` bytes."""
        return self.fixed + int(
            round(self.decompress_cycles_per_byte * uncompressed_size)
        )

    def compress_latency(self, uncompressed_size: int) -> int:
        """Cycles to compress a block of ``uncompressed_size`` bytes."""
        return self.fixed + int(
            round(self.compress_cycles_per_byte * uncompressed_size)
        )


class Codec(abc.ABC):
    """Abstract lossless codec over byte strings.

    Subclasses must guarantee ``decompress(compress(data)) == data`` for all
    byte strings (the property-based tests enforce this).
    """

    #: Registry key; subclasses override.
    name: str = "abstract"

    #: Cycle-cost model used by the simulator.
    costs = CodecCosts(
        decompress_cycles_per_byte=4.0, compress_cycles_per_byte=8.0
    )

    @abc.abstractmethod
    def compress(self, data: bytes) -> bytes:
        """Compress ``data``; must be invertible by :meth:`decompress`."""

    @abc.abstractmethod
    def decompress(self, payload: bytes) -> bytes:
        """Invert :meth:`compress`; raises :class:`CodecError` on bad input."""

    def ratio(self, data: bytes) -> float:
        """Compressed/original size ratio for ``data`` (lower is better)."""
        if not data:
            return 1.0
        return len(self.compress(data)) / len(data)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class NullCodec(Codec):
    """Identity codec — the "no compression" baseline.

    Zero latency: fetching "compressed" code costs nothing extra, and the
    image is full size.  Used by the never-compress baseline in E6.
    """

    name = "null"
    costs = CodecCosts(
        decompress_cycles_per_byte=0.0, compress_cycles_per_byte=0.0, fixed=0
    )

    def compress(self, data: bytes) -> bytes:
        return bytes(data)

    def decompress(self, payload: bytes) -> bytes:
        return bytes(payload)


def compress_for_image(codec: Codec, data: bytes) -> bytes:
    """Compress a block for storage in a code image.

    Codecs that support *sized* payloads (the block table already records
    each block's uncompressed size, so the payload need not repeat it)
    expose ``compress_block``; others fall back to the self-contained
    format.
    """
    compress_block = getattr(codec, "compress_block", None)
    if compress_block is not None:
        return compress_block(data)
    return codec.compress(data)


def decompress_for_image(
    codec: Codec, payload: bytes, uncompressed_size: int
) -> bytes:
    """Invert :func:`compress_for_image` given the known block size."""
    decompress_block = getattr(codec, "decompress_block", None)
    if decompress_block is not None:
        return decompress_block(payload, uncompressed_size)
    return codec.decompress(payload)


#: The codec family, in the unified component catalog.
CODECS = Registry("codecs")


def register_codec(name: str) -> Callable[[Type[Codec]], Type[Codec]]:
    """Class decorator registering a codec under ``name``."""
    return CODECS.register(name)


def is_pipeline_spec(name: object) -> bool:
    """True when ``name`` is written as a layered-pipeline spec
    (compact ``"delta|huffman"`` form, a JSON object string, or a
    dict) rather than a flat codec name."""
    if isinstance(name, dict):
        return True
    return isinstance(name, str) and (
        "|" in name or name.lstrip().startswith("{")
    )


def resolve_codec_spec(name: str) -> str:
    """Canonicalize a codec name or pipeline spec.

    Flat names pass through unchanged (after a registry check); both
    pipeline spec forms collapse to the canonical compact string — the
    one name configs, assignment maps, and store fingerprints carry.
    Raises :class:`CodecError` for unknown names and malformed specs.
    """
    if is_pipeline_spec(name):
        from .pipeline import parse_pipeline_spec

        return parse_pipeline_spec(name).compact
    if name in CODECS:
        return name
    raise CodecError(
        f"unknown codec '{name}'; available: {CODECS.names()} "
        f"(or a pipeline spec such as 'delta|huffman')"
    )


def is_known_codec(name: str) -> bool:
    """True when ``name`` resolves to a flat codec or a valid pipeline."""
    try:
        resolve_codec_spec(name)
    except CodecError:
        return False
    return True


def get_codec(name: str) -> Codec:
    """Instantiate the codec ``name`` refers to.

    Flat names come from the registry; pipeline specs (either form)
    build a :class:`~repro.compress.pipeline.PipelineCodec`.  Raises
    ``KeyError`` with the list of known codecs for unknown flat names
    and :class:`CodecError` for malformed pipeline specs.
    """
    if is_pipeline_spec(name):
        from .pipeline import PipelineCodec, parse_pipeline_spec

        spec = parse_pipeline_spec(name)
        if not spec.layers:  # a JSON spec with zero layers is flat
            return CODECS.create(spec.entropy)
        return PipelineCodec(spec)
    return CODECS.create(name)


def available_codecs() -> List[str]:
    """Names of all registered flat codecs (pipeline specs are open-
    ended and enumerated separately; see
    :func:`repro.compress.pipeline.available_pipelines`)."""
    return CODECS.names()


register_codec("null")(NullCodec)
