"""Layered codec pipelines: transform layers feeding an entropy stage.

A pipeline composes zero or more :mod:`~repro.compress.transforms`
layers with one flat entropy codec, described declaratively in either
of two equivalent spec forms:

* compact string — ``"delta|huffman"``, ``"stride:4|mtf|lzw"`` (the
  last segment is the entropy codec, everything before it a transform,
  parameters attached with colons);
* JSON — ``{"layers": ["delta", {"kind": "stride", "params": [4]}],
  "entropy": "lzw"}`` (accepted as a dict or a JSON string).

Both parse into a canonical :class:`PipelineSpec`; the canonical
*compact* string is the pipeline's codec name everywhere — config
fields, assignment maps, store fingerprints, CLI ``--codec`` — so two
spellings of the same pipeline always unify.
:func:`~repro.compress.codec.get_codec` dispatches any pipeline spec to
:class:`PipelineCodec` transparently; a curated candidate pool is
pre-registered in the catalogued :data:`PIPELINES` registry at import
(deterministically, so store fingerprints stay stable) and drives the
``pipeline-search`` assignment policy.

Two payload formats, mirroring the shared-model codecs:

* the self-contained **transport format** (:meth:`PipelineCodec.compress`)
  carries a versioned tagged header — magic, version, CRC-32 of the
  original bytes, then each layer's kind and parameters and the entropy
  codec's name — so decode is self-describing and truncation or
  corruption raises :class:`PipelineError` instead of returning
  garbage (the onion-container idea of the related framework's
  versioned kind-tagged encodings);
* the sized **image format** (:meth:`PipelineCodec.compress_block`) is
  one tag byte (version + flags) plus the entropy stage's sized body —
  the block table already knows each block's size, and the image knows
  its codec, exactly like the shared-model codecs' 1-byte format.

Shared-model entropy stages are allowed (``"delta|shared-dict"``):
training forwards the transformed corpus to the entropy stage, and the
model overhead/digest delegate to it — which is what makes pipelines
competitive at basic-block sizes, where per-block headers dominate.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from typing import Any, List, Sequence, Tuple, Union

from ..registry import Registry
from .codec import (
    CODECS,
    Codec,
    CodecCosts,
    CodecError,
    compress_for_image,
    decompress_for_image,
)
from .transforms import TRANSFORMS, Transform

#: Transport-format framing.
_MAGIC = 0xD5
_VERSION = 1

#: Sized-format framing: high nibble version, low nibble flags.
_BLOCK_VERSION = 1
_FLAG_EXPLICIT_LENGTH = 0x01


class PipelineError(CodecError):
    """Raised for malformed pipeline specs and undecodable payloads."""


@dataclass(frozen=True)
class PipelineSpec:
    """A parsed, canonical pipeline description.

    ``layers`` is a tuple of ``(kind, params)`` pairs referencing the
    :data:`~repro.compress.transforms.TRANSFORMS` registry; ``entropy``
    is a flat codec name.  Hashable, so specs can key caches directly.
    """

    layers: Tuple[Tuple[str, Tuple[int, ...]], ...]
    entropy: str

    @property
    def compact(self) -> str:
        """The canonical compact string (``"delta|stride:4|lzw"``).

        With zero layers this is just the flat entropy codec name.
        """
        segments = [
            kind + (":" + ":".join(str(p) for p in params)
                    if params else "")
            for kind, params in self.layers
        ]
        segments.append(self.entropy)
        return "|".join(segments)

    def to_json(self) -> "dict[str, Any]":
        """The canonical JSON form (layer segments + entropy name)."""
        return {
            "layers": [
                kind + (":" + ":".join(str(p) for p in params)
                        if params else "")
                for kind, params in self.layers
            ],
            "entropy": self.entropy,
        }


def is_pipeline_spec(name: Any) -> bool:
    """True when ``name`` is written as a pipeline spec (compact form
    with ``|`` separators, a JSON object string, or a dict)."""
    if isinstance(name, dict):
        return True
    return isinstance(name, str) and (
        "|" in name or name.lstrip().startswith("{")
    )


def _parse_layer(token: Any) -> Tuple[str, Tuple[int, ...]]:
    """One layer segment -> validated ``(kind, params)``."""
    if isinstance(token, dict):
        kind = token.get("kind")
        raw_params = token.get("params", [])
        if not isinstance(kind, str) or not kind:
            raise PipelineError(
                f"pipeline layer object needs a 'kind' string, "
                f"got {token!r}"
            )
        if not isinstance(raw_params, (list, tuple)):
            raise PipelineError(
                f"pipeline layer 'params' must be a list, "
                f"got {raw_params!r}"
            )
        parts = [kind, *raw_params]
    elif isinstance(token, str):
        parts = [p.strip() for p in token.split(":")]
    else:
        raise PipelineError(
            f"pipeline layer must be a string or object, got {token!r}"
        )
    kind = str(parts[0])
    if not kind:
        raise PipelineError("empty transform name in pipeline spec")
    if kind not in TRANSFORMS:
        raise PipelineError(
            f"unknown transform '{kind}'; "
            f"available: {TRANSFORMS.names()}"
        )
    params: List[int] = []
    for raw in parts[1:]:
        try:
            value = int(raw)
        except (TypeError, ValueError):
            raise PipelineError(
                f"transform '{kind}' parameter {raw!r} is not an "
                f"integer"
            ) from None
        params.append(value)
    return kind, tuple(params)


def _validate(
    layers: Sequence[Tuple[str, Tuple[int, ...]]], entropy: str
) -> PipelineSpec:
    if not isinstance(entropy, str) or not entropy:
        raise PipelineError(
            f"pipeline entropy stage must be a codec name, "
            f"got {entropy!r}"
        )
    if "|" in entropy:
        raise PipelineError(
            f"pipeline entropy stage '{entropy}' must be a flat "
            f"codec, not another pipeline"
        )
    if entropy not in CODECS:
        raise PipelineError(
            f"unknown entropy codec '{entropy}'; "
            f"available: {CODECS.names()}"
        )
    for kind, params in layers:
        if kind not in TRANSFORMS:
            # Reached from payload headers; spec parsing rejects the
            # name earlier with the same message.
            raise PipelineError(
                f"unknown transform '{kind}'; "
                f"available: {TRANSFORMS.names()}"
            )
        try:
            TRANSFORMS.create(kind, *params)
        except (TypeError, ValueError) as exc:
            raise PipelineError(
                f"invalid parameters {params!r} for transform "
                f"'{kind}': {exc}"
            ) from None
    if len(layers) > 15:
        raise PipelineError(
            f"pipelines support at most 15 layers, got {len(layers)}"
        )
    return PipelineSpec(layers=tuple(layers), entropy=entropy)


def parse_pipeline_spec(
    spec: Union[str, "dict[str, Any]"]
) -> PipelineSpec:
    """Parse either spec form into a canonical :class:`PipelineSpec`.

    Raises :class:`PipelineError` (a :class:`CodecError`) with a
    message naming the offending segment for every malformed input.
    """
    if isinstance(spec, dict):
        return _parse_json(spec)
    if not isinstance(spec, str) or not spec.strip():
        raise PipelineError(
            f"pipeline spec must be a non-empty string or object, "
            f"got {spec!r}"
        )
    text = spec.strip()
    if text.startswith("{"):
        try:
            obj = json.loads(text)
        except json.JSONDecodeError as exc:
            raise PipelineError(
                f"pipeline spec is not valid JSON: {exc}"
            ) from None
        if not isinstance(obj, dict):
            raise PipelineError(
                f"JSON pipeline spec must be an object, got {obj!r}"
            )
        return _parse_json(obj)
    segments = [s.strip() for s in text.split("|")]
    if any(not s for s in segments):
        raise PipelineError(
            f"pipeline spec {spec!r} has an empty segment"
        )
    layers = [_parse_layer(s) for s in segments[:-1]]
    return _validate(layers, segments[-1])


def _parse_json(obj: "dict[str, Any]") -> PipelineSpec:
    unknown = set(obj) - {"layers", "entropy"}
    if unknown:
        raise PipelineError(
            f"unknown pipeline spec keys {sorted(unknown)}; "
            f"expected 'layers' and 'entropy'"
        )
    raw_layers = obj.get("layers", [])
    if not isinstance(raw_layers, (list, tuple)):
        raise PipelineError(
            f"pipeline 'layers' must be a list, got {raw_layers!r}"
        )
    entropy = obj.get("entropy")
    layers = [_parse_layer(token) for token in raw_layers]
    return _validate(layers, entropy)


class PipelineCodec(Codec):
    """Transform layers composed in front of a flat entropy codec.

    Instances behave exactly like any registered codec — ``name`` is
    the canonical compact spec, ``costs`` sums the stages' cost models,
    and the shared-model protocol (``train``/``is_trained``/
    ``model_overhead_bytes``/``model_digest``) delegates to the entropy
    stage (training on forward-transformed samples).
    """

    def __init__(
        self, spec: Union[str, "dict[str, Any]", PipelineSpec]
    ) -> None:
        if not isinstance(spec, PipelineSpec):
            spec = parse_pipeline_spec(spec)
        self.spec = spec
        self.transforms: Tuple[Transform, ...] = tuple(
            TRANSFORMS.create(kind, *params)
            for kind, params in spec.layers
        )
        self.entropy: Codec = CODECS.create(spec.entropy)
        self.name = spec.compact
        self.length_preserving = all(
            t.length_preserving for t in self.transforms
        )
        entropy_costs = self.entropy.costs
        self.costs = CodecCosts(
            decompress_cycles_per_byte=(
                entropy_costs.decompress_cycles_per_byte
                + sum(t.inverse_cycles_per_byte for t in self.transforms)
            ),
            compress_cycles_per_byte=(
                entropy_costs.compress_cycles_per_byte
                + sum(t.forward_cycles_per_byte for t in self.transforms)
            ),
            fixed=entropy_costs.fixed
            + sum(t.fixed_cycles for t in self.transforms),
        )

    # ------------------------------------------------------------------
    # Shared-model protocol (delegated to the entropy stage)
    # ------------------------------------------------------------------

    @property
    def is_trained(self) -> bool:
        """True unless the entropy stage still needs training."""
        return bool(getattr(self.entropy, "is_trained", True))

    @property
    def model_overhead_bytes(self) -> int:
        """The entropy stage's shared-model bytes (0 for per-block
        entropy codecs)."""
        return int(getattr(self.entropy, "model_overhead_bytes", 0))

    def train(self, samples: Sequence[bytes]) -> None:
        """Train a shared-model entropy stage on the *transformed*
        corpus (no-op for per-block entropy codecs)."""
        train = getattr(self.entropy, "train", None)
        if train is not None:
            train([self._forward(sample) for sample in samples])

    def model_digest(self) -> str:
        """Content digest of the trained pipeline: the spec plus the
        entropy stage's model digest."""
        import hashlib

        hasher = hashlib.sha256(self.name.encode("utf-8"))
        digest = getattr(self.entropy, "model_digest", None)
        if digest is not None:
            hasher.update(digest().encode("ascii"))
        return hasher.hexdigest()

    # ------------------------------------------------------------------
    # The stage chain
    # ------------------------------------------------------------------

    def _forward(self, data: bytes) -> bytes:
        for transform in self.transforms:
            data = transform.forward(data)
        return data

    def _inverse(self, data: bytes) -> bytes:
        for transform in reversed(self.transforms):
            data = transform.inverse(data)
        return data

    # ------------------------------------------------------------------
    # Self-contained transport format (versioned tagged header)
    # ------------------------------------------------------------------

    def compress(self, data: bytes) -> bytes:
        transformed = self._forward(data)
        body = self.entropy.compress(transformed)
        header = bytearray((_MAGIC, _VERSION))
        header += (zlib.crc32(data) & 0xFFFFFFFF).to_bytes(4, "big")
        header.append(len(self.spec.layers))
        for kind, params in self.spec.layers:
            encoded = kind.encode("ascii")
            header.append(len(encoded))
            header += encoded
            header.append(len(params))
            for param in params:
                if not 0 <= param <= 0xFFFF:
                    raise PipelineError(
                        f"transform parameter {param} does not fit "
                        f"the payload header (u16)"
                    )
                header += param.to_bytes(2, "big")
        encoded = self.spec.entropy.encode("ascii")
        header.append(len(encoded))
        header += encoded
        return bytes(header) + body

    def decompress(self, payload: bytes) -> bytes:
        spec, crc, body = parse_pipeline_payload(payload)
        if spec == self.spec:
            entropy, transforms = self.entropy, self.transforms
        else:
            # Self-describing decode: rebuild the stages the header
            # names.  A shared-model entropy stage rebuilt this way is
            # untrained and raises CodecError below, like the flat
            # shared codecs do for foreign instances.
            other = PipelineCodec(spec)
            entropy, transforms = other.entropy, other.transforms
        transformed = entropy.decompress(body)
        data = transformed
        for transform in reversed(transforms):
            data = transform.inverse(data)
        if (zlib.crc32(data) & 0xFFFFFFFF) != crc:
            raise PipelineError(
                f"pipeline '{spec.compact}' payload corrupted "
                f"(CRC mismatch)"
            )
        return data

    # ------------------------------------------------------------------
    # Sized image format (the block table knows the length)
    # ------------------------------------------------------------------

    def compress_block(self, data: bytes) -> bytes:
        """Compress for a code image: ``[tag][entropy sized body]``.

        The tag byte carries the format version and, for pipelines with
        a non-length-preserving layer, a flag that a 2-byte transformed
        length follows (length-preserving pipelines recover it from the
        block table for free).
        """
        transformed = self._forward(data)
        body = compress_for_image(self.entropy, transformed)
        if self.length_preserving:
            return bytes(((_BLOCK_VERSION << 4),)) + body
        if len(transformed) > 0xFFFF:
            raise PipelineError(
                f"pipeline block transforms to {len(transformed)} "
                f"bytes, beyond the sized format's 64 KiB limit"
            )
        return (
            bytes(((_BLOCK_VERSION << 4) | _FLAG_EXPLICIT_LENGTH,))
            + len(transformed).to_bytes(2, "big")
            + body
        )

    def decompress_block(self, payload: bytes, length: int) -> bytes:
        """Invert :meth:`compress_block` given the block's known size."""
        if not payload:
            raise PipelineError("empty pipeline block payload")
        tag = payload[0]
        if tag >> 4 != _BLOCK_VERSION:
            raise PipelineError(
                f"unsupported pipeline block version {tag >> 4}"
            )
        position = 1
        if tag & _FLAG_EXPLICIT_LENGTH:
            if len(payload) < 3:
                raise PipelineError(
                    "pipeline block payload truncated in length field"
                )
            transformed_length = int.from_bytes(payload[1:3], "big")
            position = 3
        else:
            transformed_length = length
        transformed = decompress_for_image(
            self.entropy, payload[position:], transformed_length
        )
        data = self._inverse(transformed)
        if len(data) != length:
            raise PipelineError(
                f"pipeline block decoded to {len(data)} bytes, "
                f"expected {length}"
            )
        return data


def parse_pipeline_payload(
    payload: bytes,
) -> Tuple[PipelineSpec, int, bytes]:
    """Parse a transport-format payload's tagged header.

    Returns ``(spec, crc32, entropy body)``; raises
    :class:`PipelineError` on truncation, a bad magic/version, or an
    unknown layer/entropy name — never returns garbage.
    """
    view = bytes(payload)

    def take(n: int, what: str) -> bytes:
        nonlocal position
        if position + n > len(view):
            raise PipelineError(
                f"pipeline payload truncated in {what}"
            )
        chunk = view[position:position + n]
        position += n
        return chunk

    position = 0
    magic, version = take(2, "framing")
    if magic != _MAGIC:
        raise PipelineError(
            f"not a pipeline payload (magic {magic:#x})"
        )
    if version != _VERSION:
        raise PipelineError(
            f"unsupported pipeline payload version {version}"
        )
    crc = int.from_bytes(take(4, "checksum"), "big")
    (layer_count,) = take(1, "layer count")
    layers: List[Tuple[str, Tuple[int, ...]]] = []
    for _ in range(layer_count):
        (kind_length,) = take(1, "layer kind length")
        try:
            kind = take(kind_length, "layer kind").decode("ascii")
        except UnicodeDecodeError:
            raise PipelineError(
                "pipeline payload layer kind is not ASCII"
            ) from None
        (param_count,) = take(1, "layer parameter count")
        params = tuple(
            int.from_bytes(take(2, "layer parameter"), "big")
            for _ in range(param_count)
        )
        layers.append((kind, params))
    (entropy_length,) = take(1, "entropy name length")
    try:
        entropy = take(entropy_length, "entropy name").decode("ascii")
    except UnicodeDecodeError:
        raise PipelineError(
            "pipeline payload entropy name is not ASCII"
        ) from None
    spec = _validate(layers, entropy)
    return spec, crc, view[position:]


# ----------------------------------------------------------------------
# The curated pipeline catalog
# ----------------------------------------------------------------------

#: The curated composition pool the ``pipeline-search`` assignment
#: policy explores, most promising first.  Shared-model entropy stages
#: dominate because at basic-block sizes per-block headers swamp any
#: transform gains; per-block entropy pipelines close the pool for
#: function-granularity units.
CANDIDATE_PIPELINES: Tuple[str, ...] = (
    "stride:4|shared-dict",
    "delta|shared-dict",
    "stride:4|shared-huffman",
    "delta|shared-fields",
    "mtf|shared-huffman",
    "dict:16|huffman",
    "delta|lzw",
)

#: Pipelines, in the unified component catalog: the curated pool is
#: registered at import (deterministically — store fingerprints see a
#: stable catalog), each under its canonical compact name, mapping to
#: a zero-argument :class:`PipelineCodec` factory.
PIPELINES = Registry("pipelines", item="pipeline")


# The candidate pool references built-in entropy codecs; importing the
# codec modules here (not relying on package import order) guarantees
# they are registered before the pool validates against the registry.
from . import dictionary  # noqa: E402,F401
from . import huffman  # noqa: E402,F401
from . import lz77  # noqa: E402,F401
from . import lzw  # noqa: E402,F401
from . import rle  # noqa: E402,F401
from . import shared  # noqa: E402,F401


def _register_candidates() -> None:
    for raw in CANDIDATE_PIPELINES:
        spec = parse_pipeline_spec(raw)

        def factory(spec: PipelineSpec = spec) -> PipelineCodec:
            return PipelineCodec(spec)

        PIPELINES.add(spec.compact, factory)


_register_candidates()


def available_pipelines() -> List[str]:
    """Canonical names of the registered (curated) pipelines."""
    return PIPELINES.names(sort=False)
