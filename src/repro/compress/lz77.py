"""LZ77 codec with a small sliding window.

A classic (offset, length, literal) scheme sized for basic blocks: 4 KiB
window, 3..66 byte matches, hash-chain match finder.  Token stream:

* literal:  flag bit 0, then 8 bits of the byte;
* match:    flag bit 1, then 12-bit offset-1, then 6-bit (length-3).

Payload layout: ``[1 byte tag][4 bytes original length][bit stream]`` with
the usual raw-passthrough fallback.
"""

from __future__ import annotations

from typing import Dict, List

from .bitio import BitIOError, BitReader, BitWriter
from .codec import Codec, CodecCosts, CodecError, register_codec

_TAG_RAW = 0
_TAG_LZ = 1

_WINDOW = 4096
_MIN_MATCH = 3
_MAX_MATCH = _MIN_MATCH + 63  # 6-bit length field
_OFFSET_BITS = 12
_LENGTH_BITS = 6


@register_codec("lz77")
class LZ77Codec(Codec):
    """Sliding-window LZ77 with greedy hash-chain matching."""

    costs = CodecCosts(
        decompress_cycles_per_byte=2.0,
        compress_cycles_per_byte=14.0,
        fixed=30,
    )

    def compress(self, data: bytes) -> bytes:
        if not data:
            return bytes((_TAG_RAW, 0, 0, 0, 0))
        writer = BitWriter()
        chains: Dict[bytes, List[int]] = {}
        position = 0
        length = len(data)
        while position < length:
            best_length = 0
            best_offset = 0
            if position + _MIN_MATCH <= length:
                key = data[position : position + _MIN_MATCH]
                for candidate in reversed(chains.get(key, ())):
                    if position - candidate > _WINDOW:
                        break
                    match_length = _MIN_MATCH
                    limit = min(_MAX_MATCH, length - position)
                    while (
                        match_length < limit
                        and data[candidate + match_length]
                        == data[position + match_length]
                    ):
                        match_length += 1
                    if match_length > best_length:
                        best_length = match_length
                        best_offset = position - candidate
                        if match_length == _MAX_MATCH:
                            break
            if best_length >= _MIN_MATCH:
                # Flag, offset and length fused into one 19-bit field
                # (identical bits to flag-then-field writes, one call).
                writer.write_bits(
                    (1 << (_OFFSET_BITS + _LENGTH_BITS))
                    | ((best_offset - 1) << _LENGTH_BITS)
                    | (best_length - _MIN_MATCH),
                    1 + _OFFSET_BITS + _LENGTH_BITS,
                )
                advance = best_length
            else:
                # Flag bit 0 + literal byte = one 9-bit field.
                writer.write_bits(data[position], 9)
                advance = 1
            for step in range(advance):
                index = position + step
                if index + _MIN_MATCH <= length:
                    chains.setdefault(
                        data[index : index + _MIN_MATCH], []
                    ).append(index)
            position += advance

        payload = (
            bytes((_TAG_LZ,))
            + len(data).to_bytes(4, "big")
            + writer.getvalue()
        )
        if len(payload) >= len(data) + 5:
            return bytes((_TAG_RAW,)) + len(data).to_bytes(4, "big") + data
        return payload

    def decompress(self, payload: bytes) -> bytes:
        if len(payload) < 5:
            raise CodecError("truncated lz77 header")
        tag = payload[0]
        original_length = int.from_bytes(payload[1:5], "big")
        body = payload[5:]
        if tag == _TAG_RAW:
            if len(body) < original_length:
                raise CodecError("raw body truncated")
            return body[:original_length]
        if tag != _TAG_LZ:
            raise CodecError(f"unknown lz77 payload tag {tag}")

        reader = BitReader(body)
        out = bytearray()
        try:
            while len(out) < original_length:
                if reader.read_bit():
                    offset = reader.read_bits(_OFFSET_BITS) + 1
                    match_length = reader.read_bits(_LENGTH_BITS) + _MIN_MATCH
                    if offset > len(out):
                        raise CodecError(
                            f"lz77 offset {offset} beyond output "
                            f"({len(out)} bytes)"
                        )
                    start = len(out) - offset
                    if offset >= match_length:
                        # Non-overlapping match: one slice copy.
                        out += out[start : start + match_length]
                    else:
                        for step in range(match_length):
                            out.append(out[start + step])
                else:
                    out.append(reader.read_bits(8))
        except BitIOError as exc:
            raise CodecError(f"lz77 stream truncated: {exc}") from exc
        return bytes(out)
