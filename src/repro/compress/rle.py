"""Run-length and move-to-front codecs.

RLE alone is weak on code but is the cheapest possible decompressor — it
anchors the latency end of the E4 codec ablation.  MTF+RLE models the
"transform then cheap-code" family; on register-dense instruction bytes it
lands between RLE and Huffman.
"""

from __future__ import annotations

from typing import List

from .codec import Codec, CodecCosts, CodecError, register_codec

_TAG_RAW = 0
_TAG_RLE = 1


@register_codec("rle")
class RLECodec(Codec):
    """Byte run-length coding: ``[byte][count]`` pairs.

    Runs cap at 255; the raw-passthrough tag keeps run-free inputs from
    doubling in size.
    """

    costs = CodecCosts(
        decompress_cycles_per_byte=1.0,
        compress_cycles_per_byte=2.0,
        fixed=10,
    )

    def compress(self, data: bytes) -> bytes:
        if not data:
            return bytes((_TAG_RAW, 0, 0, 0, 0))
        out = bytearray((_TAG_RLE,))
        out += len(data).to_bytes(4, "big")
        position = 0
        while position < len(data):
            byte = data[position]
            run = 1
            while (
                position + run < len(data)
                and data[position + run] == byte
                and run < 255
            ):
                run += 1
            out.append(byte)
            out.append(run)
            position += run
        if len(out) >= len(data) + 5:
            return bytes((_TAG_RAW,)) + len(data).to_bytes(4, "big") + data
        return bytes(out)

    def decompress(self, payload: bytes) -> bytes:
        if len(payload) < 5:
            raise CodecError("truncated rle header")
        tag = payload[0]
        original_length = int.from_bytes(payload[1:5], "big")
        body = payload[5:]
        if tag == _TAG_RAW:
            if len(body) < original_length:
                raise CodecError("raw body truncated")
            return body[:original_length]
        if tag != _TAG_RLE:
            raise CodecError(f"unknown rle payload tag {tag}")
        if len(body) % 2:
            raise CodecError("rle body must be (byte, count) pairs")
        out = bytearray()
        for index in range(0, len(body), 2):
            byte, run = body[index], body[index + 1]
            if run == 0:
                raise CodecError("zero-length rle run")
            out += bytes((byte,)) * run
        if len(out) != original_length:
            raise CodecError(
                f"rle length mismatch: expected {original_length}, got "
                f"{len(out)}"
            )
        return bytes(out)


@register_codec("mtf-rle")
class MTFRLECodec(Codec):
    """Move-to-front transform followed by RLE on the rank stream.

    MTF concentrates frequently recurring bytes (opcodes, register pairs)
    into small ranks with long zero runs, which RLE then collapses.
    """

    costs = CodecCosts(
        decompress_cycles_per_byte=2.5,
        compress_cycles_per_byte=4.0,
        fixed=15,
    )

    def __init__(self) -> None:
        self._rle = RLECodec()

    @staticmethod
    def _mtf_encode(data: bytes) -> bytes:
        alphabet: List[int] = list(range(256))
        out = bytearray()
        for byte in data:
            rank = alphabet.index(byte)
            out.append(rank)
            alphabet.pop(rank)
            alphabet.insert(0, byte)
        return bytes(out)

    @staticmethod
    def _mtf_decode(ranks: bytes) -> bytes:
        alphabet: List[int] = list(range(256))
        out = bytearray()
        for rank in ranks:
            byte = alphabet[rank]
            out.append(byte)
            alphabet.pop(rank)
            alphabet.insert(0, byte)
        return bytes(out)

    def compress(self, data: bytes) -> bytes:
        return self._rle.compress(self._mtf_encode(data))

    def decompress(self, payload: bytes) -> bytes:
        return self._mtf_decode(self._rle.decompress(payload))
