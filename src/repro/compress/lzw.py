"""LZW codec with variable-width codes.

Dictionary coders adapt to the repeated instruction sequences embedded
binaries are full of.  This implementation uses the classic greedy LZW with
codes growing from 9 bits as the dictionary fills, capped at 16 bits (the
dictionary freezes at 65536 entries, appropriate for basic-block-sized
inputs).

Payload layout: ``[1 byte tag][4 bytes original length][bit stream]`` with a
raw-passthrough tag for incompressible input.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .bitio import BitIOError, BitReader, BitWriter
from .codec import Codec, CodecCosts, CodecError, register_codec

_TAG_RAW = 0
_TAG_LZW = 1

_INITIAL_WIDTH = 9
_MAX_WIDTH = 16


@register_codec("lzw")
class LZWCodec(Codec):
    """Variable-width LZW over bytes."""

    costs = CodecCosts(
        decompress_cycles_per_byte=3.0,
        compress_cycles_per_byte=10.0,
        fixed=40,
    )

    def compress(self, data: bytes) -> bytes:
        if not data:
            return bytes((_TAG_RAW, 0, 0, 0, 0))
        table: Dict[bytes, int] = {bytes((i,)): i for i in range(256)}
        next_code = 256
        width = _INITIAL_WIDTH
        writer = BitWriter()

        current = bytes((data[0],))
        for byte in data[1:]:
            extended = current + bytes((byte,))
            if extended in table:
                current = extended
                continue
            writer.write_bits(table[current], width)
            if next_code < (1 << _MAX_WIDTH):
                table[extended] = next_code
                next_code += 1
                if next_code > (1 << width) and width < _MAX_WIDTH:
                    width += 1
            current = bytes((byte,))
        writer.write_bits(table[current], width)

        payload = (
            bytes((_TAG_LZW,))
            + len(data).to_bytes(4, "big")
            + writer.getvalue()
        )
        if len(payload) >= len(data) + 5:
            return bytes((_TAG_RAW,)) + len(data).to_bytes(4, "big") + data
        return payload

    def decompress(self, payload: bytes) -> bytes:
        if not payload:
            raise CodecError("empty lzw payload")
        tag = payload[0]
        if len(payload) < 5:
            raise CodecError("truncated lzw header")
        original_length = int.from_bytes(payload[1:5], "big")
        body = payload[5:]
        if tag == _TAG_RAW:
            if len(body) < original_length:
                raise CodecError("raw body truncated")
            return body[:original_length]
        if tag != _TAG_LZW:
            raise CodecError(f"unknown lzw payload tag {tag}")
        if original_length == 0:
            return b""

        table: List[bytes] = [bytes((i,)) for i in range(256)]
        width = _INITIAL_WIDTH
        reader = BitReader(body)
        out = bytearray()
        try:
            code = reader.read_bits(width)
        except BitIOError as exc:
            raise CodecError(f"lzw stream truncated: {exc}") from exc
        if code >= len(table):
            raise CodecError(f"invalid initial lzw code {code}")
        previous = table[code]
        out += previous

        # Codes are fetched in bulk runs: the width is a pure function of
        # the table length (it bumps exactly when len(table) + 1 exceeds
        # the current capacity), so the number of remaining same-width
        # codes is known in advance and each run is one read_run call.
        codes: List[int] = []
        cursor = 0
        while len(out) < original_length:
            # Mirror the encoder's width growth: at the encoder's matching
            # emission its next_code equals our len(table) + 1, and it has
            # bumped the width whenever that exceeds the current capacity.
            next_code = len(table) + 1
            if next_code > (1 << width) and width < _MAX_WIDTH:
                width += 1
            if cursor == len(codes):
                run = (
                    (1 << width) - len(table)
                    if width < _MAX_WIDTH else 4096
                )
                run = min(run, reader.bits_remaining // width)
                if run <= 0:
                    raise CodecError(
                        "lzw stream truncated: bit stream exhausted"
                    )
                codes = reader.read_run(width, run)
                cursor = 0
            code = codes[cursor]
            cursor += 1
            if code < len(table):
                entry = table[code]
            elif code == len(table):
                entry = previous + previous[:1]
            else:
                raise CodecError(f"invalid lzw code {code}")
            out += entry
            if len(table) < (1 << _MAX_WIDTH):
                table.append(previous + entry[:1])
            previous = entry
        if len(out) != original_length:
            raise CodecError(
                f"lzw length mismatch: expected {original_length}, got "
                f"{len(out)}"
            )
        return bytes(out)
