"""Compression statistics helpers used by the E4 codec ablation.

Everything here is measurement, not policy: given blocks and codecs it
reports sizes, ratios, and modelled latencies in one table-friendly shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from ..cfg.basic_block import BasicBlock
from ..isa.encoding import encode_program
from .codec import Codec, compress_for_image, get_codec


@dataclass(frozen=True)
class BlockCompressionStats:
    """Compression outcome for a single basic block under one codec."""

    block_id: int
    original_size: int
    compressed_size: int
    decompress_cycles: int
    compress_cycles: int

    @property
    def ratio(self) -> float:
        """Compressed / original size (lower is better)."""
        if self.original_size == 0:
            return 1.0
        return self.compressed_size / self.original_size

    @property
    def saved_bytes(self) -> int:
        """Bytes saved versus the uncompressed block."""
        return self.original_size - self.compressed_size


@dataclass(frozen=True)
class ImageCompressionStats:
    """Aggregate compression outcome across all blocks of a program."""

    codec_name: str
    per_block: List[BlockCompressionStats]
    model_overhead: int = 0

    @property
    def original_size(self) -> int:
        """Total uncompressed code bytes."""
        return sum(s.original_size for s in self.per_block)

    @property
    def compressed_size(self) -> int:
        """Total compressed code bytes (shared model included)."""
        return (
            sum(s.compressed_size for s in self.per_block)
            + self.model_overhead
        )

    @property
    def ratio(self) -> float:
        """Whole-image compressed/original ratio."""
        if self.original_size == 0:
            return 1.0
        return self.compressed_size / self.original_size

    @property
    def space_saving(self) -> float:
        """Fraction of memory saved: ``1 - ratio``."""
        return 1.0 - self.ratio

    @property
    def mean_decompress_cycles(self) -> float:
        """Mean modelled decompression latency per block."""
        if not self.per_block:
            return 0.0
        return sum(s.decompress_cycles for s in self.per_block) / len(
            self.per_block
        )


def block_bytes(block: BasicBlock) -> bytes:
    """Encode a basic block's instructions into their binary image."""
    return encode_program(block.instructions)


def measure_block(block: BasicBlock, codec: Codec) -> BlockCompressionStats:
    """Compress one block and record sizes plus modelled latencies."""
    data = block_bytes(block)
    compressed = compress_for_image(codec, data)
    return BlockCompressionStats(
        block_id=block.block_id,
        original_size=len(data),
        compressed_size=len(compressed),
        decompress_cycles=codec.costs.decompress_latency(len(data)),
        compress_cycles=codec.costs.compress_latency(len(data)),
    )


def measure_image(
    blocks: Sequence[BasicBlock], codec: Codec
) -> ImageCompressionStats:
    """Compress every block independently (the paper's granularity).

    Shared-model codecs are trained on the whole corpus first, and their
    model size is counted via :attr:`ImageCompressionStats.model_overhead`.
    """
    if hasattr(codec, "train") and not getattr(codec, "is_trained", True):
        codec.train([block_bytes(block) for block in blocks])
    return ImageCompressionStats(
        codec_name=codec.name,
        per_block=[measure_block(block, codec) for block in blocks],
        model_overhead=int(getattr(codec, "model_overhead_bytes", 0)),
    )


def compare_codecs(
    blocks: Sequence[BasicBlock], codec_names: Iterable[str]
) -> Dict[str, ImageCompressionStats]:
    """Measure ``blocks`` under each named codec (E4 ablation core)."""
    return {
        name: measure_image(blocks, get_codec(name))
        for name in codec_names
    }
