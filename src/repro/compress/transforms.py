"""Byte-stream transform layers for layered codec pipelines.

A *transform* is a lossless, cheap byte-string bijection applied ahead of
an entropy stage: it does not compress by itself (some even expand), it
reshapes the data so the entropy coder's model fits better — byte deltas
turn slowly varying immediates into near-zero symbols, move-to-front
turns local repetition into small indexes, stride regrouping collects
same-position instruction bytes, and word-dictionary substitution folds
repeated 4-byte encodings into 1-byte tokens.  The "onion" model:
:class:`~repro.compress.pipeline.PipelineCodec` composes any sequence of
these layers with a flat entropy codec.

Transforms register in the catalogued :data:`TRANSFORMS` registry, so
``repro list`` enumerates them and the experiment-store catalog
signature (and therefore every cell fingerprint) sees new layer kinds.
Each transform carries its own cycle-cost contributions; a pipeline's
cost model is the sum over its layers plus the entropy stage.
"""

from __future__ import annotations

import abc
from collections import Counter
from typing import List, Tuple

from ..registry import Registry
from .codec import CodecError

#: Transform layers, in the unified component catalog.
TRANSFORMS = Registry("transforms", item="transform")

_WORD = 4

#: Escape token of the word-dictionary transform: the next 4 bytes are a
#: literal word.  Dictionary indexes therefore stop at 254 entries.
_DICT_ESCAPE = 0xFF
_DICT_MAX_ENTRIES = 254


class Transform(abc.ABC):
    """A lossless byte-string transform layer.

    ``inverse(forward(data)) == data`` must hold for every byte string
    (the pipeline property suite enforces it through whole pipelines).
    ``length_preserving`` declares that ``len(forward(data)) ==
    len(data)`` always; pipelines of only length-preserving layers skip
    the explicit transformed-length field in the sized block format.
    """

    #: Registry key; subclasses override via the register decorator.
    name: str = "abstract"

    #: Cycle-cost contributions to the pipeline cost model.
    forward_cycles_per_byte: float = 1.0
    inverse_cycles_per_byte: float = 1.0
    fixed_cycles: int = 5

    #: True when the forward output always has the input's length.
    length_preserving: bool = True

    def params(self) -> Tuple[int, ...]:
        """The constructor parameters, for specs and payload headers."""
        return ()

    @property
    def spec(self) -> str:
        """Canonical compact form: ``name`` or ``name:param[:param...]``."""
        if self.params():
            return self.name + ":" + ":".join(
                str(p) for p in self.params()
            )
        return self.name

    @abc.abstractmethod
    def forward(self, data: bytes) -> bytes:
        """Transform ``data``; must be invertible by :meth:`inverse`."""

    @abc.abstractmethod
    def inverse(self, data: bytes) -> bytes:
        """Invert :meth:`forward`; raises :class:`CodecError` on bad
        input that cannot come from any forward output."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(spec={self.spec!r})"


@TRANSFORMS.register("identity")
class IdentityTransform(Transform):
    """The no-op layer: ``"identity|X"`` byte-equals flat ``X`` bodies.

    Exists so composition identities are testable and so a pipeline spec
    can be padded without changing behaviour.
    """

    forward_cycles_per_byte = 0.0
    inverse_cycles_per_byte = 0.0
    fixed_cycles = 0

    def forward(self, data: bytes) -> bytes:
        return bytes(data)

    def inverse(self, data: bytes) -> bytes:
        return bytes(data)


@TRANSFORMS.register("delta")
class DeltaTransform(Transform):
    """Byte-wise delta modulo 256.

    Instruction words that differ only in small immediate or register
    steps become runs of near-zero bytes — a sharper distribution for
    any byte-entropy stage.
    """

    forward_cycles_per_byte = 0.5
    inverse_cycles_per_byte = 0.5
    fixed_cycles = 5

    def forward(self, data: bytes) -> bytes:
        out = bytearray(len(data))
        previous = 0
        for i, byte in enumerate(data):
            out[i] = (byte - previous) & 0xFF
            previous = byte
        return bytes(out)

    def inverse(self, data: bytes) -> bytes:
        out = bytearray(len(data))
        previous = 0
        for i, byte in enumerate(data):
            previous = (byte + previous) & 0xFF
            out[i] = previous
        return bytes(out)


@TRANSFORMS.register("mtf")
class MoveToFrontTransform(Transform):
    """Move-to-front recoding over the byte alphabet.

    Locally repeated bytes become small indexes, concentrating the
    entropy stage's probability mass near zero.
    """

    forward_cycles_per_byte = 2.0
    inverse_cycles_per_byte = 2.0
    fixed_cycles = 10

    def forward(self, data: bytes) -> bytes:
        table = list(range(256))
        out = bytearray(len(data))
        for i, byte in enumerate(data):
            index = table.index(byte)
            out[i] = index
            if index:
                del table[index]
                table.insert(0, byte)
        return bytes(out)

    def inverse(self, data: bytes) -> bytes:
        table = list(range(256))
        out = bytearray(len(data))
        for i, index in enumerate(data):
            byte = table[index]
            out[i] = byte
            if index:
                del table[index]
                table.insert(0, byte)
        return bytes(out)


@TRANSFORMS.register("stride")
class StrideTransform(Transform):
    """De-interleave into ``stride`` byte planes (split/regroup).

    Fixed-width instruction streams have per-position statistics; with
    ``stride=4`` all opcode bytes land together, then all register
    bytes, and so on — the field-partitioning idea as a reusable layer
    in front of *any* entropy stage.  Length-preserving, and invertible
    from the output length alone.
    """

    forward_cycles_per_byte = 0.5
    inverse_cycles_per_byte = 0.5
    fixed_cycles = 5

    def __init__(self, stride: int = _WORD) -> None:
        stride = int(stride)
        if not 2 <= stride <= 16:
            raise ValueError(
                f"stride must be in [2, 16], got {stride}"
            )
        self.stride = stride

    def params(self) -> Tuple[int, ...]:
        return (self.stride,)

    def forward(self, data: bytes) -> bytes:
        n = self.stride
        return b"".join(data[p::n] for p in range(n))

    def inverse(self, data: bytes) -> bytes:
        n = self.stride
        length = len(data)
        out = bytearray(length)
        position = 0
        for p in range(n):
            count = (length - p + n - 1) // n if p < length else 0
            out[p::n] = data[position:position + count]
            position += count
        return bytes(out)


@TRANSFORMS.register("dict")
class WordDictTransform(Transform):
    """Per-payload 4-byte-word dictionary substitution.

    Words seen at least twice in the payload enter an embedded
    dictionary (most frequent first, up to ``max_entries`` <= 254);
    each whole word encodes as a 1-byte index or an escape token plus
    the literal word.  The header travels inside the transformed bytes,
    so the layer is self-inverting — no side channel:

    ``[u8 entry count][u8 tail length][entries x 4B]
    [tokens: index | 0xFF + literal word]...[tail bytes]``

    Not length-preserving (tiny or repeat-free payloads expand).
    """

    forward_cycles_per_byte = 1.5
    inverse_cycles_per_byte = 1.0
    fixed_cycles = 10
    length_preserving = False

    def __init__(self, max_entries: int = 16) -> None:
        max_entries = int(max_entries)
        if not 1 <= max_entries <= _DICT_MAX_ENTRIES:
            raise ValueError(
                f"max_entries must be in [1, {_DICT_MAX_ENTRIES}], "
                f"got {max_entries}"
            )
        self.max_entries = max_entries

    def params(self) -> Tuple[int, ...]:
        return (self.max_entries,)

    def forward(self, data: bytes) -> bytes:
        words = [
            data[i * _WORD:(i + 1) * _WORD]
            for i in range(len(data) // _WORD)
        ]
        tail = data[len(words) * _WORD:]
        counts: Counter = Counter(words)
        entries: List[bytes] = [
            word for word, count in counts.most_common(self.max_entries)
            if count >= 2
        ]
        index_of = {word: i for i, word in enumerate(entries)}
        out = bytearray((len(entries), len(tail)))
        for word in entries:
            out += word
        for word in words:
            index = index_of.get(word)
            if index is None:
                out.append(_DICT_ESCAPE)
                out += word
            else:
                out.append(index)
        out += tail
        return bytes(out)

    def inverse(self, data: bytes) -> bytes:
        if len(data) < 2:
            raise CodecError("word-dict layer: truncated header")
        count, tail_length = data[0], data[1]
        if tail_length >= _WORD:
            raise CodecError(
                f"word-dict layer: tail length {tail_length} out of range"
            )
        position = 2 + count * _WORD
        if position > len(data) - tail_length:
            raise CodecError("word-dict layer: truncated dictionary")
        entries = [
            data[2 + i * _WORD:2 + (i + 1) * _WORD] for i in range(count)
        ]
        end = len(data) - tail_length
        out = bytearray()
        while position < end:
            token = data[position]
            position += 1
            if token == _DICT_ESCAPE:
                if position + _WORD > end:
                    raise CodecError(
                        "word-dict layer: truncated literal word"
                    )
                out += data[position:position + _WORD]
                position += _WORD
            elif token < count:
                out += entries[token]
            else:
                raise CodecError(
                    f"word-dict layer: token {token} out of range "
                    f"(dictionary has {count} entries)"
                )
        out += data[end:]
        return bytes(out)


def available_transforms() -> List[str]:
    """Names of all registered transform layers."""
    return TRANSFORMS.names()
