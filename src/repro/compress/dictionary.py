"""Instruction-dictionary codec (CodePack / Lefurgy style).

Real embedded code compressors (IBM CodePack [14], Lefurgy et al. [16, 17]
in the paper) exploit that a small set of 32-bit instruction words covers
most of a program.  This codec works at the ISA's 4-byte word granularity:

* a per-block dictionary of the most frequent words is emitted in the
  payload header;
* each word encodes as ``1 + index_bits`` bits if in the dictionary, else
  ``1 + 32`` bits literal.

Payload layout::

    [1 byte tag][4 bytes original length]
    [1 byte index_bits][2 bytes dictionary entry count]
    [entries x 4 bytes][bit stream][trailing (len % 4) literal bytes in stream]
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List

from .bitio import BitIOError, BitReader, BitWriter
from .codec import Codec, CodecCosts, CodecError, register_codec

_TAG_RAW = 0
_TAG_DICT = 1

_WORD = 4
_MAX_INDEX_BITS = 12


@register_codec("dictionary")
class DictionaryCodec(Codec):
    """Frequent-word dictionary coder over 4-byte instruction words."""

    costs = CodecCosts(
        decompress_cycles_per_byte=1.5,
        compress_cycles_per_byte=5.0,
        fixed=25,
    )

    def __init__(self, max_entries: int = 256) -> None:
        if not 1 <= max_entries <= (1 << _MAX_INDEX_BITS):
            raise ValueError(
                f"max_entries must be in [1, {1 << _MAX_INDEX_BITS}], got "
                f"{max_entries}"
            )
        self.max_entries = max_entries

    def _build_dictionary(self, words: List[bytes]) -> List[bytes]:
        counts = Counter(words)
        # Only words that pay for themselves: a dictionary hit saves
        # (32 - index_bits) bits per use but costs 32 bits of header.
        profitable = [
            word for word, count in counts.most_common(self.max_entries)
            if count >= 2
        ]
        return profitable

    def compress(self, data: bytes) -> bytes:
        if not data:
            return bytes((_TAG_RAW, 0, 0, 0, 0))
        word_count = len(data) // _WORD
        words = [
            data[i * _WORD : (i + 1) * _WORD] for i in range(word_count)
        ]
        tail = data[word_count * _WORD :]

        dictionary = self._build_dictionary(words)
        index_bits = max(1, (max(1, len(dictionary)) - 1).bit_length())
        index_of: Dict[bytes, int] = {
            word: index for index, word in enumerate(dictionary)
        }

        writer = BitWriter()
        hit_flag = 1 << index_bits
        for word in words:
            index = index_of.get(word)
            if index is not None:
                # Flag bit and index emitted as one batched field.
                writer.write_bits(hit_flag | index, index_bits + 1)
            else:
                # Flag bit 0 + 32 literal bits = one 33-bit field.
                writer.write_bits(int.from_bytes(word, "big"), 33)
        for byte in tail:
            writer.write_bits(byte, 8)

        header = bytearray((_TAG_DICT,))
        header += len(data).to_bytes(4, "big")
        header.append(index_bits)
        header += len(dictionary).to_bytes(2, "big")
        for word in dictionary:
            header += word
        payload = bytes(header) + writer.getvalue()
        if len(payload) >= len(data) + 5:
            return bytes((_TAG_RAW,)) + len(data).to_bytes(4, "big") + data
        return payload

    def decompress(self, payload: bytes) -> bytes:
        if len(payload) < 5:
            raise CodecError("truncated dictionary header")
        tag = payload[0]
        original_length = int.from_bytes(payload[1:5], "big")
        if tag == _TAG_RAW:
            body = payload[5:]
            if len(body) < original_length:
                raise CodecError("raw body truncated")
            return body[:original_length]
        if tag != _TAG_DICT:
            raise CodecError(f"unknown dictionary payload tag {tag}")
        if len(payload) < 8:
            raise CodecError("truncated dictionary header")
        index_bits = payload[5]
        if not 1 <= index_bits <= _MAX_INDEX_BITS:
            raise CodecError(f"bad index width {index_bits}")
        entry_count = int.from_bytes(payload[6:8], "big")
        table_end = 8 + entry_count * _WORD
        if len(payload) < table_end:
            raise CodecError("dictionary table truncated")
        dictionary = [
            payload[8 + i * _WORD : 8 + (i + 1) * _WORD]
            for i in range(entry_count)
        ]

        reader = BitReader(payload[table_end:])
        out = bytearray()
        word_count = original_length // _WORD
        tail_length = original_length % _WORD
        try:
            for _ in range(word_count):
                if reader.read_bit():
                    index = reader.read_bits(index_bits)
                    if index >= len(dictionary):
                        raise CodecError(
                            f"dictionary index {index} out of range "
                            f"({len(dictionary)} entries)"
                        )
                    out += dictionary[index]
                else:
                    out += reader.read_bits(32).to_bytes(_WORD, "big")
            for _ in range(tail_length):
                out.append(reader.read_bits(8))
        except BitIOError as exc:
            raise CodecError(f"dictionary stream truncated: {exc}") from exc
        return bytes(out)
