"""One generic registry for every pluggable component family.

Codecs, workloads, predictors, decompression strategies, sweep engines,
and experiment executors were historically registered through four
hand-rolled dict-plus-helpers mechanisms.  They now all share this one
:class:`Registry`, which gives every family the same three operations:

* decorator registration (``@REGISTRY.register("name")``) or direct
  :meth:`Registry.add` for values that are not classes/functions;
* name-indexed lookup with a uniform "unknown X; available: [...]"
  error;
* listing (``names()``), used by ``repro list`` and the CLI choices.

Every :class:`Registry` announces itself in the module-level
:data:`REGISTRIES` catalog keyed by its plural kind name, so generic
tooling (the CLI, the spec validator) can enumerate all component
families without knowing them individually.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional

#: Catalog of every registry in the process, keyed by plural kind name
#: ("codecs", "workloads", ...).  Populated by Registry.__init__.
REGISTRIES: Dict[str, "Registry"] = {}


class Registry:
    """A name-indexed family of pluggable components.

    ``kind`` is the plural family name used in the global catalog;
    ``item`` is the singular used in error messages (defaults to
    ``kind`` minus a trailing "s").  ``catalog=False`` keeps the
    registry private (ad-hoc/test registries must not show up in
    ``repro list``); catalogued kinds must be unique per process.
    """

    def __init__(
        self,
        kind: str,
        item: Optional[str] = None,
        catalog: bool = True,
    ) -> None:
        self.kind = kind
        if item is None:
            item = kind[:-1] if kind.endswith("s") else kind
        self.item = item
        self._entries: Dict[str, Any] = {}
        self._order: List[str] = []
        if catalog:
            if kind in REGISTRIES:
                raise ValueError(
                    f"a registry of kind '{kind}' already exists; "
                    f"pass catalog=False for a private registry"
                )
            REGISTRIES[kind] = self

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def register(self, name: str) -> Callable[[Any], Any]:
        """Decorator: register the decorated class/factory under ``name``.

        The decorated object gains/keeps a ``name`` attribute when it has
        one (codec and policy classes use it as their registry key).
        """

        def decorate(value: Any) -> Any:
            if hasattr(value, "name"):
                try:
                    value.name = name
                except (AttributeError, TypeError):
                    pass
            self.add(name, value)
            return value

        return decorate

    def add(self, name: str, value: Any) -> None:
        """Register ``value`` under ``name`` (idempotent re-registration
        replaces the entry, so test doubles can override)."""
        if name not in self._entries:
            self._order.append(name)
        self._entries[name] = value

    def remove(self, name: str) -> None:
        """Unregister ``name`` (no-op when absent) — for test doubles
        and ablation components that should not outlive their scope."""
        if name in self._entries:
            del self._entries[name]
            self._order.remove(name)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def get(self, name: str) -> Any:
        """The registered value (class/factory/constant) for ``name``."""
        try:
            return self._entries[name]
        except KeyError:
            raise KeyError(
                f"unknown {self.item} '{name}'; "
                f"available: {self.names()}"
            ) from None

    def create(self, name: str, *args: Any, **kwargs: Any) -> Any:
        """Call the registered factory for ``name`` with the given args."""
        factory = self.get(name)
        if not callable(factory):
            raise TypeError(
                f"{self.item} '{name}' is not constructible "
                f"(registered value: {factory!r})"
            )
        return factory(*args, **kwargs)

    # ------------------------------------------------------------------
    # Listing
    # ------------------------------------------------------------------

    def names(self, sort: bool = True) -> List[str]:
        """Registered names (sorted by default, else registration order)."""
        return sorted(self._order) if sort else list(self._order)

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return f"Registry({self.kind!r}, {len(self)} entries)"


def all_registries() -> Dict[str, Registry]:
    """The catalog of registries defined so far (import-order keyed)."""
    return dict(REGISTRIES)


def catalog_signature() -> Dict[str, List[str]]:
    """A stable snapshot of every catalogued family's member names.

    Used by :mod:`repro.store.fingerprint` to salt cell fingerprints:
    registering a new codec/strategy/engine changes process behaviour
    without changing any repo source file, so the component catalog must
    participate in cache invalidation.  Keys and name lists are sorted,
    so the snapshot is canonical for a given set of registrations.
    """
    return {
        kind: registry.names()
        for kind, registry in sorted(REGISTRIES.items())
    }
