"""Service-side observability: per-endpoint latency histograms.

Kept deliberately tiny and stdlib-only: fixed millisecond bucket
bounds, one histogram per endpoint label (``"POST /jobs"``,
``"GET /jobs/{id}"``, ...), plus response-status counters.  The
``GET /metrics`` endpoint serialises a snapshot of this next to the
store's own :meth:`~repro.store.cas.ExperimentStore.stats` — the same
numbers ``repro.cli store stats --json`` prints, so operators and
dashboards never see two disagreeing sources.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict

#: Upper bucket bounds in milliseconds (the last bucket is unbounded).
BUCKET_BOUNDS_MS = (1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500)


class LatencyHistogram:
    """Fixed-bound latency histogram over milliseconds."""

    def __init__(self) -> None:
        self.counts = [0] * (len(BUCKET_BOUNDS_MS) + 1)
        self.count = 0
        self.total_ms = 0.0
        self.max_ms = 0.0

    def observe(self, ms: float) -> None:
        self.count += 1
        self.total_ms += ms
        self.max_ms = max(self.max_ms, ms)
        for i, bound in enumerate(BUCKET_BOUNDS_MS):
            if ms <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def quantile(self, q: float) -> float:
        """Estimate the ``q`` quantile (0..1) in milliseconds.

        Linear interpolation within the containing bucket, the same
        estimate ``histogram_quantile`` computes from a Prometheus
        histogram.  The unbounded overflow bucket uses the observed
        ``max_ms`` as its upper edge, so the estimate never exceeds a
        latency that was actually seen.
        """
        if self.count == 0:
            return 0.0
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        rank = q * self.count
        cumulative = 0
        lower = 0.0
        for i, bound in enumerate(BUCKET_BOUNDS_MS):
            in_bucket = self.counts[i]
            if cumulative + in_bucket >= rank and in_bucket:
                fraction = (rank - cumulative) / in_bucket
                return round(lower + (bound - lower) * fraction, 3)
            cumulative += in_bucket
            lower = float(bound)
        upper = max(self.max_ms, lower)
        in_bucket = self.counts[-1]
        if not in_bucket:
            return round(lower, 3)
        fraction = min(1.0, (rank - cumulative) / in_bucket)
        return round(lower + (upper - lower) * fraction, 3)

    def to_dict(self) -> Dict[str, Any]:
        buckets = {
            f"<={bound}": self.counts[i]
            for i, bound in enumerate(BUCKET_BOUNDS_MS)
        }
        buckets[f">{BUCKET_BOUNDS_MS[-1]}"] = self.counts[-1]
        return {
            "count": self.count,
            "total_ms": round(self.total_ms, 3),
            "mean_ms": round(self.total_ms / self.count, 3)
            if self.count else 0.0,
            "max_ms": round(self.max_ms, 3),
            "p50_ms": self.quantile(0.50),
            "p95_ms": self.quantile(0.95),
            "p99_ms": self.quantile(0.99),
            "buckets_ms": buckets,
        }


class ServiceMetrics:
    """Request latency + response status counters, by endpoint label."""

    def __init__(self) -> None:
        self.started = time.time()
        self._lock = threading.Lock()
        self._requests: Dict[str, LatencyHistogram] = {}
        self._statuses: Dict[str, int] = {}

    def observe(self, label: str, ms: float, status: int) -> None:
        with self._lock:
            hist = self._requests.get(label)
            if hist is None:
                hist = self._requests[label] = LatencyHistogram()
            hist.observe(ms)
            key = str(status)
            self._statuses[key] = self._statuses.get(key, 0) + 1

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "uptime_s": round(time.time() - self.started, 3),
                "requests": {
                    label: hist.to_dict()
                    for label, hist in sorted(self._requests.items())
                },
                "responses": dict(sorted(self._statuses.items())),
            }
