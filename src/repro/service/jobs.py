"""Job queue and execution core of the sweep service.

A *job* is one submitted :class:`~repro.api.spec.ExperimentSpec`.  The
:class:`JobManager` owns a bounded queue feeding a pool of worker
threads; each worker executes a job cell-by-cell against the shared
:class:`~repro.store.cas.ExperimentStore`:

* **planning** reuses :func:`repro.store.executor.plan_cells` — the
  exact fingerprint path the :class:`CachingExecutor` uses — so the
  service and the CLI always agree on cell identity;
* **store hits** are reattached with
  :func:`~repro.store.records.record_to_run`, byte-identical to a
  fresh run;
* **misses** go through an in-process *claim map*: the first job to
  reach a missing fingerprint claims it and computes; any concurrent
  job wanting the same cell waits on the claimant's event and then
  reads the record the claimant stored — every cell is computed at
  most once per process, and (via the CAS write) at most once per
  store across processes racing on distinct cells;
* **claimed cells** run through the ordinary executor stack
  (:func:`~repro.api.executor.make_executor` + ``RetryPolicy``), so
  retries, per-cell deadlines, and fault injection behave exactly as
  they do under ``repro.cli exp``.

Whole jobs dedup too: :func:`job_key` fingerprints the result-affecting
spec fields plus the code/catalog versions, and a completed job's
canonical result JSON is stored under that key
(:meth:`ExperimentStore.put_job_result`), so resubmitting a finished
spec is answered from the store at byte-equality without touching a
single cell — the fast path the ``bench_service_cached_rps`` benchmark
measures.

Every job state transition is journalled atomically under
``<store>/service/jobs/<id>.json``.  Graceful shutdown stops pulling
from the queue and drains only in-flight jobs; on the next boot the
journal is replayed — finished jobs re-join the dedup index, unfinished
ones re-enter the queue.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import logging
import os
import queue
import threading
import time
from typing import Any, Dict, List, Optional, Tuple, Union

from ..api.executor import Partition, make_executor, run_partition
from ..api.results import ResultSet
from ..api.spec import ExperimentSpec, SpecError
from ..faults.retry import RetryPolicy
from ..log import kv
from ..obs.spans import span, span_event
from ..registry import catalog_signature
from ..store.cas import ExperimentStore, StoreError, _atomic_write
from ..store.executor import artifact_scope, plan_cells
from ..store.fingerprint import canonical_dumps, code_version
from ..store.records import is_cacheable, record_to_run, run_to_record

_log = logging.getLogger("repro.service")

#: Journal schema version (bumped on incompatible entry changes).
JOURNAL_VERSION = 1

#: How long a job waits for another job's in-flight cell before
#: recomputing it locally (the claimant may have died or errored).
CELL_WAIT_TIMEOUT_S = 300.0


class ServiceError(RuntimeError):
    """Raised for invalid service operations."""


class QueueFullError(ServiceError):
    """Raised when a submission does not fit the bounded job queue."""


def job_key(spec: ExperimentSpec) -> str:
    """Content key of one job: the result-affecting spec fields only.

    Executor choice, job count, and the spec's own ``store`` field do
    not change results, so they are excluded — two clients asking for
    the same grid with different parallelism share one key.  The code
    version and component catalog are folded in for the same reason
    they are part of cell fingerprints: a semantic change must miss.
    """
    payload = {
        "kind": "service-job",
        "code": code_version(),
        "catalog": catalog_signature(),
        "salt": os.environ.get("REPRO_STORE_SALT", ""),
        "name": spec.name,
        "workloads": spec.workload_names(),
        "base": dict(spec.base),
        "axes": [dict(override) for override in spec.axes],
        "engine": spec.engine,
        "fast": spec.fast,
        "max_blocks": spec.max_blocks,
    }
    return hashlib.sha256(
        canonical_dumps(payload).encode("utf-8")
    ).hexdigest()


def _dedupable(job: "Job") -> bool:
    """Whether a later identical submission may be served by ``job``."""
    if job.state == "failed":
        return False
    return not (job.state == "done" and job.error_rows)


class Job:
    """One submitted experiment and its observable lifecycle.

    States: ``queued`` → ``running`` → ``done`` (also reached by error
    rows — a cell failure is a structured result, not a job failure) or
    ``failed`` (the spec could not be executed at all).  All mutation
    happens under the job's lock; readers take snapshots.
    """

    def __init__(self, job_id: str, spec: ExperimentSpec, key: str,
                 seq: int) -> None:
        self.id = job_id
        self.spec = spec
        self.key = key
        self.seq = seq
        self.state = "queued"
        self.created = time.time()
        self.started: Optional[float] = None
        self.finished: Optional[float] = None
        self.error: Optional[str] = None
        self.result_text: Optional[str] = None
        self.deduped = False
        total = len(spec.workload_names()) * len(spec.configs())
        self.progress: Dict[str, int] = {
            "total": total, "done": 0, "hits": 0, "computed": 0,
            "shared": 0, "errors": 0, "retried": 0,
        }
        self.error_rows: List[Dict[str, Any]] = []
        self.events: List[Dict[str, Any]] = []
        #: Aggregate cycle-phase breakdown of the finished result
        #: (execute / stall / background), filled in by the worker.
        #: Snapshot-only diagnostics — not journalled, so resumed done
        #: jobs simply lack it.
        self.phases: Optional[Dict[str, int]] = None
        self._lock = threading.Lock()

    # -- mutation (worker side) ---------------------------------------

    def emit(self, cell: int, workload: str, label: str, source: str,
             ok: bool, error: Optional[str]) -> None:
        """Append one per-cell completion event (SSE consumers poll)."""
        with self._lock:
            self.progress["done"] += 1
            self.progress[
                "hits" if source == "cache"
                else "shared" if source == "shared"
                else "computed"
            ] += 1
            if not ok:
                self.progress["errors"] += 1
                self.error_rows.append({
                    "cell": cell, "workload": workload, "label": label,
                    "error": error,
                })
            self.events.append({
                "seq": len(self.events), "cell": cell,
                "workload": workload, "label": label, "source": source,
                "ok": ok, "error": error,
            })

    def note_retries(self, count: int) -> None:
        with self._lock:
            self.progress["retried"] += count

    # -- observation (HTTP side) --------------------------------------

    def events_since(self, cursor: int) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self.events[cursor:])

    def snapshot(self) -> Dict[str, Any]:
        """The ``GET /jobs/<id>`` status document."""
        with self._lock:
            return {
                "id": self.id,
                "key": self.key,
                "state": self.state,
                "deduped": self.deduped,
                "created": self.created,
                "started": self.started,
                "finished": self.finished,
                "progress": dict(self.progress),
                "error_rows": [dict(r) for r in self.error_rows],
                "error": self.error,
                "phases": dict(self.phases) if self.phases else None,
            }

    def to_journal(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "version": JOURNAL_VERSION,
                "id": self.id,
                "seq": self.seq,
                "key": self.key,
                "state": self.state,
                "spec": self.spec.to_dict(),
                "created": self.created,
                "finished": self.finished,
                "progress": dict(self.progress),
                "error_rows": [dict(r) for r in self.error_rows],
                "error": self.error,
            }


class JobManager:
    """Bounded job queue + worker threads over one experiment store."""

    def __init__(
        self,
        store: Union[ExperimentStore, str, None] = None,
        workers: int = 2,
        inner_jobs: int = 1,
        retry: Optional[RetryPolicy] = None,
        queue_size: int = 64,
        resume: bool = True,
        cell_wait_timeout: float = CELL_WAIT_TIMEOUT_S,
    ) -> None:
        if isinstance(store, ExperimentStore):
            self.store = store
        else:
            self.store = ExperimentStore(store)
        if workers < 1:
            raise ServiceError(f"workers must be >= 1, got {workers}")
        self.inner_jobs = max(1, inner_jobs)
        self.retry = retry
        self.cell_wait_timeout = cell_wait_timeout
        self._queue: "queue.Queue[str]" = queue.Queue(maxsize=queue_size)
        self._jobs: Dict[str, Job] = {}
        self._by_key: Dict[str, str] = {}
        self._inflight: Dict[str, threading.Event] = {}
        self._lock = threading.Lock()
        self._stopping = False
        self._seq = itertools.count(1)
        # The store serves compressed-image artifacts to every job for
        # the manager's whole lifetime (restored on shutdown).
        self._artifacts = artifact_scope(self.store)
        self._artifacts.__enter__()
        if resume:
            self._resume_journal()
        self._threads = [
            threading.Thread(target=self._worker, daemon=True,
                             name=f"repro-service-worker-{i}")
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # Submission / lookup
    # ------------------------------------------------------------------

    @property
    def journal_dir(self) -> str:
        return os.path.join(self.store.root, "service", "jobs")

    def submit(self, spec: Union[ExperimentSpec, Dict[str, Any]]
               ) -> Tuple[Job, bool]:
        """Queue ``spec``; returns ``(job, deduped)``.

        A spec whose :func:`job_key` matches a queued, running, or
        cleanly completed job returns that job instead of queueing a
        duplicate — the second ``(job, True)`` element flags the dedup
        hit.  Failed jobs and done jobs with error rows never dedup
        (mirroring the store's errors-are-never-cached rule), so a
        resubmission after a transient fault recomputes exactly the
        failed cells.
        """
        if not isinstance(spec, ExperimentSpec):
            spec = ExperimentSpec.from_dict(spec)
        key = job_key(spec)
        with self._lock:
            if self._stopping:
                raise ServiceError("service is shutting down")
            existing_id = self._by_key.get(key)
            if existing_id is not None:
                existing = self._jobs.get(existing_id)
                if existing is not None and _dedupable(existing):
                    return existing, True
            seq = next(self._seq)
            job = Job(f"j{seq}-{key[:8]}", spec, key, seq)
            self._jobs[job.id] = job
            self._by_key[key] = job.id
        self._write_journal(job)
        try:
            self._queue.put_nowait(job.id)
        except queue.Full:
            with self._lock:
                self._jobs.pop(job.id, None)
                if self._by_key.get(key) == job.id:
                    del self._by_key[key]
            self._drop_journal(job.id)
            raise QueueFullError(
                f"job queue is full ({self._queue.maxsize} queued)"
            ) from None
        return job, False

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def job_result(self, job: Job) -> Optional[str]:
        """A done job's canonical result JSON (store-backed)."""
        if job.result_text is not None:
            return job.result_text
        data = self.store.get_job_result(job.key)
        if data is None:
            return None
        text = data.decode("utf-8")
        job.result_text = text
        return text

    @property
    def queue_depth(self) -> int:
        return self._queue.qsize()

    def list_jobs(self) -> List[Dict[str, Any]]:
        """All job snapshots, oldest first (``GET /jobs``)."""
        with self._lock:
            jobs = sorted(self._jobs.values(), key=lambda j: j.seq)
        return [job.snapshot() for job in jobs]

    def job_counts(self) -> Dict[str, int]:
        counts = {"queued": 0, "running": 0, "done": 0, "failed": 0}
        with self._lock:
            for job in self._jobs.values():
                counts[job.state] = counts.get(job.state, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # Journal / resume
    # ------------------------------------------------------------------

    def _journal_path(self, job_id: str) -> str:
        return os.path.join(self.journal_dir, f"{job_id}.json")

    def _write_journal(self, job: Job) -> None:
        os.makedirs(self.journal_dir, exist_ok=True)
        entry = job.to_journal()
        try:
            _atomic_write(
                self._journal_path(job.id),
                (canonical_dumps(entry) + "\n").encode("utf-8"),
            )
        except OSError:
            pass  # a read-only store degrades resume, never submission

    def _drop_journal(self, job_id: str) -> None:
        try:
            os.unlink(self._journal_path(job_id))
        except OSError:
            pass

    def _resume_journal(self) -> None:
        """Replay journalled jobs: done ones re-join the dedup index,
        unfinished ones re-enter the queue."""
        if not os.path.isdir(self.journal_dir):
            return
        entries: List[Dict[str, Any]] = []
        for name in sorted(os.listdir(self.journal_dir)):
            if not name.endswith(".json"):
                continue
            try:
                with open(os.path.join(self.journal_dir, name), "r",
                          encoding="utf-8") as handle:
                    entry = json.load(handle)
            except (OSError, ValueError):
                continue
            if (
                isinstance(entry, dict)
                and entry.get("version") == JOURNAL_VERSION
            ):
                entries.append(entry)
        entries.sort(key=lambda e: e.get("seq", 0))
        top_seq = 0
        for entry in entries:
            try:
                spec = ExperimentSpec.from_dict(entry["spec"])
            except (KeyError, SpecError):
                _log.warning(kv(
                    "service.journal_skip", id=entry.get("id"),
                    reason="spec_no_longer_loads",
                ))
                continue
            key = entry.get("key") or job_key(spec)
            seq = int(entry.get("seq", 0))
            top_seq = max(top_seq, seq)
            job = Job(entry["id"], spec, key, seq)
            job.created = entry.get("created", job.created)
            if entry.get("state") == "done":
                job.state = "done"
                job.finished = entry.get("finished")
                job.progress.update(entry.get("progress", {}))
                job.error_rows = list(entry.get("error_rows", []))
            else:
                job.state = "queued"
            self._jobs[job.id] = job
            if _dedupable(job):
                self._by_key.setdefault(key, job.id)
            if job.state == "queued":
                try:
                    self._queue.put_nowait(job.id)
                except queue.Full:
                    _log.warning(kv(
                        "service.journal_skip", id=job.id,
                        reason="queue_full_on_resume",
                    ))
                    self._jobs.pop(job.id, None)
        self._seq = itertools.count(top_seq + 1)

    # ------------------------------------------------------------------
    # Worker loop
    # ------------------------------------------------------------------

    def _worker(self) -> None:
        while True:
            try:
                job_id = self._queue.get(timeout=0.2)
            except queue.Empty:
                if self._stopping:
                    return
                continue
            if self._stopping:
                # Drain only in-flight work: this job stays journalled
                # as queued and resumes on the next boot.
                return
            job = self.get(job_id)
            if job is None or job.state != "queued":
                continue
            try:
                self._execute(job)
            except BaseException as exc:  # noqa: BLE001 - worker survives
                with job._lock:
                    job.state = "failed"
                    job.error = f"{type(exc).__name__}: {exc}"
                    job.finished = time.time()
                self._write_journal(job)
                _log.warning(kv(
                    "service.job_failed", id=job.id,
                    error=f"{type(exc).__name__}: {exc}",
                ))

    def _execute(self, job: Job) -> None:
        with job._lock:
            job.state = "running"
            job.started = time.time()
        self._write_journal(job)
        # Queue wait = created -> started; a span event so an armed
        # recorder sees service latency next to the compute spans.
        span_event(
            "job.queue_wait", cat="queue", job=job.id,
            wait_ms=round((job.started - job.created) * 1000.0, 3),
        )
        with span(f"job:{job.id}", cat="job", key=job.key[:12],
                  cells=job.progress["total"]):
            self._run_job(job)

    def _run_job(self, job: Job) -> None:
        spec = job.spec
        partitions = [
            Partition(workload=name, configs=configs)
            for name, configs in spec.partitions()
        ]
        plan = plan_cells(partitions, engine=spec.engine, fast=spec.fast,
                          max_blocks=spec.max_blocks)

        # Resolve every cell: store hit, my claim, or someone else's.
        # rows[i][j] = [fingerprint, original config, effective config,
        #              source, run-or-None]
        rows: List[List[List[Any]]] = []
        my_claims: List[str] = []
        hits = computed = shared = puts = 0
        cell_index = 0
        cell_ids: List[List[int]] = []
        try:
            for partition, plan_row in zip(partitions, plan):
                row: List[List[Any]] = []
                ids: List[int] = []
                for config, (fingerprint, cell_config) in zip(
                    partition.configs, plan_row
                ):
                    ids.append(cell_index)
                    cell_index += 1
                    run = self._load_cell(fingerprint, cell_config)
                    if run is not None:
                        row.append([fingerprint, config, cell_config,
                                    "cache", run])
                        continue
                    claimed = False
                    with self._lock:
                        if fingerprint not in self._inflight:
                            self._inflight[fingerprint] = (
                                threading.Event()
                            )
                            claimed = True
                    if claimed:
                        my_claims.append(fingerprint)
                        # Close the claim/release race: the previous
                        # claimant may have stored the record between
                        # our read and our claim.
                        run = self._load_cell(fingerprint, cell_config)
                        if run is not None:
                            self._release_claim(fingerprint)
                            my_claims.remove(fingerprint)
                            row.append([fingerprint, config, cell_config,
                                        "cache", run])
                            continue
                        row.append([fingerprint, config, cell_config,
                                    "claimed", None])
                    else:
                        row.append([fingerprint, config, cell_config,
                                    "shared", None])
                rows.append(row)
                cell_ids.append(ids)

            # Emit plan-time hits in cell order before computing.
            for partition, row, ids in zip(partitions, rows, cell_ids):
                for cell, (fp, config, cell_config, source, run) in zip(
                    ids, row
                ):
                    if source == "cache":
                        hits += 1
                        job.emit(cell, partition.workload_name,
                                 cell_config.strategy_name, "cache",
                                 run.ok, run.error)

            # Compute my claimed cells through the normal executor
            # stack, workload-major so the fast paths apply.
            claimed_parts: List[Partition] = []
            claimed_cells: List[List[List[Any]]] = []
            claimed_ids: List[List[int]] = []
            for partition, row, ids in zip(partitions, rows, cell_ids):
                configs = [c[1] for c in row if c[3] == "claimed"]
                if not configs:
                    continue
                claimed_parts.append(
                    Partition(workload=partition.workload,
                              configs=configs)
                )
                claimed_cells.append(
                    [c for c in row if c[3] == "claimed"]
                )
                claimed_ids.append([
                    cell for cell, c in zip(ids, row)
                    if c[3] == "claimed"
                ])
            if claimed_parts:
                inner = make_executor(
                    None, jobs=self.inner_jobs, store=False,
                    retry=self.retry,
                )
                flat = inner.run(
                    claimed_parts, engine=spec.engine, fast=spec.fast,
                    max_blocks=spec.max_blocks,
                )
                cursor = 0
                for part, cells, ids in zip(
                    claimed_parts, claimed_cells, claimed_ids
                ):
                    part_runs = flat[cursor:cursor + len(cells)]
                    cursor += len(cells)
                    for cell, slot, run in zip(ids, cells, part_runs):
                        slot[4] = run
                        computed += 1
                        if run.attempts:
                            job.note_retries(max(0, len(run.attempts) - 1))
                        if is_cacheable(run):
                            self.store.put_cell(
                                slot[0], run_to_record(run, slot[0])
                            )
                            puts += 1
                        # Publish before waking waiters, so they hit.
                        self._release_claim(slot[0])
                        my_claims.remove(slot[0])
                        job.emit(cell, part.workload_name,
                                 slot[2].strategy_name, "computed",
                                 run.ok, run.error)

            # Wait for cells other jobs claimed; recompute locally if
            # the claimant errored (errors are never cached) or died.
            for partition, row, ids in zip(partitions, rows, cell_ids):
                for cell, slot in zip(ids, row):
                    if slot[3] != "shared":
                        continue
                    fingerprint, config, cell_config = slot[:3]
                    event = self._inflight.get(fingerprint)
                    if event is not None:
                        event.wait(self.cell_wait_timeout)
                    run = self._load_cell(fingerprint, cell_config)
                    source = "shared"
                    if run is None:
                        run = run_partition(
                            partition.workload, [config], spec.engine,
                            spec.fast, spec.max_blocks, self.retry,
                        )[0]
                        source = "computed"
                        computed += 1
                        if run.attempts:
                            job.note_retries(max(0, len(run.attempts) - 1))
                        if is_cacheable(run):
                            self.store.put_cell(
                                fingerprint,
                                run_to_record(run, fingerprint),
                            )
                            puts += 1
                    else:
                        shared += 1
                    slot[3], slot[4] = source, run
                    job.emit(cell, partition.workload_name,
                             cell_config.strategy_name, source,
                             run.ok, run.error)
        finally:
            for fingerprint in my_claims:
                self._release_claim(fingerprint)

        runs = [slot[4] for row in rows for slot in row]
        result = ResultSet(
            runs, meta={"name": spec.name, "engine": spec.engine},
        )
        text = result.canonical_json()
        self.store.put_job_result(job.key, text)
        # Shared cells were computed by another job but served to this
        # one from the store — cache hits from this job's perspective.
        self.store.add_usage(hits=hits + shared, misses=computed,
                             puts=puts)
        phases = self._aggregate_phases(runs)
        with job._lock:
            job.result_text = text
            job.phases = phases
            job.state = "done"
            job.finished = time.time()
        self._write_journal(job)

    @staticmethod
    def _aggregate_phases(runs: List[Any]) -> Dict[str, int]:
        """Cycle-phase totals across a job's runs (dashboard bars).

        Works for cached cells too — the breakdown comes from the
        stored metrics, not from live tracing.
        """
        phases = {"execute": 0, "stall": 0, "background": 0}
        for run in runs:
            res = getattr(run, "result", None)
            if res is None:
                continue
            phases["execute"] += res.execution_cycles
            phases["stall"] += res.counters.stall_cycles
            phases["background"] += (
                res.counters.background_decompress_cycles
                + res.counters.background_compress_cycles
            )
        return phases

    def _load_cell(self, fingerprint: str, cell_config) -> Optional[Any]:
        record = self.store.get_cell(fingerprint)
        if record is None:
            return None
        try:
            return record_to_run(record, cell_config)
        except StoreError:
            return None  # stale/corrupt record: recompute

    def _release_claim(self, fingerprint: str) -> None:
        with self._lock:
            event = self._inflight.pop(fingerprint, None)
        if event is not None:
            event.set()

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------

    def shutdown(self, timeout: float = 60.0) -> None:
        """Drain in-flight jobs, stop the workers, restore providers.

        Queued-but-unstarted jobs stay journalled (state ``queued``)
        and re-enter the queue when a manager next boots on this store
        — the resumable-journal half of graceful shutdown.
        """
        with self._lock:
            if self._stopping:
                return
            self._stopping = True
        deadline = time.monotonic() + timeout
        for thread in self._threads:
            thread.join(max(0.0, deadline - time.monotonic()))
        self._artifacts.__exit__(None, None, None)
