"""The HTTP layer of the sweep service (stdlib asyncio, no deps).

A deliberately small hand-rolled HTTP/1.1 server on
``asyncio.start_server`` — enough protocol for a JSON job API and SSE
streaming, with keep-alive (the cached-submit benchmark pushes
thousands of requests down one connection):

========================  =============================================
``POST /jobs``            submit an ExperimentSpec (the ``exp --spec``
                          JSON schema); 202 + job id, or 200 when the
                          job deduplicated onto an existing one
``GET /jobs``             all job snapshots, oldest first (dashboard)
``GET /jobs/<id>``        status/progress snapshot
``GET /jobs/<id>/result`` the canonical ResultSet JSON (byte-identical
                          to a local ``run_experiment`` on this store)
``GET /jobs/<id>/events`` per-cell completion events as SSE
``GET /healthz``          liveness + queue depth + job counts
``GET /metrics``          latency histograms + store stats (JSON;
                          ``?format=prometheus`` for text exposition)
``GET /dashboard``        self-contained live HTML dashboard
========================  =============================================

Blocking work (spec validation + journal writes on submit, store
walks on ``/metrics``) runs in the default thread executor; cell
execution never blocks the event loop — it lives on the
:class:`~repro.service.jobs.JobManager` worker threads.

:func:`run_server` is the blocking CLI entry point (SIGTERM/SIGINT →
graceful drain); :class:`ServerThread` runs the same server on a
background thread for tests, examples, and the load harness.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import logging
import signal
import threading
from typing import Any, Dict, Optional, Tuple, Union

from ..api.spec import SpecError
from ..log import kv
from ..obs.dashboard import DASHBOARD_HTML
from ..obs.prometheus import render_prometheus
from ..store.cas import ExperimentStore
from .jobs import Job, JobManager, QueueFullError, ServiceError
from .metrics import ServiceMetrics

_log = logging.getLogger("repro.service")

#: Protocol limits: one header line / total body.
MAX_HEADER_LINE = 16 * 1024
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Idle keep-alive timeout between requests on one connection.
KEEPALIVE_TIMEOUT_S = 60.0

_STATUS_TEXT = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}


def _json_bytes(obj: Any) -> bytes:
    return json.dumps(obj, separators=(",", ":")).encode("utf-8")


class SweepServer:
    """One listening sweep service over a :class:`JobManager`."""

    def __init__(
        self,
        manager: JobManager,
        host: str = "127.0.0.1",
        port: int = 0,
        metrics: Optional[ServiceMetrics] = None,
    ) -> None:
        self.manager = manager
        self.host = host
        self.port = port
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self._server: Optional[asyncio.AbstractServer] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Stop accepting, then drain the job manager (in-flight jobs
        finish; queued jobs stay journalled for the next boot)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await asyncio.to_thread(self.manager.shutdown)

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, target, headers, body = request
                path, _, query = target.partition("?")
                close = headers.get("connection", "").lower() == "close"
                if method == "GET" and self._events_job_id(path):
                    await self._stream_events(
                        writer, self._events_job_id(path)
                    )
                    break  # SSE connections end with the stream
                loop = asyncio.get_running_loop()
                started = loop.time()
                status, payload, content_type = await self._dispatch(
                    method, path, query, body
                )
                self.metrics.observe(
                    self._label(method, path),
                    (loop.time() - started) * 1000.0, status,
                )
                self._write_response(
                    writer, status, payload, content_type,
                    close=close,
                )
                await writer.drain()
                if close:
                    break
        except (
            asyncio.IncompleteReadError, asyncio.TimeoutError,
            ConnectionError, ValueError,
        ):
            pass  # half-closed or malformed connection: just drop it
        except asyncio.CancelledError:
            pass  # loop teardown mid-read: finish quietly
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        try:
            line = await asyncio.wait_for(
                reader.readline(), KEEPALIVE_TIMEOUT_S
            )
        except asyncio.TimeoutError:
            return None
        if not line or len(line) > MAX_HEADER_LINE:
            return None
        parts = line.decode("latin-1").split()
        if len(parts) != 3:
            return None
        method, target, _version = parts
        headers: Dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            if len(raw) > MAX_HEADER_LINE:
                return None
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length < 0 or length > MAX_BODY_BYTES:
            return None
        body = await reader.readexactly(length) if length else b""
        return method, target, headers, body

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    @staticmethod
    def _job_id(path: str) -> Optional[str]:
        parts = path.strip("/").split("/")
        if len(parts) >= 2 and parts[0] == "jobs" and parts[1]:
            return parts[1]
        return None

    @staticmethod
    def _events_job_id(path: str) -> Optional[str]:
        parts = path.strip("/").split("/")
        if len(parts) == 3 and parts[0] == "jobs" and \
                parts[2] == "events":
            return parts[1]
        return None

    def _label(self, method: str, path: str) -> str:
        parts = path.strip("/").split("/")
        if parts and parts[0] == "jobs":
            if len(parts) == 1:
                return f"{method} /jobs"
            if len(parts) == 2:
                return f"{method} /jobs/{{id}}"
            return f"{method} /jobs/{{id}}/{parts[2]}"
        if path in ("/healthz", "/metrics", "/dashboard"):
            return f"{method} {path}"
        return "OTHER"

    async def _dispatch(
        self, method: str, path: str, query: str, body: bytes
    ) -> Tuple[int, bytes, str]:
        """Route one request; returns (status, payload, content-type)."""
        json_type = "application/json"
        if path == "/jobs":
            if method == "GET":
                snapshots = await asyncio.to_thread(
                    self.manager.list_jobs
                )
                return 200, _json_bytes({"jobs": snapshots}), json_type
            if method != "POST":
                return 405, _json_bytes(
                    {"error": "GET or POST only"}
                ), json_type
            return await self._submit(body)
        job_id = self._job_id(path)
        if job_id is not None:
            if method != "GET":
                return 405, _json_bytes({"error": "GET only"}), json_type
            job = self.manager.get(job_id)
            if job is None:
                return 404, _json_bytes(
                    {"error": f"no job {job_id}"}
                ), json_type
            tail = path.strip("/").split("/")[2:]
            if not tail:
                return 200, _json_bytes(job.snapshot()), json_type
            if tail == ["result"]:
                return await self._result(job)
            return 404, _json_bytes({"error": "unknown path"}), json_type
        if path == "/healthz":
            return 200, _json_bytes({
                "ok": True,
                "store": self.manager.store.root,
                "queue_depth": self.manager.queue_depth,
                "jobs": self.manager.job_counts(),
                "uptime_s": self.metrics.snapshot()["uptime_s"],
            }), json_type
        if path == "/metrics":
            stats = await asyncio.to_thread(self.manager.store.stats)
            payload = {
                "service": self.metrics.snapshot(),
                "queue_depth": self.manager.queue_depth,
                "jobs": self.manager.job_counts(),
                "store": stats,
            }
            if "format=prometheus" in query:
                return 200, render_prometheus(payload).encode(
                    "utf-8"
                ), "text/plain; version=0.0.4; charset=utf-8"
            return 200, _json_bytes(payload), json_type
        if path == "/dashboard":
            if method != "GET":
                return 405, _json_bytes({"error": "GET only"}), json_type
            return 200, DASHBOARD_HTML.encode(
                "utf-8"
            ), "text/html; charset=utf-8"
        return 404, _json_bytes({"error": "unknown path"}), json_type

    async def _submit(self, body: bytes) -> Tuple[int, bytes, str]:
        try:
            data = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            return 400, _json_bytes(
                {"error": "body must be JSON"}
            ), "application/json"
        try:
            job, deduped = await asyncio.to_thread(
                self.manager.submit, data
            )
        except SpecError as exc:
            return 400, _json_bytes(
                {"error": str(exc)}
            ), "application/json"
        except QueueFullError as exc:
            return 429, _json_bytes(
                {"error": str(exc)}
            ), "application/json"
        except ServiceError as exc:
            return 503, _json_bytes(
                {"error": str(exc)}
            ), "application/json"
        return 200 if deduped else 202, _json_bytes({
            "job": job.id,
            "state": job.state,
            "deduped": deduped,
            "cells": job.progress["total"],
        }), "application/json"

    async def _result(self, job: Job) -> Tuple[int, bytes, str]:
        snapshot = job.snapshot()
        if snapshot["state"] in ("queued", "running"):
            return 409, _json_bytes({
                "error": "job not finished", "state": snapshot["state"],
            }), "application/json"
        if snapshot["state"] == "failed":
            return 500, _json_bytes({
                "error": snapshot["error"] or "job failed",
            }), "application/json"
        text = await asyncio.to_thread(self.manager.job_result, job)
        if text is None:
            return 404, _json_bytes({
                "error": "result blob no longer in the store "
                         "(gc'd?); resubmit the spec",
            }), "application/json"
        return 200, text.encode("utf-8"), "application/json"

    # ------------------------------------------------------------------
    # SSE
    # ------------------------------------------------------------------

    async def _stream_events(
        self, writer: asyncio.StreamWriter, job_id: str
    ) -> None:
        job = self.manager.get(job_id)
        if job is None:
            self._write_response(
                writer, 404, _json_bytes({"error": f"no job {job_id}"}),
                "application/json", close=True,
            )
            await writer.drain()
            return
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()
        cursor = 0
        while True:
            for event in job.events_since(cursor):
                cursor += 1
                writer.write(
                    b"data: " + _json_bytes(event) + b"\n\n"
                )
            await writer.drain()
            snapshot = job.snapshot()
            if (
                snapshot["state"] in ("done", "failed")
                and cursor >= len(job.events)
            ):
                writer.write(
                    b"event: end\ndata: " + _json_bytes(snapshot)
                    + b"\n\n"
                )
                await writer.drain()
                return
            await asyncio.sleep(0.05)

    # ------------------------------------------------------------------
    # Response writing
    # ------------------------------------------------------------------

    def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: bytes,
        content_type: str,
        close: bool = False,
    ) -> None:
        reason = _STATUS_TEXT.get(status, "Unknown")
        connection = "close" if close else "keep-alive"
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: {connection}\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + payload)


async def _serve(
    manager: JobManager,
    host: str,
    port: int,
    ready: Optional[threading.Event] = None,
    stop_event: Optional[asyncio.Event] = None,
    announce: bool = False,
) -> SweepServer:
    server = SweepServer(manager, host=host, port=port)
    await server.start()
    if announce:
        print(f"repro.service listening on {server.address} "
              f"(store {manager.store.root})", flush=True)
        _log.info(kv("service.start", address=server.address,
                     store=manager.store.root))
    if stop_event is None:
        stop_event = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError, ValueError):
                loop.add_signal_handler(sig, stop_event.set)
    if ready is not None:
        ready.set()
    server_stop = stop_event
    await server_stop.wait()
    if announce:
        print("repro.service draining in-flight jobs ...", flush=True)
    await server.stop()
    if announce:
        print("repro.service stopped (journal is resumable)",
              flush=True)
    return server


def run_server(
    manager: JobManager, host: str = "127.0.0.1", port: int = 8642
) -> None:
    """Blocking CLI entry point: serve until SIGINT/SIGTERM, then
    drain gracefully."""
    asyncio.run(_serve(manager, host, port, announce=True))


class ServerThread:
    """A sweep server on a background thread (tests/examples/bench).

    Usable as a context manager::

        with ServerThread(store=tmpdir) as server:
            client = ServiceClient(server.host, server.port)
            ...

    The event loop runs on a daemon thread; ``stop()`` drains the job
    manager exactly like the CLI's SIGTERM path.
    """

    def __init__(
        self,
        store: Union[ExperimentStore, str, None] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        inner_jobs: int = 1,
        retry=None,
        queue_size: int = 64,
        resume: bool = True,
    ) -> None:
        self.manager = JobManager(
            store=store, workers=workers, inner_jobs=inner_jobs,
            retry=retry, queue_size=queue_size, resume=resume,
        )
        self.host = host
        self.port = port
        self._requested_port = port
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ServerThread":
        async def main() -> None:
            self._loop = asyncio.get_running_loop()
            self._stop_event = asyncio.Event()
            server = SweepServer(
                self.manager, host=self.host,
                port=self._requested_port,
            )
            try:
                await server.start()
            except BaseException as exc:
                self._error = exc
                self._ready.set()
                raise
            self.port = server.port
            self._ready.set()
            await self._stop_event.wait()
            await server.stop()

        self._thread = threading.Thread(
            target=lambda: asyncio.run(main()),
            daemon=True, name="repro-service-http",
        )
        self._thread.start()
        self._ready.wait(30.0)
        if self._error is not None:
            raise ServiceError(
                f"server failed to start: {self._error}"
            ) from self._error
        return self

    def stop(self) -> None:
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        if self._thread is not None:
            self._thread.join(60.0)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
