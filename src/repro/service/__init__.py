"""repro.service — a long-running sweep server over the experiment store.

The service turns the one-shot ``repro.cli exp`` pipeline into a
daemon: specs are POSTed as JSON, queued onto a bounded job queue,
executed by a worker pool through the *same* caching executor stack
the CLI uses, and their canonical ResultSets served back
byte-identical to a local :func:`repro.api.run_experiment` on the
same store.  Overlapping grids deduplicate per-cell via store
fingerprints (plus an in-process claim map so two concurrent jobs
never compute the same cell twice), whole jobs deduplicate via
:func:`~repro.service.jobs.job_key`, and a journal under
``<store>/service/jobs`` makes queued work survive restarts.

Layers:

- :mod:`repro.service.jobs` — :class:`JobManager`: queue, workers,
  dedup, journal (no networking).
- :mod:`repro.service.app` — :class:`SweepServer`: stdlib asyncio
  HTTP/1.1 + SSE; :func:`run_server` (CLI) and :class:`ServerThread`
  (in-process, for tests/benchmarks).
- :mod:`repro.service.client` — :class:`ServiceClient`: stdlib
  keep-alive client.
- :mod:`repro.service.metrics` — latency histograms behind
  ``GET /metrics``.

Start one with ``python -m repro.cli serve --store runs/store``; see
``docs/service.md`` for the operator guide.
"""

from .app import ServerThread, SweepServer, run_server
from .client import ServiceClient, ServiceClientError
from .jobs import (
    Job,
    JobManager,
    QueueFullError,
    ServiceError,
    job_key,
)
from .metrics import LatencyHistogram, ServiceMetrics

__all__ = [
    "Job",
    "JobManager",
    "LatencyHistogram",
    "QueueFullError",
    "ServerThread",
    "ServiceClient",
    "ServiceClientError",
    "ServiceError",
    "ServiceMetrics",
    "SweepServer",
    "job_key",
    "run_server",
]
