"""A tiny stdlib client for the sweep service.

``http.client`` with keep-alive and a single transparent reconnect on
stale connections — one :class:`ServiceClient` can push thousands of
dedup submits down one socket (this is what the cached-rps benchmark
measures).  Specs go in as plain dicts (the ``exp --spec`` schema) or
:class:`~repro.api.spec.ExperimentSpec` objects; results come back as
the raw canonical JSON text so byte-equality checks against a local
``run_experiment`` need no re-serialisation.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, Iterator, Optional, Union

from ..api.spec import ExperimentSpec

SpecLike = Union[ExperimentSpec, Dict[str, Any]]


class ServiceClientError(RuntimeError):
    """An HTTP-level error reply from the service."""

    def __init__(self, status: int, payload: Any) -> None:
        detail = payload.get("error") if isinstance(payload, dict) \
            else payload
        super().__init__(f"service replied {status}: {detail}")
        self.status = status
        self.payload = payload


class ServiceClient:
    """Talk to a running :class:`~repro.service.app.SweepServer`."""

    def __init__(self, host: str, port: int,
                 timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def _request(
        self, method: str, path: str, body: Optional[bytes] = None
    ) -> tuple:
        headers = {"Content-Type": "application/json"} if body else {}
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                return response.status, response.read()
            except (http.client.HTTPException, ConnectionError,
                    BrokenPipeError, OSError):
                # Stale keep-alive socket (server idle-timeout or
                # restart): reconnect once, then give up.
                self.close()
                if attempt:
                    raise
        raise AssertionError("unreachable")

    def _json(self, method: str, path: str,
              body: Optional[bytes] = None) -> Any:
        status, raw = self._request(method, path, body)
        try:
            payload = json.loads(raw.decode("utf-8")) if raw else None
        except ValueError:
            payload = raw.decode("utf-8", "replace")
        if status >= 400:
            raise ServiceClientError(status, payload)
        return payload

    # ------------------------------------------------------------------
    # API
    # ------------------------------------------------------------------

    def submit(self, spec: SpecLike) -> Dict[str, Any]:
        """POST a spec; returns ``{"job", "state", "deduped", "cells"}``."""
        if isinstance(spec, ExperimentSpec):
            spec = spec.to_dict()
        body = json.dumps(spec, separators=(",", ":")).encode("utf-8")
        return self._json("POST", "/jobs", body)

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._json("GET", f"/jobs/{job_id}")

    def result(self, job_id: str) -> str:
        """The canonical ResultSet JSON, as raw text."""
        status, raw = self._request("GET", f"/jobs/{job_id}/result")
        if status >= 400:
            try:
                payload = json.loads(raw.decode("utf-8"))
            except ValueError:
                payload = raw.decode("utf-8", "replace")
            raise ServiceClientError(status, payload)
        return raw.decode("utf-8")

    def wait(self, job_id: str, timeout: float = 300.0,
             poll: float = 0.05) -> Dict[str, Any]:
        """Poll until the job is done/failed; returns the final
        snapshot (raises on timeout)."""
        deadline = time.monotonic() + timeout
        while True:
            snapshot = self.status(job_id)
            if snapshot["state"] in ("done", "failed"):
                return snapshot
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {snapshot['state']} after "
                    f"{timeout:.0f}s"
                )
            time.sleep(poll)

    def submit_and_wait(self, spec: SpecLike,
                        timeout: float = 300.0) -> Dict[str, Any]:
        reply = self.submit(spec)
        return self.wait(reply["job"], timeout=timeout)

    def events(self, job_id: str,
               timeout: float = 300.0) -> Iterator[Dict[str, Any]]:
        """Stream the job's SSE feed; yields decoded event dicts and
        ends after the final ``event: end`` frame."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=timeout
        )
        try:
            conn.request("GET", f"/jobs/{job_id}/events")
            response = conn.getresponse()
            if response.status >= 400:
                raw = response.read()
                try:
                    payload = json.loads(raw.decode("utf-8"))
                except ValueError:
                    payload = raw.decode("utf-8", "replace")
                raise ServiceClientError(response.status, payload)
            ending = False
            while True:
                line = response.readline()
                if not line:
                    return
                text = line.decode("utf-8").rstrip("\r\n")
                if text.startswith("event:"):
                    ending = text.split(":", 1)[1].strip() == "end"
                    continue
                if text.startswith("data:"):
                    yield json.loads(text.split(":", 1)[1].strip())
                    if ending:
                        return
        finally:
            conn.close()

    def healthz(self) -> Dict[str, Any]:
        return self._json("GET", "/healthz")

    def metrics(self) -> Dict[str, Any]:
        return self._json("GET", "/metrics")

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
