"""Performance microbenchmarks: ``python -m repro.cli bench``.

Times the two hot paths this project optimises and verifies, while doing
so, that the fast paths are *exact*:

* **codec round-trips** — compress+decompress over a corpus of real
  block bytes and synthetic buffers, per codec.  The Huffman round-trip
  is additionally timed against the frozen seed implementation
  (:mod:`repro.compress.reference`) and the payloads are checked
  byte-for-byte.
* **E1 k-edge sweep** — the same (workload x k) grid run through the
  interpreting engine and the trace-replay engine
  (:func:`repro.analysis.sweep.sweep` with ``engine="trace"``), with
  every cell's metrics compared.

Results are written as ``BENCH_core.json`` (at the invoking directory's
root by default) so the performance trajectory is tracked PR-over-PR.
Any payload or metric mismatch marks the run failed — the ``verify``
make target treats that as a hard error.
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from ..cfg import build_cfg
from ..compress.codec import get_codec
from ..compress.reference import (
    reference_huffman_compress,
    reference_huffman_decompress,
)
from ..compress.stats import block_bytes
from ..core.config import SimulationConfig
from ..workloads import generate_sized_program, get_workload
from .sweep import sweep

#: Codecs timed by the round-trip benchmark (self-contained formats).
BENCH_CODECS = ("huffman", "lzw", "lz77", "rle", "dictionary",
                "shared-dict", "shared-huffman")

#: Workloads whose encoded blocks form the benchmark corpus.
_CORPUS_WORKLOADS = ("composite", "dijkstra", "crc32")

#: Size of the synthetic whole-application buffer in the corpus (the
#: decompressor-sized input where the per-byte loops dominate).
_LARGE_BUFFER_BYTES = 16_000
_SMOKE_BUFFER_BYTES = 4_000

#: E1-style sweep grid used for the wall-clock comparison (a
#: representative slice of the E1 experiment suite).
_SWEEP_WORKLOADS = ("composite", "cold_paths", "dijkstra", "adpcm")
_SWEEP_K_VALUES = (1, 2, 4, 8, 16, 32, None)

#: Metrics every (machine, trace) cell pair must agree on exactly.
_COMPARED_METRICS = (
    "total_cycles", "execution_cycles", "average_footprint",
    "peak_footprint", "compressed_size", "uncompressed_size",
)
_COMPARED_COUNTERS = (
    "faults", "stalls", "stall_cycles", "decompressions",
    "recompressions", "patches", "evictions", "blocks_executed",
)


def _corpus(smoke: bool) -> List[bytes]:
    """Benchmark inputs: real block bytes plus whole-program buffers."""
    corpus: List[bytes] = []
    programs: List[bytes] = []
    for name in _CORPUS_WORKLOADS[: 1 if smoke else None]:
        cfg = build_cfg(get_workload(name).program)
        blocks = [block_bytes(block) for block in cfg.blocks]
        corpus.extend(blocks)
        programs.append(b"".join(blocks))
    # Whole-program buffers exercise the batch paths; block-sized
    # entries exercise per-call overhead.
    corpus.extend(programs)
    # One application-sized buffer of real ISA-encoded instructions —
    # the input size where per-byte loop cost dominates fixed cost.
    target = _SMOKE_BUFFER_BYTES if smoke else _LARGE_BUFFER_BYTES
    big = generate_sized_program(seed=7, target_bytes=target)
    corpus.append(b"".join(
        block_bytes(block) for block in build_cfg(big).blocks
    ))
    return corpus


def _time(action: Callable[[], object], repeats: int) -> float:
    """Best-of-``repeats`` wall-clock seconds for ``action``."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        action()
        best = min(best, time.perf_counter() - started)
    return best


def bench_huffman_roundtrip(smoke: bool = False) -> Dict[str, object]:
    """Huffman round-trip: batched/table-driven vs. the seed code.

    Also asserts the compressed payloads are byte-identical; a mismatch
    is reported in the result and fails the benchmark run.
    """
    corpus = _corpus(smoke)
    codec = get_codec("huffman")
    payloads_equal = all(
        codec.compress(data) == reference_huffman_compress(data)
        and codec.decompress(codec.compress(data)) == data
        for data in corpus
    )
    repeats = 2 if smoke else 5

    def fast() -> None:
        for data in corpus:
            codec.decompress(codec.compress(data))

    def reference() -> None:
        for data in corpus:
            reference_huffman_decompress(reference_huffman_compress(data))

    fast_s = _time(fast, repeats)
    reference_s = _time(reference, repeats)
    return {
        "fast_s": fast_s,
        "reference_s": reference_s,
        "speedup": reference_s / fast_s if fast_s else float("inf"),
        "payloads_byte_identical": payloads_equal,
        "corpus_buffers": len(corpus),
        "corpus_bytes": sum(len(d) for d in corpus),
    }


def bench_codec_roundtrips(smoke: bool = False) -> Dict[str, Dict[str, float]]:
    """Round-trip throughput for every benchmarked codec."""
    corpus = _corpus(smoke)
    total_bytes = sum(len(d) for d in corpus)
    repeats = 1 if smoke else 3
    out: Dict[str, Dict[str, float]] = {}
    for name in BENCH_CODECS:
        codec = get_codec(name)

        def roundtrip() -> None:
            for data in corpus:
                codec.decompress(codec.compress(data))

        seconds = _time(roundtrip, repeats)
        out[name] = {
            "seconds": seconds,
            "mb_per_s": (total_bytes / 1e6) / seconds if seconds else 0.0,
        }
    return out


def bench_manager_loop(smoke: bool = False) -> Dict[str, object]:
    """Manager-loop cost: one default-config interpreted simulation.

    Times the orchestrator core (timing + residency subsystems plus the
    interpreting machine) on a fixed workload, reporting blocks and
    cycles simulated per wall-clock second — the number that makes a
    manager-loop regression visible PR-over-PR in BENCH_core.json.
    """
    from ..core.manager import CodeCompressionManager

    cfg = build_cfg(get_workload("composite").program)
    config = SimulationConfig(
        codec="shared-dict", decompression="ondemand", k_compress=4,
        trace_events=False, record_trace=False,
    )
    # Warm the shared compression artifacts so the loop, not codec
    # training, is what gets timed.
    result = CodeCompressionManager(cfg, config).run()
    repeats = 2 if smoke else 5
    seconds = _time(
        lambda: CodeCompressionManager(cfg, config).run(), repeats
    )
    blocks = result.counters.blocks_executed
    return {
        "workload": "composite",
        "blocks_executed": blocks,
        "total_cycles": result.total_cycles,
        "seconds": seconds,
        "blocks_per_s": blocks / seconds if seconds else float("inf"),
    }


def _sweep_configs() -> List[SimulationConfig]:
    return [
        SimulationConfig(codec="shared-dict", decompression="ondemand",
                         k_compress=k)
        for k in _SWEEP_K_VALUES
    ]


def _metrics_equal(left, right) -> bool:
    """Exact equality of the compared metrics of two results."""
    return all(
        getattr(left, metric) == getattr(right, metric)
        for metric in _COMPARED_METRICS
    ) and all(
        getattr(left.counters, counter) == getattr(
            right.counters, counter
        )
        for counter in _COMPARED_COUNTERS
    )


def _results_equal(machine_runs, trace_runs) -> bool:
    """Cell-by-cell metric equality between the two sweep engines."""
    if len(machine_runs) != len(trace_runs):
        return False
    return all(
        _metrics_equal(left.result, right.result)
        for left, right in zip(machine_runs, trace_runs)
    )


def bench_e1_sweep(smoke: bool = False) -> Dict[str, object]:
    """E1 k-edge sweep: interpreting engine vs. trace-replay engine."""
    workloads = [
        get_workload(name)
        for name in _SWEEP_WORKLOADS[: 1 if smoke else None]
    ]
    configs = _sweep_configs()
    if smoke:
        configs = configs[:3]
    repeats = 1 if smoke else 2

    machine_result = sweep(workloads, configs, engine="machine")
    trace_result = sweep(workloads, configs, engine="trace")
    metrics_equal = _results_equal(machine_result.runs, trace_result.runs)

    machine_s = _time(
        lambda: sweep(workloads, configs, engine="machine"), repeats
    )
    trace_s = _time(
        lambda: sweep(workloads, configs, engine="trace"), repeats
    )
    return {
        "workloads": [w.name for w in workloads],
        "cells": len(configs) * len(workloads),
        "machine_s": machine_s,
        "trace_s": trace_s,
        "speedup": machine_s / trace_s if trace_s else float("inf"),
        "metrics_equal": metrics_equal,
    }


def bench_chaos_overhead(smoke: bool = False) -> Dict[str, object]:
    """Fault-free cost of the fault-tolerance layer: must be < 2%.

    Times the same partition sweep with no retry policy (the seed
    path) and with an armed ``RetryPolicy`` (per-cell deadlines and
    the injection hooks active, but no plan installed, so nothing
    fires).  The guard keeps the robustness layer honest: chaos
    machinery must cost nothing when chaos is off.  Interleaved
    best-of-``repeats`` timing cancels drift between the two paths.
    """
    from ..api.executor import run_partition
    from ..faults.plan import FAULTS_ENV
    from ..faults.retry import RetryPolicy

    workload = get_workload("composite")
    configs = _sweep_configs()[:3]
    policy = RetryPolicy(attempts=3, timeout=60.0)
    repeats = 3 if smoke else 5
    # An inherited $REPRO_FAULTS would make the "fault-free" claim a
    # lie; measure with chaos genuinely off.
    previous = os.environ.pop(FAULTS_ENV, None)
    try:
        plain = armed = float("inf")
        for _ in range(repeats):
            started = time.perf_counter()
            run_partition(workload, configs, "machine", True, None)
            plain = min(plain, time.perf_counter() - started)
            started = time.perf_counter()
            run_partition(workload, configs, "machine", True, None,
                          policy)
            armed = min(armed, time.perf_counter() - started)
    finally:
        if previous is not None:
            os.environ[FAULTS_ENV] = previous
    overhead = (armed - plain) / plain if plain else 0.0
    return {
        "cells": len(configs),
        "plain_s": plain,
        "armed_s": armed,
        "overhead": overhead,
        "within_budget": overhead < 0.02,
    }


def bench_trace_overhead(smoke: bool = False) -> Dict[str, object]:
    """Cost of the span-tracing hooks: < 2% dormant, bounded armed.

    Three interleaved timings of the same partition sweep: **bare**
    (the :class:`~repro.core.timing.TimingModel` hook-bearing methods
    temporarily replaced with hook-free copies — what the code would
    cost if the tracing hooks did not exist), **off** (the shipped
    code, hooks dormant on ``NULL_TRACER`` — the default every user
    runs), and **armed** (a live :class:`~repro.obs.SpanTracer` via
    :func:`~repro.obs.tracing_scope`).  The dormant overhead is the
    headline guard — observability must be free when off; the armed
    overhead is loosely bounded so a pathological tracer regression
    still fails the run.
    """
    from ..api.executor import run_partition
    from ..core.timing import TimingModel
    from ..obs.tracer import TraceSink, tracing_scope

    workload = get_workload("composite")
    configs = _sweep_configs()[:3]
    repeats = 3 if smoke else 5

    def bare_stall(self, cycles, *, count_stall=True,
                   kind="decompress"):
        self.now += cycles
        self.counters.stall_cycles += cycles
        if count_stall:
            self.counters.stalls += 1

    def bare_schedule_decompression(self, unit_id, latency):
        job = self.decompress_worker.schedule(
            self.now, unit_id, latency
        )
        self.counters.background_decompress_cycles += job.latency
        return job

    def bare_cancel_decompression(self, unit_id):
        self.decompress_worker.cancel(unit_id, self.now)

    def bare_schedule_patches(self, unit_id, cycles):
        self.compress_worker.schedule(self.now, unit_id, cycles)
        self.compress_worker.retire_completed(self.now)

    bare_methods = {
        "stall": bare_stall,
        "schedule_decompression": bare_schedule_decompression,
        "cancel_decompression": bare_cancel_decompression,
        "schedule_patches": bare_schedule_patches,
    }
    originals = {
        name: getattr(TimingModel, name) for name in bare_methods
    }
    bare_s = off_s = armed_s = float("inf")
    sink = TraceSink(keep_spans=False)
    for _ in range(repeats):
        try:
            for name, method in bare_methods.items():
                setattr(TimingModel, name, method)
            started = time.perf_counter()
            run_partition(workload, configs, "machine", True, None)
            bare_s = min(bare_s, time.perf_counter() - started)
        finally:
            for name, method in originals.items():
                setattr(TimingModel, name, method)
        started = time.perf_counter()
        run_partition(workload, configs, "machine", True, None)
        off_s = min(off_s, time.perf_counter() - started)
        started = time.perf_counter()
        with tracing_scope(sink):
            run_partition(workload, configs, "machine", True, None)
        armed_s = min(armed_s, time.perf_counter() - started)
    disabled = (off_s - bare_s) / bare_s if bare_s else 0.0
    armed = (armed_s - bare_s) / bare_s if bare_s else 0.0
    return {
        "cells": len(configs),
        "bare_s": bare_s,
        "off_s": off_s,
        "armed_s": armed_s,
        "disabled_overhead": disabled,
        "armed_overhead": armed,
        "within_budget": disabled < 0.02 and armed < 0.5,
    }


def bench_trace_replay_batched(smoke: bool = False) -> Dict[str, object]:
    """Batched trace-replay kernel vs. interpreting the same cell.

    Records one block trace of the ``composite`` workload, then times
    replaying it through :func:`~repro.runtime.trace_sim.simulate_trace`
    (which runs inside the batched kernel's envelope —
    :mod:`repro.core.replay`) against interpreting the identical
    configuration from scratch.  The replayed metrics must match the
    interpreted ones exactly, and the speedup carries an explicit
    regression floor (``within_budget``) so a kernel slowdown — or a
    silent fall-off from the batched envelope back to the per-block
    path — fails the run.
    """
    from ..core.manager import CodeCompressionManager
    from ..runtime.trace_sim import PreparedTrace, simulate_trace

    graph = build_cfg(get_workload("composite").program)
    recording = SimulationConfig(
        decompression="none", record_trace=True, trace_events=False,
    )
    recorded = CodeCompressionManager(graph, recording).run()
    prepared = PreparedTrace(graph, recorded.block_trace)
    config = SimulationConfig(
        codec="shared-dict", decompression="ondemand", k_compress=4,
        trace_events=False, record_trace=False,
    )
    # One warm pass each: codec training and compression artifacts are
    # shared, so the timed loops measure the engines, not the caches.
    interpreted = CodeCompressionManager(graph, config).run()
    replayed = simulate_trace(graph, prepared, config)
    metrics_equal = _metrics_equal(interpreted, replayed)

    repeats = 2 if smoke else 5
    replay_s = _time(
        lambda: simulate_trace(graph, prepared, config), repeats
    )
    machine_s = _time(
        lambda: CodeCompressionManager(graph, config).run(), repeats
    )
    blocks = replayed.counters.blocks_executed
    speedup = machine_s / replay_s if replay_s else float("inf")
    return {
        "workload": "composite",
        "blocks_replayed": blocks,
        "replay_s": replay_s,
        "machine_s": machine_s,
        "blocks_per_s": blocks / replay_s if replay_s else float("inf"),
        "speedup": speedup,
        "metrics_equal": metrics_equal,
        "within_budget": speedup >= 5.0,
    }


def bench_bitio_bulk(smoke: bool = False) -> Dict[str, object]:
    """Bulk ``write_run``/``read_run`` vs. scalar per-field bit I/O.

    Streams a fixed corpus of 11-bit fields (an LZW-like width) through
    the word-at-a-time bulk paths and through per-field
    ``write_bits``/``read_bits`` loops.  The bit streams and decoded
    values must be identical, and the bulk paths carry an explicit
    speedup floor (``within_budget``) as the regression guard.
    """
    import random

    from ..compress.bitio import BitReader, BitWriter

    width = 11
    count = 5_000 if smoke else 50_000
    rng = random.Random(11)
    values = [rng.getrandbits(width) for _ in range(count)]

    writer = BitWriter()
    writer.write_run(values, width)
    payload = writer.getvalue()
    scalar_writer = BitWriter()
    for value in values:
        scalar_writer.write_bits(value, width)
    identical = (
        scalar_writer.getvalue() == payload
        and BitReader(payload).read_run(width, count) == values
    )

    def bulk() -> None:
        out = BitWriter()
        out.write_run(values, width)
        BitReader(out.getvalue()).read_run(width, count)

    def scalar() -> None:
        out = BitWriter()
        write_bits = out.write_bits
        for value in values:
            write_bits(value, width)
        reader = BitReader(out.getvalue())
        read_bits = reader.read_bits
        for _ in range(count):
            read_bits(width)

    repeats = 3 if smoke else 5
    bulk_s = _time(bulk, repeats)
    scalar_s = _time(scalar, repeats)
    speedup = scalar_s / bulk_s if bulk_s else float("inf")
    return {
        "fields": count,
        "width": width,
        "bulk_s": bulk_s,
        "scalar_s": scalar_s,
        "speedup": speedup,
        "identical": identical,
        "within_budget": speedup >= 2.0,
    }


def bench_pipeline(smoke: bool = False) -> Dict[str, object]:
    """Layered-pipeline overhead vs. its flat entropy stage.

    Round-trips the benchmark corpus through ``delta|huffman`` and
    through flat ``huffman``: the transform layer must be lossless on
    every input, and the composed encode+decode wall clock must stay
    within 2.5x of the flat codec (``within_budget``) — the layering
    machinery (transport header, transform passes) is bookkeeping, not
    a second compressor, and this floor keeps it that way.
    """
    corpus = _corpus(smoke)
    flat = get_codec("huffman")
    pipe = get_codec("delta|huffman")
    identical = all(
        pipe.decompress(pipe.compress(data)) == data for data in corpus
    )

    def roundtrip(codec) -> None:
        for data in corpus:
            codec.decompress(codec.compress(data))

    repeats = 3 if smoke else 5
    flat_s = _time(lambda: roundtrip(flat), repeats)
    pipe_s = _time(lambda: roundtrip(pipe), repeats)
    overhead = pipe_s / flat_s if flat_s else float("inf")
    return {
        "pipeline": pipe.name,
        "entropy": "huffman",
        "inputs": len(corpus),
        "flat_s": flat_s,
        "pipeline_s": pipe_s,
        "overhead_x": overhead,
        "lossless": identical,
        "within_budget": overhead <= 2.5,
    }


def bench_service_cached_rps(smoke: bool = False) -> Dict[str, object]:
    """Cached-submit throughput of the sweep service: must be ≥ 1000/s.

    Boots a real :class:`~repro.service.app.ServerThread` on a
    throwaway store, computes one small sweep, then hammers the same
    spec over a single keep-alive connection.  Every request after the
    first is a dedup hit (``job_key`` match → the finished job), so
    this times the full HTTP + spec-validation + dedup fast path —
    the budget keeps the service viable as a shared cache front-end.
    """
    import shutil
    import tempfile

    from ..service import ServerThread, ServiceClient

    spec = {
        "name": "bench-service",
        "workloads": ["fib"],
        "base": {"codec": "shared-dict", "decompression": "ondemand"},
        "axes": {"grid": {"k_compress": [1, "inf"]}},
        "engine": "trace",
    }
    requests = 300 if smoke else 2000
    root = tempfile.mkdtemp(prefix="repro-bench-service-")
    try:
        with ServerThread(store=root) as server:
            client = ServiceClient(server.host, server.port)
            reply = client.submit(spec)
            client.wait(reply["job"], timeout=300.0)
            client.submit(spec)  # warm the dedup + keep-alive path
            started = time.perf_counter()
            for _ in range(requests):
                client.submit(spec)
            elapsed = time.perf_counter() - started
            client.close()
    finally:
        shutil.rmtree(root, ignore_errors=True)
    rps = requests / elapsed if elapsed else float("inf")
    return {
        "requests": requests,
        "seconds": elapsed,
        "cached_rps": rps,
        "within_budget": rps >= 1000.0,
    }


#: Named benchmark registry (``--only NAME`` accepts these).  The key is
#: both the CLI name and the report section the result lands under.
BENCHMARKS: Dict[str, Callable[[bool], Dict[str, object]]] = {
    "huffman_roundtrip": bench_huffman_roundtrip,
    "codec_roundtrips": bench_codec_roundtrips,
    "e1_sweep": bench_e1_sweep,
    "manager_loop": bench_manager_loop,
    "chaos_overhead": bench_chaos_overhead,
    "trace_overhead": bench_trace_overhead,
    "trace_replay_batched": bench_trace_replay_batched,
    "bitio_bulk": bench_bitio_bulk,
    "bench_pipeline": bench_pipeline,
    "bench_service_cached_rps": bench_service_cached_rps,
}

#: Per-benchmark exactness/budget gates folded into ``report["ok"]``.
#: A gate sees its (merged) section dict; absent sections (``--only``
#: runs) simply contribute no gate.
_GATES: Dict[str, Callable[[Dict[str, object]], bool]] = {
    "huffman_roundtrip": lambda r: bool(r["payloads_byte_identical"]),
    "e1_sweep": lambda r: bool(r["metrics_equal"]),
    "chaos_overhead": lambda r: bool(r["within_budget"]),
    "trace_overhead": lambda r: bool(r["within_budget"]),
    "trace_replay_batched": lambda r: (
        bool(r["metrics_equal"]) and bool(r["within_budget"])
    ),
    "bitio_bulk": lambda r: (
        bool(r["identical"]) and bool(r["within_budget"])
    ),
    "bench_pipeline": lambda r: (
        bool(r["lossless"]) and bool(r["within_budget"])
    ),
    "bench_service_cached_rps": lambda r: bool(r["within_budget"]),
}


def _merge_repeats(samples: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """Fold ``--repeat N`` samples of one benchmark into one section.

    Numeric fields take the median across runs (the reported timing is
    the median-of-N), booleans AND together (every run must pass its
    exactness check), nested dicts merge recursively, and anything else
    keeps the first run's value.
    """
    first = samples[0]
    if len(samples) == 1:
        return dict(first)
    merged: Dict[str, object] = {}
    for key, value in first.items():
        values = [sample[key] for sample in samples]
        if isinstance(value, bool):
            merged[key] = all(values)
        elif isinstance(value, (int, float)):
            merged[key] = statistics.median(values)
        elif isinstance(value, dict):
            merged[key] = _merge_repeats(values)
        else:
            merged[key] = value
    return merged


def run_benchmarks(
    smoke: bool = False,
    only: Optional[str] = None,
    repeat: int = 1,
) -> Dict[str, object]:
    """Run the benchmark suite and return the report dict.

    ``only`` restricts the run to one :data:`BENCHMARKS` entry (for
    iterating on a single benchmark during perf work); ``repeat`` runs
    each selected benchmark N times and reports the median-of-N (see
    :func:`_merge_repeats`).  ``report["ok"]`` is False when any gate of
    a *selected* benchmark failed — payload mismatch, engine metric
    divergence, a blown overhead budget, or a speedup under its
    regression floor.
    """
    if repeat < 1:
        raise ValueError(f"repeat must be >= 1, got {repeat}")
    if only is not None and only not in BENCHMARKS:
        raise KeyError(
            f"unknown benchmark '{only}'; available: "
            f"{', '.join(BENCHMARKS)}"
        )
    names = [only] if only is not None else list(BENCHMARKS)
    report: Dict[str, object] = {
        "schema": "bench_core/v1",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "smoke": smoke,
        "repeat": repeat,
    }
    ok = True
    for name in names:
        section = _merge_repeats(
            [BENCHMARKS[name](smoke) for _ in range(repeat)]
        )
        report[name] = section
        gate = _GATES.get(name)
        if gate is not None:
            ok = ok and bool(gate(section))
    report["ok"] = ok
    return report


def write_report(
    report: Dict[str, object], output: Optional[Path] = None
) -> Path:
    """Write ``report`` as JSON (default: ``BENCH_core.json`` in cwd)."""
    path = Path(output) if output is not None else Path("BENCH_core.json")
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def render_report(report: Dict[str, object]) -> str:
    """Human-readable summary of a (possibly ``--only``-filtered)
    benchmark report."""
    lines: List[str] = []
    huffman = report.get("huffman_roundtrip")
    codecs = report.get("codec_roundtrips")
    if codecs and huffman:
        lines.append(
            "codec round-trips"
            f" ({huffman['corpus_buffers']} buffers,"
            f" {huffman['corpus_bytes']} bytes):"
        )
    elif codecs:
        lines.append("codec round-trips:")
    for name, stats in (codecs or {}).items():
        lines.append(
            f"  {name:14s} {stats['seconds'] * 1000:8.1f} ms"
            f"  ({stats['mb_per_s']:6.2f} MB/s)"
        )
    if huffman:
        lines.append(
            f"huffman vs seed: {huffman['fast_s'] * 1000:.1f} ms vs "
            f"{huffman['reference_s'] * 1000:.1f} ms "
            f"-> {huffman['speedup']:.2f}x "
            f"(payloads identical: {huffman['payloads_byte_identical']})"
        )
    e1 = report.get("e1_sweep")
    if e1:
        lines.append(
            f"E1 sweep ({', '.join(e1['workloads'])}; "
            f"{e1['cells']} cells): "
            f"machine {e1['machine_s'] * 1000:.0f} ms vs trace "
            f"{e1['trace_s'] * 1000:.0f} ms -> {e1['speedup']:.2f}x "
            f"(metrics equal: {e1['metrics_equal']})"
        )
    replay = report.get("trace_replay_batched")
    if replay:
        lines.append(
            f"batched replay ({replay['workload']}; "
            f"{replay['blocks_replayed']} blocks): "
            f"{replay['replay_s'] * 1000:.1f} ms vs machine "
            f"{replay['machine_s'] * 1000:.1f} ms -> "
            f"{replay['speedup']:.1f}x "
            f"({replay['blocks_per_s']:,.0f} blocks/s; "
            f"metrics equal: {replay['metrics_equal']}; "
            f"floor >= 5x: {replay['within_budget']})"
        )
    bitio = report.get("bitio_bulk")
    if bitio:
        lines.append(
            f"bitio bulk ({bitio['fields']} x {bitio['width']}-bit "
            f"fields): {bitio['bulk_s'] * 1000:.2f} ms vs scalar "
            f"{bitio['scalar_s'] * 1000:.2f} ms -> "
            f"{bitio['speedup']:.1f}x "
            f"(streams identical: {bitio['identical']}; "
            f"floor >= 2x: {bitio['within_budget']})"
        )
    loop = report.get("manager_loop")
    if loop:
        lines.append(
            f"manager loop ({loop['workload']}; "
            f"{loop['blocks_executed']} blocks): "
            f"{loop['seconds'] * 1000:.1f} ms "
            f"({loop['blocks_per_s']:,.0f} blocks/s)"
        )
    chaos = report.get("chaos_overhead")
    if chaos:
        lines.append(
            f"chaos off-path overhead ({chaos['cells']} cells): "
            f"{chaos['plain_s'] * 1000:.1f} ms plain vs "
            f"{chaos['armed_s'] * 1000:.1f} ms armed -> "
            f"{chaos['overhead'] * 100:+.2f}% "
            f"(budget < 2%: {chaos['within_budget']})"
        )
    tracing = report.get("trace_overhead")
    if tracing:
        lines.append(
            f"trace hook overhead ({tracing['cells']} cells): "
            f"{tracing['bare_s'] * 1000:.1f} ms bare vs "
            f"{tracing['off_s'] * 1000:.1f} ms dormant "
            f"({tracing['disabled_overhead'] * 100:+.2f}%) vs "
            f"{tracing['armed_s'] * 1000:.1f} ms armed "
            f"({tracing['armed_overhead'] * 100:+.2f}%) "
            f"(budget < 2% dormant: {tracing['within_budget']})"
        )
    pipeline = report.get("bench_pipeline")
    if pipeline:
        lines.append(
            f"pipeline {pipeline['pipeline']} "
            f"({pipeline['inputs']} inputs): "
            f"{pipeline['pipeline_s'] * 1000:.1f} ms vs flat "
            f"{pipeline['entropy']} {pipeline['flat_s'] * 1000:.1f} ms "
            f"-> {pipeline['overhead_x']:.2f}x "
            f"(lossless: {pipeline['lossless']}; "
            f"budget <= 2.5x: {pipeline['within_budget']})"
        )
    service = report.get("bench_service_cached_rps")
    if service:
        lines.append(
            f"service cached submits ({service['requests']} requests): "
            f"{service['seconds'] * 1000:.0f} ms -> "
            f"{service['cached_rps']:,.0f} req/s "
            f"(budget >= 1000/s: {service['within_budget']})"
        )
    lines.append(f"ok: {report['ok']}")
    return "\n".join(lines)
