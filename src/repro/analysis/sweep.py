"""Parameter-sweep harness shared by the experiment benchmarks.

One call = one grid of (workload x configuration) simulations, returned as
:class:`SweepResult` for table/series extraction.  Simulation runs are
deliberately sequential and deterministic (no threads, no wall-clock
dependence) so experiment output is stable across machines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..cfg.builder import ProgramCFG, build_cfg
from ..core.config import SimulationConfig
from ..core.manager import CodeCompressionManager
from ..isa.program import Program
from ..runtime.metrics import SimulationResult
from ..workloads.suite import Workload


@dataclass
class SweepRun:
    """One (workload, config) cell of a sweep."""

    workload: str
    config: SimulationConfig
    result: SimulationResult
    validation: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when the workload oracle accepted the final state."""
        return not self.validation


@dataclass
class SweepResult:
    """All runs of one sweep, with lookup helpers."""

    runs: List[SweepRun] = field(default_factory=list)

    def by_workload(self, name: str) -> List[SweepRun]:
        """Runs of one workload, in sweep order."""
        return [run for run in self.runs if run.workload == name]

    def by_label(self, label: str) -> List[SweepRun]:
        """Runs whose config label/strategy name matches ``label``."""
        return [
            run for run in self.runs
            if run.config.strategy_name == label
        ]

    def workloads(self) -> List[str]:
        """Distinct workload names in first-seen order."""
        seen: List[str] = []
        for run in self.runs:
            if run.workload not in seen:
                seen.append(run.workload)
        return seen

    def failures(self) -> List[SweepRun]:
        """Runs whose oracle rejected the final machine state."""
        return [run for run in self.runs if not run.ok]


#: Default fast-simulation overrides applied to every sweep config.
_FAST = {"trace_events": False, "record_trace": False}


def run_one(
    workload: Workload,
    config: SimulationConfig,
    cfg: Optional[ProgramCFG] = None,
    max_blocks: Optional[int] = None,
) -> SweepRun:
    """Simulate one workload under one config and validate the result."""
    graph = cfg if cfg is not None else build_cfg(workload.program)
    manager = CodeCompressionManager(graph, config)
    result = manager.run(max_blocks=max_blocks)
    return SweepRun(
        workload=workload.name,
        config=config,
        result=result,
        validation=workload.validate(manager.machine),
    )


def sweep(
    workloads: Sequence[Workload],
    configs: Sequence[SimulationConfig],
    fast: bool = True,
    max_blocks: Optional[int] = None,
) -> SweepResult:
    """Run the full (workload x config) grid.

    ``fast=True`` disables event/trace recording (the counters and
    footprint timeline are unaffected).  CFGs are built once per workload
    and shared across configs.
    """
    out = SweepResult()
    for workload in workloads:
        graph = build_cfg(workload.program)
        for config in configs:
            effective = config.replace(**_FAST) if fast else config
            out.runs.append(
                run_one(workload, effective, cfg=graph,
                        max_blocks=max_blocks)
            )
    return out


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean (values must be positive)."""
    values = list(values)
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        if value <= 0:
            raise ValueError(
                f"geometric mean needs positive values, got {value}"
            )
        product *= value
    return product ** (1.0 / len(values))


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean (0.0 for an empty sequence)."""
    values = list(values)
    return sum(values) / len(values) if values else 0.0
