"""The internal sweep-engine layer under :mod:`repro.api`.

One call = one grid of (workload x configuration) simulations, returned as
:class:`SweepResult` for table/series extraction.  Simulation runs are
deterministic (no threads, no wall-clock dependence) so experiment
output is stable across machines; parallelism lives a layer up, in the
:mod:`repro.api.executor` process pool, which dispatches whole-workload
partitions through this module.

Engines live in the :data:`ENGINES` registry; two are built in:

* ``engine="machine"`` interprets every instruction of every grid cell —
  the gold standard, and the default.
* ``engine="trace"`` is the shared-artifact fast path: per workload, the
  CFG is built once and the block trace is recorded *once* under the
  uncompressed baseline config (``decompression="none"``), then **every**
  grid cell replays it through
  :func:`~repro.runtime.trace_sim.simulate_trace` — replays inside the
  batched kernel's envelope (:mod:`repro.core.replay`) fast-forward whole
  resident runs in bulk.  The recording itself is not a grid cell; its
  result is discarded (only the trace and the oracle validation survive,
  cached per CFG so repeated sweeps over the same workload objects never
  re-record).  Compressed payloads are shared across cells via the
  :func:`~repro.memory.image.compression_artifacts` cache, so identical
  block bytes are never recompressed.  Compression policy is transparent
  to program semantics (the differential-oracle integration tests enforce
  this), so the recorded block sequence is valid for every configuration
  and the resulting metrics are identical to machine-driven metrics —
  asserted by ``tests/integration/test_trace_sweep_equivalence.py``.
  Replayed cells reuse the recording's oracle validation (replay does
  not model register state).  If the trace overflows the recording cap,
  the sweep emits a structured ``repro.log.kv`` fallback event and
  interprets every cell of that workload.
"""

from __future__ import annotations

import logging
import os
import weakref
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..cfg.builder import ProgramCFG, build_cfg, build_cfg_cached
from ..core.config import SimulationConfig
from ..core import manager as _manager_mod
from ..core.manager import CodeCompressionManager
from ..faults.runtime import CellTimeoutError, FaultError, cell_guard
from ..isa.program import Program
from ..log import kv
from ..obs.spans import span
from ..registry import Registry
from ..runtime.metrics import Counters, FootprintTimeline, SimulationResult
from ..runtime.trace_sim import PreparedTrace, simulate_trace
from ..workloads.suite import Workload

_log = logging.getLogger("repro.sweep")

#: Sweep engine registry: each engine runs one workload's grid row
#: (``engine(workload, graph, configs, fast, max_blocks) -> [SweepRun]``).
#: New engines plug in via ``ENGINES.register`` without touching sweep().
ENGINES = Registry("engines", item="sweep engine")


def available_engines() -> List[str]:
    """Names of all registered sweep engines (registration order)."""
    return ENGINES.names(sort=False)


@dataclass
class SweepRun:
    """One (workload, config) cell of a sweep.

    ``error`` is set (and mirrored into ``validation``) when the cell
    raised instead of completing; its result is an all-zero placeholder
    so table extraction never crashes on a failed cell.  ``attempts``
    is the retry provenance a :class:`~repro.faults.retry.RetryPolicy`
    leaves behind (one dict per attempt: number, fault class, error,
    duration); it is serialised only on exhausted error rows, so a
    recovered cell stays byte-identical to an untroubled one.
    """

    workload: str
    config: SimulationConfig
    result: SimulationResult
    validation: List[str] = field(default_factory=list)
    error: Optional[str] = None
    attempts: Optional[List[Dict[str, object]]] = None

    @property
    def ok(self) -> bool:
        """True when the workload oracle accepted the final state."""
        return not self.validation


@dataclass
class SweepResult:
    """All runs of one sweep, with lookup helpers."""

    runs: List[SweepRun] = field(default_factory=list)

    def by_workload(self, name: str) -> List[SweepRun]:
        """Runs of one workload, in sweep order."""
        return [run for run in self.runs if run.workload == name]

    def by_label(self, label: str) -> List[SweepRun]:
        """Runs whose config label/strategy name matches ``label``."""
        return [
            run for run in self.runs
            if run.config.strategy_name == label
        ]

    def workloads(self) -> List[str]:
        """Distinct workload names in first-seen order."""
        seen: List[str] = []
        for run in self.runs:
            if run.workload not in seen:
                seen.append(run.workload)
        return seen

    def failures(self) -> List[SweepRun]:
        """Runs whose oracle rejected the final machine state."""
        return [run for run in self.runs if not run.ok]

    def errors(self) -> List[SweepRun]:
        """Runs whose cell raised instead of completing."""
        return [run for run in self.runs if run.error is not None]


#: Default fast-simulation overrides applied to every sweep config.
_FAST = {"trace_events": False, "record_trace": False}


def effective_config(
    config: SimulationConfig, fast: bool = True
) -> SimulationConfig:
    """The config a sweep cell actually reports under.

    ``fast=True`` disables event/trace recording; every engine applies
    this before running, and cache fingerprints are computed on the
    result so a cell's identity matches what its runs carry.
    """
    return config.replace(**_FAST) if fast else config


def run_one(
    workload: Workload,
    config: SimulationConfig,
    cfg: Optional[ProgramCFG] = None,
    max_blocks: Optional[int] = None,
) -> SweepRun:
    """Simulate one workload under one config and validate the result.

    Runs under :func:`~repro.faults.runtime.cell_guard`: the active
    retry policy's per-cell wall-clock deadline is armed and any
    installed fault plan may fire — both no-ops in the default
    (no-policy, no-plan) configuration.
    """
    graph = cfg if cfg is not None else build_cfg_cached(workload.program)
    with cell_guard(workload.name, config.strategy_name), span(
        f"cell:{workload.name}:{config.strategy_name}", cat="cell",
        workload=workload.name, label=config.strategy_name,
    ):
        manager = CodeCompressionManager(graph, config)
        result = manager.run(max_blocks=max_blocks)
    return SweepRun(
        workload=workload.name,
        config=config,
        result=result,
        validation=workload.validate(manager.machine),
    )


def _failed_run(
    workload: Workload, config: SimulationConfig, exc: BaseException
) -> SweepRun:
    """An error cell: all-zero metrics, failure recorded loudly.

    The message lands in both ``error`` and ``validation`` so the run
    counts as a failure everywhere (``ok`` is False, ``failures()``
    finds it, the CLI exits nonzero and names the cell).
    """
    message = f"{type(exc).__name__}: {exc}"
    result = SimulationResult(
        program=workload.name,
        strategy=config.strategy_name,
        codec=config.codec,
        k_compress=config.k_compress,
        k_decompress=(
            config.k_decompress
            if config.decompression in ("pre-all", "pre-single")
            else None
        ),
        total_cycles=0,
        execution_cycles=0,
        counters=Counters(),
        footprint=FootprintTimeline(),
        uncompressed_size=0,
        compressed_size=0,
    )
    return SweepRun(
        workload=workload.name,
        config=config,
        result=result,
        validation=[f"cell raised {message}"],
        error=message,
    )


def run_one_safe(
    workload: Workload,
    config: SimulationConfig,
    cfg: Optional[ProgramCFG] = None,
    max_blocks: Optional[int] = None,
) -> SweepRun:
    """Like :func:`run_one`, but a raising cell becomes an error run
    instead of aborting the whole grid (KeyboardInterrupt excepted)."""
    try:
        return run_one(workload, config, cfg=cfg, max_blocks=max_blocks)
    except Exception as exc:
        return _failed_run(workload, config, exc)


def sweep(
    workloads: Sequence[Workload],
    configs: Sequence[SimulationConfig],
    fast: bool = True,
    max_blocks: Optional[int] = None,
    engine: str = "machine",
) -> SweepResult:
    """Run the full (workload x config) grid.

    ``fast=True`` disables event/trace recording (the counters and
    footprint timeline are unaffected).  CFGs are built once per workload
    and shared across configs.  ``engine`` names a registered sweep
    engine — ``"machine"`` interprets every cell, ``"trace"`` is the
    trace-replay fast path (see the module docstring for the contract).
    """
    if engine not in ENGINES:
        raise ValueError(
            f"unknown sweep engine '{engine}'; "
            f"available: {tuple(available_engines())}"
        )
    engine_fn = ENGINES.get(engine)
    out = SweepResult()
    for workload in workloads:
        graph = build_cfg_cached(workload.program)
        out.runs.extend(
            engine_fn(workload, graph, configs, fast, max_blocks)
        )
    return out


@ENGINES.register("machine")
def _machine_sweep_workload(
    workload: Workload,
    graph: ProgramCFG,
    configs: Sequence[SimulationConfig],
    fast: bool,
    max_blocks: Optional[int],
) -> List[SweepRun]:
    """One workload's grid row, interpreting every instruction of every
    cell — the gold standard.  A raising cell becomes an error run; the
    rest of the grid still completes."""
    return [
        run_one_safe(workload, effective_config(config, fast),
                     cfg=graph, max_blocks=max_blocks)
        for config in configs
    ]


#: Per-CFG recorded-trace cache for the trace engine:
#: ``graph -> {(max_blocks, data_words, max_steps):
#: (PreparedTrace | None, validation, reason)}``.  ``PreparedTrace`` is
#: None for a negative entry (the recording hit the cap or came back
#: incomplete) with ``reason`` saying why; positive entries carry the
#: prepared trace and the recording's oracle validation.  Keyed weakly
#: on the :class:`ProgramCFG` so dead graphs evict their traces.
_trace_cache: "weakref.WeakKeyDictionary[ProgramCFG, Dict[tuple, tuple]]" \
    = weakref.WeakKeyDictionary()


def _recorded_trace(
    workload: Workload,
    graph: ProgramCFG,
    template: SimulationConfig,
    max_blocks: Optional[int],
):
    """The workload's recorded trace (cached per CFG), or a negative
    entry explaining why replay is off the table.

    Recording runs once under the uncompressed baseline
    (``decompression="none"``): the block sequence and final machine
    state are properties of the *program*, not the compression config
    (the differential oracle enforces this), so one recording serves
    every grid cell and every subsequent sweep over the same CFG.  The
    recording is deliberately not run under ``cell_guard`` — it is not
    a grid cell, so injected faults and per-cell deadlines do not apply.
    """
    # The recording cap is looked up through the module (not a frozen
    # import) so test fixtures that shrink it see truthful fallback
    # events; it is part of the cache key so entries recorded under a
    # different cap are never reused.
    cap = _manager_mod._TRACE_CAP
    key = (max_blocks, template.data_words, template.max_steps, cap)
    per_graph = _trace_cache.get(graph)
    if per_graph is None:
        per_graph = {}
        _trace_cache[graph] = per_graph
    entry = per_graph.get(key)
    if entry is not None:
        return entry
    recording = SimulationConfig(
        decompression="none",
        record_trace=True,
        trace_events=False,
        data_words=template.data_words,
        max_steps=template.max_steps,
    )
    with span(
        f"cell:{workload.name}:record", cat="cell",
        workload=workload.name, label="record", mode="record",
    ):
        manager = CodeCompressionManager(graph, recording)
        result = manager.run(max_blocks=max_blocks)
    validation = workload.validate(manager.machine)
    trace = result.block_trace
    complete = trace and not result.trace_truncated \
        and result.counters.blocks_executed == len(trace) \
        and len(trace) < cap
    if complete:
        prepared = PreparedTrace(graph, trace)
        shards = os.environ.get("REPRO_REPLAY_SHARDS")
        if shards:
            prepared.shard_processes = max(1, int(shards))
        entry = (prepared, validation, None)
    else:
        reason = (
            "truncated" if result.trace_truncated
            or len(trace) >= cap else "incomplete"
        )
        _log.warning(kv(
            "sweep.trace_fallback",
            workload=workload.name,
            cap=cap,
            reason=reason,
        ))
        entry = (None, validation, reason)
    per_graph[key] = entry
    return entry


@ENGINES.register("trace")
def _trace_sweep_workload(
    workload: Workload,
    graph: ProgramCFG,
    configs: Sequence[SimulationConfig],
    fast: bool,
    max_blocks: Optional[int],
) -> List[SweepRun]:
    """One workload's grid row under the trace engine.

    The block trace is recorded once (cached per CFG, see
    :func:`_recorded_trace`) and every cell replays it.  Falls back to
    interpreting the whole row — with a parseable ``repro.log.kv``
    event — when the trace was truncated by the recording cap, and to
    interpreting individual cells whose replay raises.
    """
    runs: List[SweepRun] = []
    try:
        prepared, validation, _reason = _recorded_trace(
            workload, graph, configs[0], max_blocks
        )
    except Exception:
        # The recording itself raised (broken workload, undecodable
        # program): interpret every cell — each captures its own error.
        prepared, validation = None, None
    if prepared is None:
        return [
            run_one_safe(workload, effective_config(config, fast),
                         cfg=graph, max_blocks=max_blocks)
            for config in configs
        ]
    for config in configs:
        effective = effective_config(config, fast)
        try:
            with cell_guard(
                workload.name, effective.strategy_name
            ), span(
                f"cell:{workload.name}:{effective.strategy_name}",
                cat="cell", workload=workload.name,
                label=effective.strategy_name, mode="replay",
            ):
                replayed = simulate_trace(graph, prepared, effective,
                                          max_blocks=max_blocks)
        except (FaultError, CellTimeoutError) as exc:
            # An injected fault or a blown deadline is a cell
            # failure, not a replay shortcoming: report it as an
            # error row (the retry layer may recover it) instead
            # of paying for an interpreting fallback.
            runs.append(_failed_run(workload, effective, exc))
            continue
        except Exception:
            # Replay failed for this cell: fall back to the
            # interpreting path (which captures its own errors).
            runs.append(
                run_one_safe(workload, effective, cfg=graph,
                             max_blocks=max_blocks)
            )
            continue
        runs.append(
            SweepRun(workload=workload.name, config=effective,
                     result=replayed, validation=list(validation))
        )
    return runs


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean (values must be positive)."""
    values = list(values)
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        if value <= 0:
            raise ValueError(
                f"geometric mean needs positive values, got {value}"
            )
        product *= value
    return product ** (1.0 / len(values))


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean (0.0 for an empty sequence)."""
    values = list(values)
    return sum(values) / len(values) if values else 0.0
