"""Memory-traffic and energy model (paper Section 2's secondary claims).

"If there is another level of memory in front of the memory where our
approach targets..., the proposed approach also brings reductions in
memory access latency (as we need to read less amount of data from the
target memory) as well as in the energy consumed in bus/memory accesses."

The model: the level in front of the target memory holds the currently
decompressed copies, so the *target memory* is read only when a block is
(re)materialised:

* uncompressed system — every block entry streams the block's full bytes
  from the target memory (there is no smaller representation to hold);
* compressed system — each decompression reads the block's *compressed*
  bytes; re-entering a resident block hits the front memory for free.

Energy combines bus/memory traffic with the decompressor's work:
``E = traffic_bytes * bus_energy + accesses * access_energy
+ decompress_cycles * cpu_energy``.  The constants are no longer
hard-coded here: they derive from the configured
:class:`~repro.memory.hierarchy.MemoryHierarchy` preset through
:meth:`EnergyModel.for_hierarchy` (the zero-argument default equals the
``flat`` preset, i.e. the seed model).  Only ratios between
configurations are meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from ..memory.hierarchy import MemoryHierarchy, get_hierarchy
from ..runtime.metrics import SimulationResult


@dataclass(frozen=True)
class EnergyModel:
    """Per-unit energy constants (nanojoules).

    ``access_nj`` is the fixed per-materialisation transaction energy of
    the target level (0 for the ``flat`` preset, so the default model
    reproduces the seed numbers exactly).
    """

    bus_nj_per_byte: float = 1.0
    cpu_nj_per_cycle: float = 0.1
    access_nj: float = 0.0

    @classmethod
    def for_hierarchy(
        cls, hierarchy: Union[str, MemoryHierarchy]
    ) -> "EnergyModel":
        """Derive the run energy model from a hierarchy preset.

        The bus energy is the target level's per-byte cost (the front
        memory's traffic is not separately metered), the per-access
        energy is the target's transaction cost, and the CPU energy is
        the hierarchy's decompressor constant.
        """
        h = get_hierarchy(hierarchy)
        return cls(
            bus_nj_per_byte=h.target.nj_per_byte,
            cpu_nj_per_cycle=h.cpu_nj_per_cycle,
            access_nj=h.target.nj_per_access,
        )

    def traffic_energy(self, bytes_read: int) -> float:
        """Energy of moving ``bytes_read`` over the memory bus."""
        return bytes_read * self.bus_nj_per_byte

    def decompress_energy(self, cycles: int) -> float:
        """Energy of ``cycles`` of decompressor work."""
        return cycles * self.cpu_nj_per_cycle

    def access_energy(self, accesses: int) -> float:
        """Fixed transaction energy of ``accesses`` target reads."""
        return accesses * self.access_nj

    def total_energy(self, result: SimulationResult) -> float:
        """Total modelled energy of a run (nJ).

        The per-access term uses ``target_memory_accesses`` — the same
        per-block-read transaction count the traffic and latency models
        charge — so all three hierarchy cost dimensions agree on what
        an access is.
        """
        decompress_cycles = (
            result.counters.background_decompress_cycles
            + result.counters.stall_cycles
        )
        return (
            self.traffic_energy(result.counters.target_memory_bytes)
            + self.access_energy(
                result.counters.target_memory_accesses
            )
            + self.decompress_energy(decompress_cycles)
        )


@dataclass(frozen=True)
class TrafficReport:
    """Target-memory traffic comparison between two runs."""

    baseline_bytes: int
    compressed_bytes: int

    @property
    def reduction(self) -> float:
        """Fraction of target-memory traffic eliminated."""
        if self.baseline_bytes == 0:
            return 0.0
        return 1.0 - self.compressed_bytes / self.baseline_bytes


def compare_traffic(
    baseline: SimulationResult, compressed: SimulationResult
) -> TrafficReport:
    """Build a :class:`TrafficReport` from two runs of the same program."""
    return TrafficReport(
        baseline_bytes=baseline.counters.target_memory_bytes,
        compressed_bytes=compressed.counters.target_memory_bytes,
    )
