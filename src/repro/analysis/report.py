"""Table and series rendering for experiment output.

The benchmark harness prints the same row/series structure for every
experiment: one row per (workload, configuration) with the paper's two
axes — memory saving and cycle overhead — plus supporting counters.
Everything here is pure formatting; no simulation logic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

Number = Union[int, float]


def format_cell(value: object) -> str:
    """Format one table cell: floats to 3 significant decimals,
    percentages passed through as strings."""
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


@dataclass
class Table:
    """A printable experiment table."""

    title: str
    columns: List[str]
    rows: List[List[object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        """Append one row (must match the column count)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has "
                f"{len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def add_note(self, note: str) -> None:
        """Attach a free-text note printed under the table."""
        self.notes.append(note)

    def render(self) -> str:
        """Render as an aligned ASCII table."""
        cells = [[format_cell(v) for v in row] for row in self.rows]
        widths = [
            max(
                len(self.columns[i]),
                max((len(row[i]) for row in cells), default=0),
            )
            for i in range(len(self.columns))
        ]
        lines = [f"== {self.title} =="]
        header = "  ".join(
            name.ljust(widths[i]) for i, name in enumerate(self.columns)
        )
        lines.append(header)
        lines.append("-" * len(header))
        for row in cells:
            lines.append(
                "  ".join(cell.ljust(widths[i])
                          for i, cell in enumerate(row))
            )
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def column(self, name: str) -> List[object]:
        """Extract one column by name."""
        index = self.columns.index(name)
        return [row[index] for row in self.rows]


def percent(value: float) -> str:
    """Format a fraction as a percentage string."""
    return f"{value * 100:.1f}%"


@dataclass
class Series:
    """An (x, y) series — a figure's line, printed as value pairs."""

    label: str
    x_name: str
    y_name: str
    points: List[tuple] = field(default_factory=list)

    def add(self, x: Number, y: Number) -> None:
        """Append one point."""
        self.points.append((x, y))

    def render(self) -> str:
        pairs = ", ".join(
            f"({format_cell(x)}, {format_cell(y)})" for x, y in self.points
        )
        return f"{self.label} [{self.x_name} -> {self.y_name}]: {pairs}"

    def ys(self) -> List[Number]:
        """All y values in x order."""
        return [y for _, y in self.points]

    def is_monotone_nonincreasing(self, tolerance: float = 0.0) -> bool:
        """True if y never increases by more than ``tolerance``."""
        ys = self.ys()
        return all(b <= a + tolerance for a, b in zip(ys, ys[1:]))

    def is_monotone_nondecreasing(self, tolerance: float = 0.0) -> bool:
        """True if y never decreases by more than ``tolerance``."""
        ys = self.ys()
        return all(b >= a - tolerance for a, b in zip(ys, ys[1:]))
