"""Terminal plotting: render footprint timelines and series as ASCII.

Experiment output is text files; these helpers make the memory-over-time
behaviour (the paper's central quantity) visible without a plotting
stack.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..runtime.metrics import FootprintTimeline

_BARS = " .:-=+*#%@"


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Compress ``values`` into a one-line bar chart of ``width`` chars."""
    if not values:
        return ""
    values = list(values)
    if len(values) > width:
        # bucket-average down to the target width
        bucket = len(values) / width
        values = [
            sum(values[int(i * bucket): max(int(i * bucket) + 1,
                                            int((i + 1) * bucket))])
            / max(1, len(values[int(i * bucket): max(
                int(i * bucket) + 1, int((i + 1) * bucket))]))
            for i in range(width)
        ]
    low, high = min(values), max(values)
    span = high - low
    if span == 0:
        return _BARS[len(_BARS) // 2] * len(values)
    out = []
    for value in values:
        index = int((value - low) / span * (len(_BARS) - 1))
        out.append(_BARS[index])
    return "".join(out)


def plot_timeline(
    timeline: FootprintTimeline,
    width: int = 64,
    height: int = 10,
    title: Optional[str] = None,
) -> str:
    """Render a footprint timeline as a small ASCII chart.

    The x axis is cycle time (piecewise-constant samples are resampled
    onto ``width`` columns); the y axis spans [0, peak].
    """
    samples = timeline.samples
    if not samples:
        return "(empty timeline)"
    start = samples[0][0]
    end = samples[-1][0]
    span = max(1, end - start)

    # Resample the step function onto the grid.
    columns: List[int] = []
    sample_index = 0
    for column in range(width):
        cycle = start + span * column // max(1, width - 1)
        while (
            sample_index + 1 < len(samples)
            and samples[sample_index + 1][0] <= cycle
        ):
            sample_index += 1
        columns.append(samples[sample_index][1])

    peak = max(columns)
    if peak == 0:
        peak = 1
    rows: List[str] = []
    if title:
        rows.append(title)
    for level in range(height, 0, -1):
        threshold = peak * level / height
        line = "".join(
            "#" if value >= threshold else " " for value in columns
        )
        label = f"{int(threshold):>8} |"
        rows.append(label + line)
    rows.append(" " * 9 + "+" + "-" * width)
    rows.append(
        f"{'':9}{start:<{width // 2}}{end:>{width - width // 2}}"
    )
    return "\n".join(rows)


def plot_series(
    points: Sequence[Tuple[float, float]],
    width: int = 60,
    label: str = "",
) -> str:
    """One-line summary of an (x, y) series: range plus sparkline."""
    if not points:
        return f"{label}: (empty)"
    ys = [y for _, y in points]
    return (
        f"{label}: min={min(ys):.3g} max={max(ys):.3g}  "
        f"[{sparkline(ys, width)}]"
    )
