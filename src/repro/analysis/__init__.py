"""Analysis helpers: parameter sweeps and table/series reporting."""

from .energy import EnergyModel, TrafficReport, compare_traffic
from .plot import plot_series, plot_timeline, sparkline
from .report import Series, Table, percent
from .sweep import (
    ENGINES,
    SweepResult,
    SweepRun,
    available_engines,
    geometric_mean,
    mean,
    run_one,
    sweep,
)

__all__ = [
    "ENGINES",
    "EnergyModel",
    "Series",
    "available_engines",
    "SweepResult",
    "SweepRun",
    "Table",
    "TrafficReport",
    "compare_traffic",
    "geometric_mean",
    "mean",
    "percent",
    "plot_series",
    "plot_timeline",
    "run_one",
    "sparkline",
    "sweep",
]
