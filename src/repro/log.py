"""Structured ``key=value`` log lines.

The degradation paths of the store and executor stacks (checksum
misses, broken worker pools) and the sweep service all log events that
operators and tests want to *parse*, not grep for prose.  :func:`kv`
renders one event as a single stable line::

    event=store.corrupt_blob store=/tmp/s blob=ab12cd34ef56 action=miss

and :func:`parse_kv` inverts it.  Rules:

* ``event`` always comes first; the remaining fields keep the keyword
  order of the call site, so lines diff cleanly;
* values are rendered as bare tokens when they contain no whitespace,
  quotes, or ``=``; anything else is double-quoted with ``\\`` escapes;
* ``None`` renders as ``null``, booleans as ``true``/``false`` — both
  parse back as strings (the consumer knows its schema).

This is intentionally not a logging handler or formatter: callers keep
their normal stdlib loggers and pass ``kv(...)`` as the message, so log
routing, levels, and capture (``caplog``) all keep working.
"""

from __future__ import annotations

import re
from typing import Any, Dict

_BARE_TOKEN = re.compile(r"^[^\s\"=]+$")

_PAIR = re.compile(
    r"""(?P<key>[A-Za-z0-9_.\-]+)=          # key=
        (?:"(?P<quoted>(?:[^"\\]|\\.)*)"    # "quoted value"
          |(?P<bare>[^\s"=]*))              # or bare token
    """,
    re.VERBOSE,
)


def _render_value(value: Any) -> str:
    if value is None:
        text = "null"
    elif value is True:
        text = "true"
    elif value is False:
        text = "false"
    else:
        text = str(value)
    if text and _BARE_TOKEN.match(text):
        return text
    escaped = text.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def kv(event: str, **fields: Any) -> str:
    """One ``key=value`` log line for ``event`` (see module docstring)."""
    parts = [f"event={_render_value(event)}"]
    parts.extend(
        f"{key}={_render_value(value)}" for key, value in fields.items()
    )
    return " ".join(parts)


def parse_kv(line: str) -> Dict[str, str]:
    """Parse one :func:`kv` line back into a dict of strings.

    Tolerant of leading/trailing prose (e.g. a logging prefix): only
    well-formed ``key=value`` pairs are extracted.  Quoted values are
    unescaped; ``null``/``true``/``false`` come back as those literal
    strings.
    """
    out: Dict[str, str] = {}
    for match in _PAIR.finditer(line):
        quoted = match.group("quoted")
        if quoted is not None:
            value = quoted.replace('\\"', '"').replace("\\\\", "\\")
        else:
            value = match.group("bare")
        out[match.group("key")] = value
    return out
