"""repro — access pattern-based code compression for memory-constrained
embedded systems.

A full reproduction of Ozturk, Saputra, Kandemir & Kolcu (DATE 2005): a
CFG-guided scheme that keeps basic blocks compressed in memory, decompresses
them as the instruction access pattern approaches (on demand or with
pre-decompression), and recompresses them with the k-edge algorithm once
their executions are over.

Quickstart::

    from repro import assemble, simulate, SimulationConfig

    program = assemble(open("app.asm").read(), "app")
    result = simulate(program, SimulationConfig(
        codec="lzw", decompression="pre-single",
        k_compress=4, k_decompress=2,
    ))
    print(result.render())

For anything grid-shaped — parameter sweeps, design-space studies,
parallel execution — use the declarative facade::

    from repro import api

    spec = api.ExperimentSpec(
        workloads=["composite", "fsm"],
        base={"codec": "shared-dict", "decompression": "ondemand"},
        axes=api.grid(k_compress=[1, 2, 4, 8, "inf"]),
        engine="trace",
    )
    print(api.run_experiment(spec, jobs=4)
          .pivot(value="average_saving", cols="k_compress").render())

Package map:

* :mod:`repro.api` — the public experiment facade: declarative specs,
  pluggable serial/parallel executors, versioned result sets;
* :mod:`repro.registry` — the one generic component registry behind
  codecs, strategies, predictors, workloads, engines, executors,
  memory hierarchies, and codec-assignment policies;
* :mod:`repro.isa` — the embedded target ISA, assembler, binary encoding;
* :mod:`repro.cfg` — basic blocks, control flow graph, loops, profiles;
* :mod:`repro.compress` — codecs (Huffman, LZW, LZ77, dictionary, ...);
* :mod:`repro.memory` — compressed/decompressed memory image, allocator,
  remember sets, memory-hierarchy presets;
* :mod:`repro.selection` — profile-guided per-unit codec assignment
  (selective compression policies);
* :mod:`repro.runtime` — the cycle-accounted machine, background-thread
  timelines, metrics;
* :mod:`repro.strategies` — k-edge compression, on-demand and
  pre-decompression policies, predictors, memory budgets;
* :mod:`repro.core` — the manager tying it all together;
* :mod:`repro.workloads` — embedded benchmark kernels and generators;
* :mod:`repro.analysis` — the internal sweep-engine layer (machine and
  trace engines) and reporting helpers underneath :mod:`repro.api`.
"""

from .cfg import BasicBlock, ControlFlowGraph, EdgeProfile, ProgramCFG, build_cfg
from .core import (
    CodeCompressionManager,
    ConfigError,
    SimulationConfig,
    SimulationResult,
    simulate,
)
from .isa import Program, ProgramBuilder, assemble
from .compress import available_codecs, get_codec

__version__ = "0.1.0"

__all__ = [
    "BasicBlock",
    "CodeCompressionManager",
    "ConfigError",
    "ControlFlowGraph",
    "EdgeProfile",
    "Program",
    "ProgramBuilder",
    "ProgramCFG",
    "SimulationConfig",
    "SimulationResult",
    "__version__",
    "assemble",
    "available_codecs",
    "build_cfg",
    "get_codec",
    "simulate",
]
