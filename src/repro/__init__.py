"""repro — access pattern-based code compression for memory-constrained
embedded systems.

A full reproduction of Ozturk, Saputra, Kandemir & Kolcu (DATE 2005): a
CFG-guided scheme that keeps basic blocks compressed in memory, decompresses
them as the instruction access pattern approaches (on demand or with
pre-decompression), and recompresses them with the k-edge algorithm once
their executions are over.

Quickstart::

    from repro import assemble, simulate, SimulationConfig

    program = assemble(open("app.asm").read(), "app")
    result = simulate(program, SimulationConfig(
        codec="lzw", decompression="pre-single",
        k_compress=4, k_decompress=2,
    ))
    print(result.render())

Package map:

* :mod:`repro.isa` — the embedded target ISA, assembler, binary encoding;
* :mod:`repro.cfg` — basic blocks, control flow graph, loops, profiles;
* :mod:`repro.compress` — codecs (Huffman, LZW, LZ77, dictionary, ...);
* :mod:`repro.memory` — compressed/decompressed memory image, allocator,
  remember sets;
* :mod:`repro.runtime` — the cycle-accounted machine, background-thread
  timelines, metrics;
* :mod:`repro.strategies` — k-edge compression, on-demand and
  pre-decompression policies, predictors, memory budgets;
* :mod:`repro.core` — the manager tying it all together;
* :mod:`repro.workloads` — embedded benchmark kernels and generators;
* :mod:`repro.analysis` — sweep and reporting helpers for the experiments.
"""

from .cfg import BasicBlock, ControlFlowGraph, EdgeProfile, ProgramCFG, build_cfg
from .core import (
    CodeCompressionManager,
    ConfigError,
    SimulationConfig,
    SimulationResult,
    simulate,
)
from .isa import Program, ProgramBuilder, assemble
from .compress import available_codecs, get_codec

__version__ = "0.1.0"

__all__ = [
    "BasicBlock",
    "CodeCompressionManager",
    "ConfigError",
    "ControlFlowGraph",
    "EdgeProfile",
    "Program",
    "ProgramBuilder",
    "ProgramCFG",
    "SimulationConfig",
    "SimulationResult",
    "__version__",
    "assemble",
    "available_codecs",
    "build_cfg",
    "get_codec",
    "simulate",
]
