"""Natural loop detection.

"A cycle in the CFG may imply that there is a loop in the application code"
(paper, Section 2).  Loops are where the k parameter bites: a block with
high temporal reuse inside a loop is exactly the case where a small k causes
repeated compress/decompress churn (Section 3).  The workload suite and the
analysis reports use this module to characterise benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from .dominators import dominator_sets
from .graph import ControlFlowGraph


@dataclass
class NaturalLoop:
    """A natural loop: back edge ``tail -> header`` plus its body."""

    header: int
    tail: int
    body: Set[int]

    @property
    def size(self) -> int:
        """Number of blocks in the loop body (header included)."""
        return len(self.body)

    def contains(self, block_id: int) -> bool:
        """True if ``block_id`` is part of the loop body."""
        return block_id in self.body

    def __repr__(self) -> str:
        return (
            f"NaturalLoop(header=B{self.header}, tail=B{self.tail}, "
            f"size={self.size})"
        )


def find_back_edges(cfg: ControlFlowGraph) -> List[Tuple[int, int]]:
    """Return back edges ``(tail, header)`` where header dominates tail."""
    doms = dominator_sets(cfg)
    back_edges: List[Tuple[int, int]] = []
    for edge in cfg.edges:
        if edge.src in doms and edge.dst in doms.get(edge.src, set()):
            back_edges.append((edge.src, edge.dst))
    return back_edges


def natural_loops(cfg: ControlFlowGraph) -> List[NaturalLoop]:
    """Find all natural loops of ``cfg``.

    Loops sharing a header are kept distinct (one per back edge); callers
    who want merged bodies can union them by header.
    """
    loops: List[NaturalLoop] = []
    for tail, header in find_back_edges(cfg):
        body: Set[int] = {header, tail}
        # Walk predecessors from the tail, never *through* the header —
        # for a self-loop (tail == header) the body is just the header.
        stack = [tail] if tail != header else []
        while stack:
            node = stack.pop()
            for pred in cfg.predecessors(node):
                if pred not in body:
                    body.add(pred)
                    stack.append(pred)
        loops.append(NaturalLoop(header=header, tail=tail, body=body))
    return loops


def loop_nest_depths(cfg: ControlFlowGraph) -> Dict[int, int]:
    """Map each block id to the number of natural loops containing it.

    A block in no loop has depth 0; a block in a doubly-nested loop has
    depth 2 (assuming distinct headers).  Loops sharing a header are merged
    before counting so an ``if`` inside one loop does not double-count.
    """
    merged: Dict[int, Set[int]] = {}
    for loop in natural_loops(cfg):
        merged.setdefault(loop.header, set()).update(loop.body)
    depths = {block.block_id: 0 for block in cfg.blocks}
    for body in merged.values():
        for block_id in body:
            depths[block_id] += 1
    return depths


def hot_block_estimate(cfg: ControlFlowGraph) -> Dict[int, float]:
    """Static hotness estimate: ``10 ** loop_depth`` per block.

    Used as a profile substitute when no dynamic profile is available
    (standard static heuristic: each loop level multiplies expected
    frequency by ~10).
    """
    return {
        block_id: float(10 ** depth)
        for block_id, depth in loop_nest_depths(cfg).items()
    }
