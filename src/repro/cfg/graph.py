"""Control flow graph structure and k-edge neighbourhood queries.

The CFG is the central data structure of the paper: compression and
decompression decisions are driven by distances *in edges* along the CFG
(Sections 3 and 4).  This module provides the graph container plus the
forward "at most k edges away" queries used by the pre-decompression
strategies and the example figures.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from .basic_block import BasicBlock


class CFGError(ValueError):
    """Raised for structurally invalid control flow graphs."""


@dataclass(frozen=True)
class Edge:
    """A directed CFG edge with a classification.

    ``kind`` is one of ``"fallthrough"``, ``"taken"``, ``"jump"``,
    ``"call"``, ``"return"``.
    """

    src: int
    dst: int
    kind: str = "jump"

    def __str__(self) -> str:
        return f"B{self.src} -{self.kind}-> B{self.dst}"


class ControlFlowGraph:
    """A whole-program control flow graph over :class:`BasicBlock` nodes.

    Nodes are addressed by dense integer ``block_id``.  The graph keeps both
    adjacency directions and supports the k-edge forward/backward
    neighbourhood queries the paper's strategies are built on.
    """

    def __init__(
        self,
        blocks: List[BasicBlock],
        edges: Iterable[Edge],
        entry_id: int = 0,
        name: str = "cfg",
    ) -> None:
        if not blocks:
            raise CFGError("a CFG needs at least one basic block")
        ids = [block.block_id for block in blocks]
        if ids != list(range(len(blocks))):
            raise CFGError(
                f"block ids must be dense 0..{len(blocks) - 1}, got {ids}"
            )
        self.name = name
        self.blocks: List[BasicBlock] = blocks
        self.entry_id = entry_id
        self._succ: Dict[int, List[Edge]] = {b.block_id: [] for b in blocks}
        self._pred: Dict[int, List[Edge]] = {b.block_id: [] for b in blocks}
        self._edge_set: Set[Tuple[int, int]] = set()
        for edge in edges:
            self.add_edge(edge)
        if not 0 <= entry_id < len(blocks):
            raise CFGError(f"entry block id {entry_id} out of range")

    # ------------------------------------------------------------------
    # Construction / mutation
    # ------------------------------------------------------------------

    def add_edge(self, edge: Edge) -> None:
        """Insert ``edge``; parallel duplicate (src, dst) pairs are ignored."""
        if edge.src not in self._succ or edge.dst not in self._succ:
            raise CFGError(f"edge {edge} references unknown block")
        if (edge.src, edge.dst) in self._edge_set:
            return
        self._edge_set.add((edge.src, edge.dst))
        self._succ[edge.src].append(edge)
        self._pred[edge.dst].append(edge)

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.blocks)

    def __iter__(self) -> Iterator[BasicBlock]:
        return iter(self.blocks)

    def block(self, block_id: int) -> BasicBlock:
        """Return the block with ``block_id``."""
        try:
            return self.blocks[block_id]
        except IndexError:
            raise CFGError(f"no block with id {block_id}") from None

    @property
    def entry(self) -> BasicBlock:
        """The entry block, "through which control enters" (Section 2)."""
        return self.blocks[self.entry_id]

    @property
    def exit_ids(self) -> List[int]:
        """Ids of blocks ending the program (HALT terminators)."""
        return [b.block_id for b in self.blocks if b.is_exit]

    def successors(self, block_id: int) -> List[int]:
        """Successor block ids of ``block_id``."""
        return [edge.dst for edge in self._succ[block_id]]

    def predecessors(self, block_id: int) -> List[int]:
        """Predecessor block ids of ``block_id``."""
        return [edge.src for edge in self._pred[block_id]]

    def out_edges(self, block_id: int) -> List[Edge]:
        """Outgoing :class:`Edge` objects of ``block_id``."""
        return list(self._succ[block_id])

    def in_edges(self, block_id: int) -> List[Edge]:
        """Incoming :class:`Edge` objects of ``block_id``."""
        return list(self._pred[block_id])

    @property
    def edges(self) -> List[Edge]:
        """All edges of the graph."""
        return [edge for edges in self._succ.values() for edge in edges]

    @property
    def num_edges(self) -> int:
        """Number of distinct (src, dst) edges."""
        return len(self._edge_set)

    def has_edge(self, src: int, dst: int) -> bool:
        """True if an edge ``src -> dst`` exists."""
        return (src, dst) in self._edge_set

    def total_size_bytes(self) -> int:
        """Total uncompressed code size across all blocks."""
        return sum(block.size_bytes for block in self.blocks)

    # ------------------------------------------------------------------
    # k-edge neighbourhoods (the heart of the paper's strategies)
    # ------------------------------------------------------------------

    def blocks_within(self, block_id: int, k: int) -> Dict[int, int]:
        """Map of block id -> edge distance, for blocks reachable from
        ``block_id`` by traversing **at most k edges** forward.

        Distance 0 is ``block_id`` itself.  This implements the paper's
        "at most k edges away from the exit of the currently processed
        block" set (Section 4): pre-decompress-all decompresses every
        compressed block in ``blocks_within(current, k)`` minus the block
        itself.
        """
        if k < 0:
            raise CFGError(f"k must be non-negative, got {k}")
        distances: Dict[int, int] = {block_id: 0}
        frontier = deque([block_id])
        while frontier:
            node = frontier.popleft()
            depth = distances[node]
            if depth == k:
                continue
            for succ in self.successors(node):
                if succ not in distances:
                    distances[succ] = depth + 1
                    frontier.append(succ)
        return distances

    def forward_neighbourhood(self, block_id: int, k: int) -> Set[int]:
        """Blocks at distance 1..k forward of ``block_id`` (excl. itself).

        Note a block on a cycle through ``block_id`` *is* included when the
        cycle re-reaches it within k edges — matching the paper's example
        where a loop header is pre-decompressed ahead of a back edge.
        """
        hood = set(self.blocks_within(block_id, k))
        hood.discard(block_id)
        # Re-reaching the start block around a cycle of length <= k also
        # counts: check successors' (k-1)-neighbourhoods for block_id.
        if k >= 1:
            for succ in self.successors(block_id):
                if succ == block_id or block_id in self.blocks_within(
                    succ, k - 1
                ):
                    hood.add(block_id)
                    break
        return hood

    def backward_neighbourhood(self, block_id: int, k: int) -> Set[int]:
        """Blocks that can reach ``block_id`` in at most k edges."""
        if k < 0:
            raise CFGError(f"k must be non-negative, got {k}")
        distances: Dict[int, int] = {block_id: 0}
        frontier = deque([block_id])
        while frontier:
            node = frontier.popleft()
            depth = distances[node]
            if depth == k:
                continue
            for pred in self.predecessors(node):
                if pred not in distances:
                    distances[pred] = depth + 1
                    frontier.append(pred)
        result = set(distances)
        result.discard(block_id)
        return result

    def edge_distance(self, src: int, dst: int) -> Optional[int]:
        """Minimum number of edges from ``src`` to ``dst`` (None if
        unreachable)."""
        if src == dst:
            return 0
        distances = {src: 0}
        frontier = deque([src])
        while frontier:
            node = frontier.popleft()
            for succ in self.successors(node):
                if succ not in distances:
                    distances[succ] = distances[node] + 1
                    if succ == dst:
                        return distances[succ]
                    frontier.append(succ)
        return None

    # ------------------------------------------------------------------
    # Traversals
    # ------------------------------------------------------------------

    def reachable_from_entry(self) -> Set[int]:
        """Ids of blocks reachable from the entry block."""
        seen: Set[int] = set()
        frontier = [self.entry_id]
        while frontier:
            node = frontier.pop()
            if node in seen:
                continue
            seen.add(node)
            frontier.extend(self.successors(node))
        return seen

    def reverse_postorder(self) -> List[int]:
        """Reverse postorder over blocks reachable from the entry."""
        seen: Set[int] = set()
        order: List[int] = []

        def visit(node: int) -> None:
            stack = [(node, iter(self.successors(node)))]
            seen.add(node)
            while stack:
                current, succs = stack[-1]
                advanced = False
                for succ in succs:
                    if succ not in seen:
                        seen.add(succ)
                        stack.append((succ, iter(self.successors(succ))))
                        advanced = True
                        break
                if not advanced:
                    order.append(current)
                    stack.pop()

        visit(self.entry_id)
        return list(reversed(order))

    def validate(self) -> List[str]:
        """Return a list of structural problems (empty if none).

        Checks: entry has no compressed-unreachable code requirement, every
        non-exit block has at least one successor, conditional terminators
        have exactly two successors, unconditional exactly one.
        """
        problems: List[str] = []
        reachable = self.reachable_from_entry()
        for block in self.blocks:
            bid = block.block_id
            succs = self.successors(bid)
            if block.is_exit:
                if succs:
                    problems.append(
                        f"exit block {block.name} has successors {succs}"
                    )
                continue
            if bid in reachable and not succs:
                problems.append(
                    f"reachable block {block.name} has no successors"
                )
            if block.terminator.is_conditional and len(succs) not in (1, 2):
                # 1 is allowed when both arms target the same block.
                problems.append(
                    f"conditional block {block.name} has {len(succs)} "
                    f"successors"
                )
        return problems

    def render(self) -> str:
        """Render the graph as readable text (one line per edge)."""
        lines = [f"CFG '{self.name}': {len(self.blocks)} blocks, "
                 f"{self.num_edges} edges, entry={self.entry.name}"]
        for block in self.blocks:
            succs = ", ".join(
                self.block(s).name for s in self.successors(block.block_id)
            )
            lines.append(
                f"  {block.name} ({block.size_bytes}B) -> [{succs}]"
            )
        return "\n".join(lines)
