"""Edge and block execution profiles.

The pre-decompress-single strategy needs to "predict the block (among
these...) that is to be the most likely one to be reached" (Section 4).
Likelihood comes from an *edge profile*: counts of traversals per CFG edge,
gathered either offline (a profiling run — see
:func:`repro.api.profile_workload`) or online (updated while the
program runs).  This module provides the profile container and helpers to
derive branch probabilities from it.

Two consumers drive the design: the "static-profile" *predictor*
(:mod:`repro.strategies.predictor`) reads successor probabilities, and
the profile-guided *codec-assignment* policies (:mod:`repro.selection`)
rank compression units by their block entry counts.  Profiles serialise
into store fingerprints by content
(:func:`repro.store.fingerprint.config_signature`), so a profiled
configuration caches as stably as an unprofiled one.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .graph import ControlFlowGraph


@dataclass
class EdgeProfile:
    """Traversal counts per (src, dst) edge plus per-block entry counts.

    ``block_counts`` is maintained *by* the recording methods, not
    independently: :meth:`record_edge` counts the destination block's
    entry and :meth:`record_entry` counts a sourceless entry (program
    start), so a block's count is always the number of times execution
    entered it.  Consumers that only need hotness (the codec-assignment
    policies) read ``block_counts``; consumers that need branch
    likelihood (the predictors) read the edge counts.
    """

    edge_counts: Dict[Tuple[int, int], int] = field(
        default_factory=lambda: defaultdict(int)
    )
    block_counts: Dict[int, int] = field(
        default_factory=lambda: defaultdict(int)
    )

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record_edge(self, src: int, dst: int, count: int = 1) -> None:
        """Record ``count`` traversals of edge ``src -> dst``."""
        self.edge_counts[(src, dst)] += count
        self.block_counts[dst] += count

    def record_entry(self, block_id: int, count: int = 1) -> None:
        """Record ``count`` entries into ``block_id`` with no known source
        (program entry)."""
        self.block_counts[block_id] += count

    def record_trace(self, trace: Sequence[int]) -> None:
        """Record a whole block-id trace (consecutive pairs are edges)."""
        if not trace:
            return
        self.record_entry(trace[0])
        for src, dst in zip(trace, trace[1:]):
            self.record_edge(src, dst)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def edge_count(self, src: int, dst: int) -> int:
        """Traversal count of edge ``src -> dst``."""
        return self.edge_counts.get((src, dst), 0)

    def block_count(self, block_id: int) -> int:
        """Entry count of ``block_id``."""
        return self.block_counts.get(block_id, 0)

    @property
    def total_transitions(self) -> int:
        """Total number of recorded edge traversals."""
        return sum(self.edge_counts.values())

    def successor_probabilities(
        self, cfg: ControlFlowGraph, block_id: int
    ) -> Dict[int, float]:
        """Probability of each successor of ``block_id`` being taken next.

        Every successor's count gets Laplace smoothing of +1 before
        normalising, so no successor ever has probability 0 — an
        unprofiled successor of a profiled block keeps a small residual
        probability, and when the block was never observed leaving at
        all, the mass is shared uniformly (each of n successors gets
        1/n).
        """
        successors = cfg.successors(block_id)
        if not successors:
            return {}
        counts = {
            succ: self.edge_count(block_id, succ) + 1 for succ in successors
        }
        total = sum(counts.values())
        return {succ: counts[succ] / total for succ in successors}

    def most_likely_successor(
        self, cfg: ControlFlowGraph, block_id: int
    ) -> Optional[int]:
        """The successor with the highest traversal count (ties: lowest id)."""
        successors = cfg.successors(block_id)
        if not successors:
            return None
        return max(
            sorted(successors),
            key=lambda succ: self.edge_count(block_id, succ),
        )

    def most_likely_path(
        self, cfg: ControlFlowGraph, block_id: int, length: int
    ) -> List[int]:
        """Greedy most-likely forward path of up to ``length`` edges."""
        path: List[int] = []
        current = block_id
        for _ in range(length):
            nxt = self.most_likely_successor(cfg, current)
            if nxt is None:
                break
            path.append(nxt)
            current = nxt
        return path

    def merge(self, other: "EdgeProfile") -> "EdgeProfile":
        """Return a new profile with counts of ``self`` and ``other``
        summed."""
        merged = EdgeProfile()
        for (src, dst), count in self.edge_counts.items():
            merged.edge_counts[(src, dst)] += count
        for (src, dst), count in other.edge_counts.items():
            merged.edge_counts[(src, dst)] += count
        for block, count in self.block_counts.items():
            merged.block_counts[block] += count
        for block, count in other.block_counts.items():
            merged.block_counts[block] += count
        return merged


def profile_from_trace(trace: Sequence[int]) -> EdgeProfile:
    """Build an :class:`EdgeProfile` from a recorded block trace."""
    profile = EdgeProfile()
    profile.record_trace(trace)
    return profile
