"""Basic block representation.

A basic block is "a straight-line piece of code without any jumps or jump
targets; jump targets start a block, and jumps end a block" (paper,
Section 2).  Blocks are the paper's unit of compression and decompression.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..isa.instructions import INSTRUCTION_SIZE, Instruction, Opcode


@dataclass
class BasicBlock:
    """A maximal straight-line instruction sequence.

    Attributes:
        block_id: dense index of the block within its CFG (``B0``, ``B1``...
            in the paper's notation follows this numbering).
        start_index: index of the first instruction in the owning program.
        instructions: the block's instructions, in program order.
        label: program label defined at the block's first instruction, if
            any (used for readable traces).
    """

    block_id: int
    start_index: int
    instructions: List[Instruction]
    label: Optional[str] = None
    # Lazily memoized sum of instruction cycle costs; instructions are
    # immutable after CFG construction (the runtime reads cycle_cost on
    # every block entry).
    _cycle_cost: Optional[int] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not self.instructions:
            raise ValueError(f"basic block B{self.block_id} is empty")

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------

    @property
    def end_index(self) -> int:
        """Index one past the last instruction (program indices)."""
        return self.start_index + len(self.instructions)

    @property
    def start_address(self) -> int:
        """Byte address of the block in the original uncompressed image."""
        return self.start_index * INSTRUCTION_SIZE

    @property
    def size_bytes(self) -> int:
        """Uncompressed size of the block in bytes."""
        return len(self.instructions) * INSTRUCTION_SIZE

    def __len__(self) -> int:
        return len(self.instructions)

    # ------------------------------------------------------------------
    # Terminator classification
    # ------------------------------------------------------------------

    @property
    def terminator(self) -> Instruction:
        """The last instruction of the block."""
        return self.instructions[-1]

    @property
    def falls_through(self) -> bool:
        """True if control may continue to the next block in layout order.

        Fall-through happens after conditional branches (not taken), after
        CALL (on return, execution resumes at the next instruction, which we
        model as fall-through to the successor block once the callee
        returns), and after any non-terminator last instruction.
        """
        op = self.terminator.opcode
        return op not in (Opcode.JMP, Opcode.RET, Opcode.HALT)

    @property
    def is_exit(self) -> bool:
        """True if the block ends the program (HALT terminator)."""
        return self.terminator.opcode is Opcode.HALT

    @property
    def cycle_cost(self) -> int:
        """Sum of base cycle costs of the block's instructions."""
        if self._cycle_cost is None:
            self._cycle_cost = sum(
                instr.cycles for instr in self.instructions
            )
        return self._cycle_cost

    def branch_targets(self) -> List[int]:
        """Byte addresses this block's branch instructions jump to.

        Only the terminator and CALL instructions inside the block carry
        code addresses in this ISA.
        """
        return [
            instr.imm for instr in self.instructions if instr.is_branch
        ]

    @property
    def name(self) -> str:
        """Readable name: the defining label, or ``B<n>``."""
        return self.label if self.label else f"B{self.block_id}"

    def render(self) -> str:
        """Return a printable listing of the block."""
        header = f"{self.name} (id={self.block_id}, " \
                 f"addr={self.start_address:#06x}, {self.size_bytes}B)"
        body = "\n".join(f"    {instr.render()}"
                         for instr in self.instructions)
        return f"{header}\n{body}"

    def __repr__(self) -> str:
        return (
            f"BasicBlock(id={self.block_id}, start={self.start_index}, "
            f"n={len(self.instructions)}, label={self.label!r})"
        )
