"""Dominator analysis (Cooper-Harvey-Kennedy iterative algorithm).

Dominators are used by the loop detector (natural loops require the back
edge head to dominate its tail) and by the workload generators to verify
the structural properties of generated CFGs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from .graph import ControlFlowGraph


def immediate_dominators(cfg: ControlFlowGraph) -> Dict[int, Optional[int]]:
    """Compute the immediate dominator of every reachable block.

    Returns a map ``block_id -> idom`` where the entry maps to ``None``.
    Unreachable blocks are absent from the result.
    """
    order = cfg.reverse_postorder()
    position = {block_id: i for i, block_id in enumerate(order)}
    idom: Dict[int, Optional[int]] = {cfg.entry_id: cfg.entry_id}

    def intersect(a: int, b: int) -> int:
        while a != b:
            while position[a] > position[b]:
                a = idom[a]  # type: ignore[assignment]
            while position[b] > position[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    changed = True
    while changed:
        changed = False
        for block_id in order:
            if block_id == cfg.entry_id:
                continue
            processed_preds = [
                p for p in cfg.predecessors(block_id)
                if p in idom and p in position
            ]
            if not processed_preds:
                continue
            new_idom = processed_preds[0]
            for pred in processed_preds[1:]:
                new_idom = intersect(pred, new_idom)
            if idom.get(block_id) != new_idom:
                idom[block_id] = new_idom
                changed = True

    result: Dict[int, Optional[int]] = {}
    for block_id, dom in idom.items():
        result[block_id] = None if block_id == cfg.entry_id else dom
    return result


def dominator_sets(cfg: ControlFlowGraph) -> Dict[int, Set[int]]:
    """Full dominator set of every reachable block (including itself)."""
    idom = immediate_dominators(cfg)
    sets: Dict[int, Set[int]] = {}

    def resolve(block_id: int) -> Set[int]:
        if block_id in sets:
            return sets[block_id]
        parent = idom[block_id]
        if parent is None:
            result = {block_id}
        else:
            result = {block_id} | resolve(parent)
        sets[block_id] = result
        return result

    for block_id in idom:
        resolve(block_id)
    return sets


def dominates(cfg: ControlFlowGraph, a: int, b: int) -> bool:
    """True if block ``a`` dominates block ``b``."""
    return a in dominator_sets(cfg).get(b, set())
