"""Control flow graph substrate: blocks, graph, dominators, loops, profiles.

The CFG is "an abstract data structure used in compilers to represent a
procedure" (paper, Section 2); here it is built whole-program because the
runtime tracks every basic-block transition.
"""

from .basic_block import BasicBlock
from .builder import ProgramCFG, build_cfg
from .dominators import dominates, dominator_sets, immediate_dominators
from .graph import CFGError, ControlFlowGraph, Edge
from .loops import (
    NaturalLoop,
    find_back_edges,
    hot_block_estimate,
    loop_nest_depths,
    natural_loops,
)
from .profile import EdgeProfile, profile_from_trace

__all__ = [
    "BasicBlock",
    "CFGError",
    "ControlFlowGraph",
    "Edge",
    "EdgeProfile",
    "NaturalLoop",
    "ProgramCFG",
    "build_cfg",
    "dominates",
    "dominator_sets",
    "find_back_edges",
    "hot_block_estimate",
    "immediate_dominators",
    "loop_nest_depths",
    "natural_loops",
    "profile_from_trace",
]
