"""CFG construction from a linked program (leader algorithm).

Implements the classic basic-block discovery from Muchnick [20 in the
paper]: jump targets start a block, jumps end a block.  On top of the
intraprocedural edges we add interprocedural ``call`` and ``return`` edges
so a *whole-program* CFG is available — the paper's runtime tracks every
basic-block transition of the program, across procedure boundaries.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from ..isa.instructions import Instruction, Opcode
from ..isa.program import Program, ProgramError
from .basic_block import BasicBlock
from .graph import CFGError, ControlFlowGraph, Edge


class ProgramCFG(ControlFlowGraph):
    """A CFG bound to the :class:`~repro.isa.program.Program` it came from.

    Adds address/index lookups that the runtime needs to translate a program
    counter into a basic block.
    """

    def __init__(
        self,
        program: Program,
        blocks: List[BasicBlock],
        edges: List[Edge],
        entry_id: int,
    ) -> None:
        super().__init__(blocks, edges, entry_id=entry_id, name=program.name)
        self.program = program
        self._by_start_index: Dict[int, BasicBlock] = {
            block.start_index: block for block in blocks
        }
        # Dense instruction-index -> block-id map for O(1) PC translation.
        self._index_to_block: List[int] = [0] * len(program.instructions)
        for block in blocks:
            for index in range(block.start_index, block.end_index):
                self._index_to_block[index] = block.block_id
        #: function entry block id -> block ids of the function body;
        #: populated by :func:`build_cfg`.
        self.functions: Dict[int, Set[int]] = {}
        #: block id -> owning function's entry block id.
        self.function_of: Dict[int, int] = {}

    def block_at_index(self, instruction_index: int) -> BasicBlock:
        """Block containing the instruction at ``instruction_index``."""
        if not 0 <= instruction_index < len(self._index_to_block):
            raise CFGError(
                f"instruction index {instruction_index} out of range"
            )
        return self.blocks[self._index_to_block[instruction_index]]

    def block_starting_at(self, instruction_index: int) -> BasicBlock:
        """Block whose *first* instruction is ``instruction_index``."""
        block = self._by_start_index.get(instruction_index)
        if block is None:
            raise CFGError(
                f"no basic block starts at instruction {instruction_index}"
            )
        return block

    def block_at_address(self, address: int) -> BasicBlock:
        """Block containing the original-image byte ``address``."""
        return self.block_at_index(self.program.index_of_address(address))


def _find_leaders(program: Program) -> List[int]:
    """Return sorted instruction indices that begin basic blocks."""
    leaders: Set[int] = {program.entry_index, 0}
    instructions = program.instructions
    for index, instr in enumerate(instructions):
        if instr.is_branch:
            leaders.add(program.index_of_address(instr.imm))
        ends_block = instr.is_terminator or instr.opcode is Opcode.CALL
        if ends_block and index + 1 < len(instructions):
            leaders.add(index + 1)
    # Labels also start blocks: they are potential jump targets and keep
    # hand-written kernels' block structure intact.
    leaders.update(
        index for index in program.labels.values()
        if index < len(instructions)
    )
    return sorted(leaders)


def _split_blocks(program: Program, leaders: List[int]) -> List[BasicBlock]:
    blocks: List[BasicBlock] = []
    boundaries = leaders + [len(program.instructions)]
    for block_id, (start, end) in enumerate(
        zip(boundaries[:-1], boundaries[1:])
    ):
        # A CALL in the middle of a straight-line region must end its
        # block; _find_leaders guarantees that, so every [start, end) here
        # is call-free except possibly at its last position.
        blocks.append(
            BasicBlock(
                block_id=block_id,
                start_index=start,
                instructions=list(program.instructions[start:end]),
                label=program.label_at(start),
            )
        )
    return blocks


def _intraprocedural_edges(
    program: Program, blocks: List[BasicBlock], cfg_index: Dict[int, int]
) -> Tuple[List[Edge], List[Tuple[int, int]]]:
    """Build non-return edges.

    Returns ``(edges, call_sites)`` where ``call_sites`` is a list of
    ``(caller_block_id, callee_entry_block_id)`` pairs; the caller block's
    fall-through block is its return point.
    """
    edges: List[Edge] = []
    call_sites: List[Tuple[int, int]] = []
    for block in blocks:
        terminator = block.terminator
        next_block_id = cfg_index.get(block.end_index)
        if terminator.is_conditional:
            taken = cfg_index[program.index_of_address(terminator.imm)]
            edges.append(Edge(block.block_id, taken, "taken"))
            if next_block_id is None:
                raise CFGError(
                    f"conditional branch at end of program in block "
                    f"B{block.block_id}"
                )
            edges.append(Edge(block.block_id, next_block_id, "fallthrough"))
        elif terminator.opcode is Opcode.JMP:
            dest = cfg_index[program.index_of_address(terminator.imm)]
            edges.append(Edge(block.block_id, dest, "jump"))
        elif terminator.opcode is Opcode.CALL:
            callee = cfg_index[program.index_of_address(terminator.imm)]
            edges.append(Edge(block.block_id, callee, "call"))
            call_sites.append((block.block_id, callee))
        elif terminator.opcode in (Opcode.RET, Opcode.HALT):
            pass  # return edges added separately; HALT has no successor
        else:
            # Block was split because the next instruction is a leader.
            if next_block_id is None:
                raise CFGError(
                    f"block B{block.block_id} falls off the end of the "
                    f"program"
                )
            edges.append(Edge(block.block_id, next_block_id, "fallthrough"))
    return edges, call_sites


def _function_bodies(
    blocks: List[BasicBlock],
    edges: List[Edge],
    call_sites: List[Tuple[int, int]],
    cfg_index: Dict[int, int],
) -> Dict[int, Set[int]]:
    """Map callee-entry block id -> set of block ids in that function body.

    Body discovery walks intraprocedural edges; a CALL block continues at
    its return point (the call is opaque), and RET blocks end the walk.
    """
    succ: Dict[int, List[int]] = {b.block_id: [] for b in blocks}
    call_return: Dict[int, Optional[int]] = {}
    for edge in edges:
        if edge.kind == "call":
            # handled via return-point shortcut below
            continue
        succ[edge.src].append(edge.dst)
    for block in blocks:
        if block.terminator.opcode is Opcode.CALL:
            call_return[block.block_id] = cfg_index.get(block.end_index)

    bodies: Dict[int, Set[int]] = {}
    for _, callee in call_sites:
        if callee in bodies:
            continue
        body: Set[int] = set()
        frontier = deque([callee])
        while frontier:
            node = frontier.popleft()
            if node in body:
                continue
            body.add(node)
            block = blocks[node]
            if block.terminator.opcode is Opcode.RET:
                continue
            if block.terminator.opcode is Opcode.CALL:
                return_point = call_return.get(node)
                if return_point is not None:
                    frontier.append(return_point)
                continue
            frontier.extend(succ[node])
        bodies[callee] = body
    return bodies


#: ``id(program) -> (weakref, ProgramCFG)`` memo for
#: :func:`build_cfg_cached`.  Keyed on object identity because
#: :class:`Program` is a plain dataclass (value equality, unhashable);
#: the weak reference evicts the entry when the program dies, so the
#: cache cannot leak or serve a recycled id.
_cfg_cache: Dict[int, Tuple[object, ProgramCFG]] = {}


def build_cfg_cached(program: Program) -> ProgramCFG:
    """Memoized :func:`build_cfg` (per program *instance*).

    Programs are immutable once linked, so the CFG of a given instance
    never changes; sweeps and benches that re-enter with the same
    program objects skip block discovery and edge construction entirely.
    """
    import weakref

    key = id(program)
    entry = _cfg_cache.get(key)
    if entry is not None and entry[0]() is program:
        return entry[1]
    cfg = build_cfg(program)

    # Bind the cache dict directly: at interpreter shutdown the module
    # global may already be cleared when the last weakref fires.
    def _evict(_ref, _key=key, _cache=_cfg_cache):
        _cache.pop(_key, None)

    _cfg_cache[key] = (weakref.ref(program, _evict), cfg)
    return cfg


def build_cfg(program: Program) -> ProgramCFG:
    """Build the whole-program CFG of a linked ``program``.

    Raises :class:`~repro.cfg.graph.CFGError` on structural problems and
    :class:`~repro.isa.program.ProgramError` if the program is unlinked.
    """
    if not program.is_linked:
        raise ProgramError(
            f"program '{program.name}' must be linked before CFG "
            f"construction"
        )
    leaders = _find_leaders(program)
    blocks = _split_blocks(program, leaders)
    cfg_index = {block.start_index: block.block_id for block in blocks}

    edges, call_sites = _intraprocedural_edges(program, blocks, cfg_index)

    # Return edges: each RET block of a function gets an edge to the
    # return point of every call site targeting that function.
    bodies = _function_bodies(blocks, edges, call_sites, cfg_index)
    for caller, callee in call_sites:
        return_point = cfg_index.get(blocks[caller].end_index)
        if return_point is None:
            raise CFGError(
                f"call in block B{caller} has no return point (call at end "
                f"of program)"
            )
        for body_block in bodies[callee]:
            if blocks[body_block].terminator.opcode is Opcode.RET:
                edges.append(Edge(body_block, return_point, "return"))

    entry_id = cfg_index[program.entry_index]
    cfg = ProgramCFG(program, blocks, edges, entry_id)

    # Function partition (used by the function-granularity baseline of
    # experiment E6): the main function plus one function per call target.
    # Blocks reachable from several entries are assigned to the first owner
    # in (main, call targets in program order); leftovers become singleton
    # functions.
    main_body = _function_bodies(
        blocks, edges, [(entry_id, entry_id)], cfg_index
    )[entry_id]
    ordered_entries: List[Tuple[int, Set[int]]] = [(entry_id, main_body)]
    seen_entries = {entry_id}
    for _, callee in call_sites:
        if callee not in seen_entries:
            seen_entries.add(callee)
            ordered_entries.append((callee, bodies[callee]))
    for entry, body in ordered_entries:
        owned = {
            block_id for block_id in body
            if block_id not in cfg.function_of
        }
        if not owned:
            continue
        cfg.functions[entry] = owned
        for block_id in owned:
            cfg.function_of[block_id] = entry
    for block in blocks:
        if block.block_id not in cfg.function_of:
            cfg.functions[block.block_id] = {block.block_id}
            cfg.function_of[block.block_id] = block.block_id
    return cfg
