"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands (all built on the :mod:`repro.api` facade):

* ``list``     — every pluggable component family (workloads, codecs,
  strategies, predictors, engines, executors) from the unified registry;
* ``inspect``  — disassembly + CFG + static compression of a workload;
* ``run``      — simulate one workload under one configuration;
* ``sweep``    — k-edge sweep table for one workload;
* ``compare``  — Figure 3 design-space comparison for one workload;
* ``exp``      — run a declarative JSON experiment spec
  (``--spec FILE``), optionally in parallel (``--jobs N``), and write
  the versioned result JSON/CSV;
* ``store``    — the persistent experiment store: ``stats``, ``gc``,
  ``clear``, ``verify`` (fsck: checksum every blob, quarantine corrupt
  ones and prune dangling refs with ``--repair``), and ``smoke`` (run
  a tiny sweep twice and assert the second run is served from cache);
* ``bench``    — performance microbenchmarks, written to
  ``BENCH_core.json`` (codec round-trips vs. the seed implementation
  and the machine- vs. trace-engine E1 sweep);
* ``serve``    — the long-running sweep service (``repro.service``):
  a JSON-over-HTTP job queue with store-backed per-cell dedup, SSE
  progress events, ``/metrics`` (JSON or Prometheus text), a live
  ``/dashboard`` page, graceful drain and a resumable job journal;
  ``--smoke`` boots a throwaway server, round-trips a spec and asserts
  byte-equality with a local run (the ``make serve-smoke`` gate);
* ``trace``    — run one cell with cycle-domain span tracing armed
  (``repro.obs``): prints the execute/stall phase breakdown and writes
  a Perfetto-loadable Chrome trace with ``--out``;
* ``obs``      — observability gates: ``smoke`` validates the
  Prometheus exposition and the dashboard end to end against a real
  server subprocess (the ``make obs-smoke`` gate).

``run``/``sweep``/``compare`` accept ``--hierarchy PRESET`` (the
memory-hierarchy model: ``flat`` is the seed-equivalent default;
``repro list`` enumerates the registered presets).  ``sweep`` and
``compare`` accept ``--engine {machine,trace}`` (the trace-replay fast
path) and ``--jobs N`` (process-parallel across workload partitions;
with a single workload this changes nothing).
``sweep``/``compare``/``exp`` accept ``--store [DIR]`` (serve repeated
cells from the persistent store; DIR defaults to ``$REPRO_STORE_DIR``
or ``~/.cache/repro-store``) and ``--no-cache`` (force recomputation
even when ``$REPRO_STORE_DIR`` is set), plus ``--retries N`` /
``--cell-timeout SECONDS`` (re-attempt failing cells with backoff and
bound each attempt's wall clock; see ``docs/operations.md``).

Any cell that raises or fails oracle validation is listed on stderr
and makes the command exit nonzero — failed cells are never silently
dropped from a table.

All output is plain text, suitable for piping into experiment notes.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import api
from .analysis import EnergyModel, Table, percent
from .cfg import build_cfg, natural_loops
from .compress import (
    CodecError,
    available_codecs,
    compare_codecs,
    resolve_codec_spec,
)
from .core import DECOMPRESSION_STRATEGIES, SimulationConfig
from .memory import available_hierarchies
from .selection import (
    AssignmentError,
    available_assignments,
    validate_assignment,
)
from .strategies import available_predictors
from .workloads import available_workloads, get_workload


def _parse_codec(text: str) -> str:
    """Validate a --codec name or pipeline spec; argparse errors."""
    try:
        return resolve_codec_spec(text)
    except CodecError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _parse_assignment(text: str) -> str:
    """Validate an --assignment policy spec; argparse-friendly errors."""
    try:
        validate_assignment(text)
    except AssignmentError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    return text


def _parse_k_list(text: str) -> List[Optional[int]]:
    """Parse the --k-values token list; argparse-friendly errors."""
    values: List[Optional[int]] = []
    for token in text.split(","):
        try:
            values.append(api.parse_k(token, field_name="k"))
        except api.SpecError as exc:
            raise argparse.ArgumentTypeError(str(exc)) from None
    if not values:
        raise argparse.ArgumentTypeError("--k-values is empty")
    return values


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--codec", default="shared-dict", type=_parse_codec,
        metavar="CODEC",
        help="compression codec: a flat codec name "
             f"({', '.join(available_codecs())}) or a layered "
             "pipeline spec such as 'delta|huffman' or "
             "'stride:4|shared-dict' (transform layers feeding an "
             "entropy stage; see docs/pipelines.md; "
             "default: shared-dict)",
    )
    parser.add_argument(
        "--strategy", default="ondemand",
        choices=list(DECOMPRESSION_STRATEGIES),
        help="decompression strategy (default: ondemand)",
    )
    parser.add_argument(
        "--k-compress", type=int, default=8, metavar="K",
        help="k-edge recompression distance; 0 = never recompress "
             "(default: 8)",
    )
    parser.add_argument(
        "--k-decompress", type=int, default=2, metavar="K",
        help="pre-decompression distance (default: 2)",
    )
    parser.add_argument(
        "--predictor", default="online-profile",
        choices=[p for p in available_predictors()
                 if p != "static-profile"],
        help="predictor for pre-single (default: online-profile)",
    )
    parser.add_argument(
        "--budget", type=int, default=None, metavar="BYTES",
        help="optional hard cap on the code footprint",
    )
    parser.add_argument(
        "--hierarchy", default="flat",
        choices=available_hierarchies(),
        help="memory-hierarchy preset: per-level latency, burst "
             "granularity and energy for the front/target memories "
             "(default: flat, the seed-equivalent cost model)",
    )
    parser.add_argument(
        "--assignment", default="uniform", type=_parse_assignment,
        metavar="POLICY",
        help="per-unit codec-assignment policy "
             f"({', '.join(available_assignments())}; parameters "
             "attach with colons, e.g. knapsack:0.9 or "
             "hotness-threshold:0.25:rle; non-uniform policies "
             "profile the workload first; default: uniform)",
    )


def _add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--engine", default="machine",
        choices=api.available_engines(),
        help="sweep engine: interpret every cell ('machine') or replay "
             "a recorded block trace ('trace', the fast path; "
             "default: machine)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes (parallel across workloads; "
             "default: serial)",
    )
    _add_cache_arguments(parser)
    _add_retry_arguments(parser)


def _add_retry_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="re-attempt each failing cell up to N times with "
             "exponential backoff (default: 0, fail fast)",
    )
    parser.add_argument(
        "--cell-timeout", type=float, default=None, metavar="SECONDS",
        help="per-attempt wall-clock budget for one cell; a cell that "
             "exceeds it fails (and is retried under --retries)",
    )


def _retry_from_args(args: argparse.Namespace):
    """The api-layer retry policy, or None (the zero-cost default)."""
    retries = getattr(args, "retries", 0) or 0
    timeout = getattr(args, "cell_timeout", None)
    if retries == 0 and timeout is None:
        return None
    if retries < 0:
        print("error: --retries must be >= 0", file=sys.stderr)
        raise SystemExit(2)
    return api.RetryPolicy(attempts=retries + 1, timeout=timeout)


def _add_cache_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store", nargs="?", const="", default=None, metavar="DIR",
        help="serve repeated cells from the persistent experiment "
             "store at DIR (no DIR: $REPRO_STORE_DIR or "
             "~/.cache/repro-store)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="never consult the store, even when $REPRO_STORE_DIR "
             "is set",
    )


def _store_from_args(args: argparse.Namespace):
    """The ``store`` argument for the api layer: False disables, a
    path/'' enables, None defers to $REPRO_STORE_DIR."""
    if getattr(args, "no_cache", False):
        return False
    store = getattr(args, "store", None)
    if store is None:
        return None
    return store if store else True


def _report_cell_failures(result) -> int:
    """List failed cells on stderr; the command's exit code.

    One :func:`repro.log.kv` line per failed cell, so scripts can
    ``parse_kv`` the stderr instead of grepping prose.
    """
    from .log import kv

    failed = result.failures()
    if not failed:
        return 0
    print(f"error: {len(failed)} cell(s) failed:", file=sys.stderr)
    for run in failed:
        reason = run.error if run.error is not None \
            else "; ".join(run.validation)
        print(
            "  " + kv(
                "cell.failed", workload=run.workload,
                label=run.config.strategy_name, error=reason,
            ),
            file=sys.stderr,
        )
    return 1


def _assignment_profile(
    args: argparse.Namespace, workload, strategy: Optional[str] = None
):
    """The offline edge profile a non-uniform assignment needs.

    Profile-guided policies rank units by real execution counts; the
    CLI records them with one cheap uncompressed run.  Uniform runs
    skip this (None keeps the config byte-identical to the default),
    as does ``strategy="none"`` — the uncompressed baseline builds no
    image, so an assignment is inert and profiling it would double the
    command's runtime for nothing.
    """
    if getattr(args, "assignment", "uniform") == "uniform":
        return None
    if strategy == "none":
        return None
    try:
        return api.profile_workload(workload)
    except ValueError as exc:
        # E.g. the profiling trace hit the recording cap; fail as a
        # clean CLI error, not a traceback.
        print(f"error: cannot profile {workload.name}: {exc}",
              file=sys.stderr)
        raise SystemExit(1) from None


def _config_from_args(
    args: argparse.Namespace, profile=None
) -> SimulationConfig:
    return SimulationConfig(
        codec=args.codec,
        decompression=args.strategy,
        k_compress=None if args.k_compress == 0 else args.k_compress,
        k_decompress=args.k_decompress,
        predictor=args.predictor,
        memory_budget=args.budget,
        hierarchy=args.hierarchy,
        assignment=args.assignment,
        profile=profile,
        trace_events=False,
        record_trace=False,
    )


def cmd_list(args: argparse.Namespace) -> int:
    print("workloads:")
    for name in available_workloads():
        print(f"  {name:12s} {get_workload(name).description}")
    print()
    for kind, names in sorted(api.list_components().items()):
        if kind == "workloads":
            continue
        print(f"{kind + ':':12s} " + ", ".join(names))
    print(
        "\npipeline spec grammar: any 'layer[:params]|...|entropy' "
        "composition of the transforms above feeding a flat codec is "
        "itself a codec (e.g. --codec 'delta|huffman'); the pipelines "
        "listed are the curated pipeline-search pool.  See "
        "docs/pipelines.md."
    )
    return 0


def cmd_inspect(args: argparse.Namespace) -> int:
    workload = get_workload(args.workload)
    cfg = build_cfg(workload.program)
    print(f"{workload.name}: {workload.description}")
    print(f"{len(workload.program)} instructions, "
          f"{len(cfg.blocks)} basic blocks, "
          f"{cfg.num_edges} edges, "
          f"{len(natural_loops(cfg))} natural loops, "
          f"{cfg.total_size_bytes()} bytes\n")
    print(cfg.render())
    print()
    table = Table(
        "static compression", ["codec", "ratio", "saving"]
    )
    for name, stats in compare_codecs(
        cfg.blocks, ("shared-dict", "shared-fields", "shared-huffman")
    ).items():
        table.add_row(name, stats.ratio, percent(stats.space_saving))
    print(table.render())
    if args.disasm:
        print()
        print(workload.program.disassemble())
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    workload = get_workload(args.workload)
    profile = _assignment_profile(args, workload, args.strategy)
    run = api.run_cell(workload, _config_from_args(args, profile))
    print(run.result.render())
    if run.validation:
        print("\nVALIDATION FAILED:")
        for problem in run.validation:
            print(f"  {problem}")
        return 1
    print("\nvalidation: OK (oracle accepted the final machine state)")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    workload = get_workload(args.workload)
    k_values = args.k_values
    profile = _assignment_profile(args, workload, args.strategy)
    configs = [
        SimulationConfig(
            codec=args.codec, decompression=args.strategy,
            k_compress=k, k_decompress=args.k_decompress,
            predictor=args.predictor, hierarchy=args.hierarchy,
            assignment=args.assignment, profile=profile,
            trace_events=False, record_trace=False,
        )
        for k in k_values
    ]
    result = api.run_grid(
        [workload], configs, engine=args.engine, jobs=args.jobs,
        store=_store_from_args(args), retry=_retry_from_args(args),
    )
    energy = EnergyModel.for_hierarchy(args.hierarchy)
    table = Table(
        f"k-edge sweep for '{workload.name}' "
        f"({args.strategy}, {args.codec}, {args.hierarchy})",
        ["k", "avg_saving", "peak_saving", "overhead", "faults",
         "traffic_B", "energy_nJ"],
    )
    for k, run in zip(k_values, result.runs):
        r = run.result
        table.add_row(
            "inf" if k is None else k,
            percent(r.average_saving), percent(r.peak_saving),
            percent(r.cycle_overhead), int(r.counters.faults),
            int(r.counters.target_memory_bytes),
            round(energy.total_energy(r), 1),
        )
    print(table.render())
    return _report_cell_failures(result)


def cmd_compare(args: argparse.Namespace) -> int:
    workload = get_workload(args.workload)
    profile = _assignment_profile(args, workload)
    configs = [
        SimulationConfig(decompression="none", codec="null",
                         label="uncompressed",
                         hierarchy=args.hierarchy,
                         trace_events=False, record_trace=False),
    ]
    for strategy in ("ondemand", "pre-all", "pre-single"):
        configs.append(
            SimulationConfig(
                codec=args.codec, decompression=strategy,
                k_compress=None if args.k_compress == 0
                else args.k_compress,
                k_decompress=args.k_decompress,
                predictor=args.predictor, label=strategy,
                hierarchy=args.hierarchy,
                assignment=args.assignment, profile=profile,
                trace_events=False, record_trace=False,
            )
        )
    result = api.run_grid(
        [workload], configs, engine=args.engine, jobs=args.jobs,
        store=_store_from_args(args), retry=_retry_from_args(args),
    )
    table = Table(
        f"design space for '{workload.name}' ({args.codec}, "
        f"kc={args.k_compress}, kd={args.k_decompress})",
        ["strategy", "avg_footprint", "avg_saving", "overhead",
         "stall_cycles"],
    )
    for run in result.runs:
        r = run.result
        table.add_row(
            run.config.label, int(r.average_footprint),
            percent(r.average_saving), percent(r.cycle_overhead),
            int(r.counters.stall_cycles),
        )
    print(table.render())
    return _report_cell_failures(result)


def cmd_exp(args: argparse.Namespace) -> int:
    try:
        spec = api.ExperimentSpec.from_file(args.spec)
    except (OSError, api.SpecError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.engine is not None:
        spec.engine = args.engine
    if args.assignment is not None:
        # Override every cell's assignment policy (like --engine).
        # Axis overrides beat base fields during expansion, so the
        # override must land in both — a spec sweeping assignment as
        # an axis is still forced onto the requested policy.
        spec.base = {**dict(spec.base), "assignment": args.assignment}
        spec.axes = [
            {**dict(override), "assignment": args.assignment}
            for override in spec.axes
        ]
        try:
            spec.configs()
        except api.SpecError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    executor = args.executor
    result = api.run_experiment(
        spec, executor=executor, jobs=args.jobs,
        store=_store_from_args(args), retry=_retry_from_args(args),
    )

    table = Table(
        f"experiment '{spec.name}' "
        f"({result.meta['engine']} engine, "
        f"{result.meta['executor']} executor, "
        f"jobs={result.meta['jobs']})",
        ["workload", "strategy", "avg_saving", "peak_saving",
         "overhead", "faults", "ok"],
    )
    for run in result.runs:
        r = run.result
        table.add_row(
            run.workload, run.config.strategy_name,
            percent(r.average_saving), percent(r.peak_saving),
            percent(r.cycle_overhead), int(r.counters.faults),
            "yes" if run.ok else "NO",
        )
    elapsed = result.meta["timing"]["elapsed_s"]
    cache = result.meta.get("cache")
    cache_note = (
        f", cache {cache['hits']} hit(s) / {cache['misses']} miss(es)"
        if cache else ""
    )
    table.add_note(
        f"{len(result.runs)} cells over "
        f"{len(result.workloads())} workloads in {elapsed:.2f}s"
        f"{cache_note} (result schema v{api.SCHEMA_VERSION})"
    )
    print(table.render())
    try:
        if args.output:
            result.to_json(args.output)
            print(f"[results written to {args.output}]")
        if args.csv:
            result.to_csv(args.csv)
            print(f"[CSV written to {args.csv}]")
    except OSError as exc:
        print(f"error: cannot write results: {exc}", file=sys.stderr)
        return 1
    return _report_cell_failures(result)


def _store_root(args: argparse.Namespace) -> str:
    from .store import DEFAULT_STORE_DIR, resolve_store_dir

    resolved = resolve_store_dir(
        args.store if args.store else None
    )
    return resolved or DEFAULT_STORE_DIR


def _cmd_store_smoke(args: argparse.Namespace) -> int:
    """Run a tiny sweep twice; assert the second run comes from cache.

    The ``make store-smoke`` / CI gate: proves fingerprint stability,
    the CAS round-trip, and cache-hit-equals-recompute equivalence on
    a real (small) grid, end to end through the public facade.
    """
    import shutil
    import tempfile

    temp = None
    if args.store is None:
        temp = tempfile.mkdtemp(prefix="repro-store-smoke-")
        root = temp
    else:
        root = _store_root(args)
    try:
        spec = api.ExperimentSpec(
            name="store-smoke",
            workloads=["fib", "gcd"],
            base={"codec": "shared-dict", "decompression": "ondemand"},
            axes=api.grid(k_compress=[1, 2, "inf"]),
            engine="trace",
        )
        first = api.run_experiment(spec, store=root)
        second = api.run_experiment(spec, store=root)
        cells = len(second)
        hits = second.meta["cache"]["hits"]
        identical = first.canonical_json() == second.canonical_json()
        print(f"store smoke @ {root}")
        print(f"  first run : {first.meta['cache']['hits']} hits / "
              f"{first.meta['cache']['misses']} misses")
        print(f"  second run: {hits} hits / "
              f"{second.meta['cache']['misses']} misses "
              f"({cells} cells)")
        print(f"  result sets byte-identical: "
              f"{'yes' if identical else 'NO'}")
        if second.failures():
            print("error: smoke sweep cells failed validation",
                  file=sys.stderr)
            return 1
        if not identical:
            print("error: cached result set differs from the "
                  "recomputed one", file=sys.stderr)
            return 1
        if cells == 0 or hits < 0.9 * cells:
            print(f"error: second run served {hits}/{cells} cells "
                  f"from cache (need >= 90%)", file=sys.stderr)
            return 1
        print("store smoke OK")
        return 0
    finally:
        if temp is not None:
            shutil.rmtree(temp, ignore_errors=True)


def cmd_store(args: argparse.Namespace) -> int:
    from .store import ExperimentStore, StoreError

    if args.action == "smoke":
        return _cmd_store_smoke(args)
    root = _store_root(args)
    try:
        # Inspection commands never create a store: a mistyped --store
        # errors instead of reporting a freshly made empty one.
        store = ExperimentStore(root, create=False)
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.action == "stats":
        stats = store.stats()
        if getattr(args, "json", False):
            # Machine-readable: the exact dict the service's
            # GET /metrics embeds under "store" (tested for
            # agreement), so scripts never scrape the human text.
            import json as json_module

            print(json_module.dumps(stats, indent=2, sort_keys=True))
            return 0
        print(f"store @ {stats['root']} (format v{stats['format']})")
        print(f"  cells:     {stats['cells']}")
        print(f"  artifacts: {stats['artifacts']}")
        print(f"  jobs:      {stats['jobs']}")
        print(f"  blobs:     {stats['blobs']} "
              f"({stats['blob_bytes']} bytes)")
        print(f"  usage:     {stats['hits']} hits, "
              f"{stats['misses']} misses, {stats['puts']} puts, "
              f"{stats['corrupt_misses']} corrupt miss(es)")
        return 0
    if args.action == "verify":
        report = store.verify(repair=args.repair)
        mode = "repair" if args.repair else "check"
        print(f"verify ({mode}) @ {store.root}")
        print(f"  objects:   {report['objects']} checked, "
              f"{report['corrupt_objects']} corrupt, "
              f"{report['quarantined']} quarantined")
        print(f"  refs:      {report['refs']} checked, "
              f"{report['dangling_refs']} dangling, "
              f"{report['pruned_refs']} pruned")
        print(f"  tmp files: {report['tmp_files']} stale, "
              f"{report['removed_tmp_files']} removed")
        if report["ok"]:
            print("store verify OK")
            return 0
        if args.repair:
            print("store repaired: corrupt blobs moved to quarantine/, "
                  "dangling refs pruned; the next cached sweep "
                  "recomputes exactly those cells")
            return 0
        print("error: store has integrity problems; re-run with "
              "--repair to quarantine and prune them", file=sys.stderr)
        return 1
    if args.action == "gc":
        report = store.gc()
        print(f"gc @ {store.root}: removed "
              f"{report['removed_blobs']} blob(s), freed "
              f"{report['freed_bytes']} bytes")
        return 0
    if args.action == "clear":
        try:
            store.clear()
        except StoreError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"cleared store @ {store.root}")
        return 0
    raise AssertionError(f"unhandled store action {args.action!r}")


def cmd_bench(args: argparse.Namespace) -> int:
    from .analysis.bench import render_report, run_benchmarks, write_report

    try:
        report = run_benchmarks(
            smoke=args.smoke, only=args.only, repeat=args.repeat
        )
    except (KeyError, ValueError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        print(f"error: {message}", file=sys.stderr)
        return 2
    print(render_report(report))
    if args.only and args.output is None:
        # A filtered run is a partial report; never clobber the full
        # BENCH_core.json with it unless a path was given explicitly.
        args.no_write = True
    if not args.no_write:
        try:
            path = write_report(report, args.output)
        except OSError as exc:
            print(f"error: cannot write report: {exc}", file=sys.stderr)
            return 1
        print(f"\n[report written to {path}]")
    if not report["ok"]:
        print("BENCH FAILED: fast-path output diverged from the seed "
              "implementation", file=sys.stderr)
        return 1
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Run one traced cell; print phases, optionally write Chrome JSON."""
    from .obs import chrome_trace_json

    workload = get_workload(args.workload)
    profile = _assignment_profile(args, workload, args.strategy)
    config = _config_from_args(args, profile)
    result, tracer = api.run_traced(
        workload, config, engine=args.engine
    )
    print(result.render())
    print("\nphase breakdown (cycles):")
    for name, cycles in (result.phases or {}).items():
        share = (
            cycles / result.total_cycles if result.total_cycles else 0.0
        )
        print(f"  {name:18s} {cycles:10d}  {share:6.1%}")
    if args.out:
        try:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(chrome_trace_json(tracer))
        except OSError as exc:
            print(f"error: cannot write trace: {exc}", file=sys.stderr)
            return 1
        print(f"\n[chrome trace written to {args.out} — load it in "
              f"Perfetto or chrome://tracing]")
    return 0


def _cmd_obs_smoke(args: argparse.Namespace) -> int:
    """Boot a real server; validate the text exposition + dashboard.

    The ``make obs-smoke`` / CI gate: a throwaway server subprocess
    runs one small job, then ``GET /metrics?format=prometheus`` must
    pass :func:`repro.obs.validate_exposition` and ``GET /dashboard``
    must serve the self-contained HTML page.
    """
    import shutil
    import signal as signal_module
    import socket
    import subprocess
    import tempfile
    import time
    import urllib.request

    from .obs import validate_exposition
    from .service import ServiceClient, ServiceClientError

    temp = None
    if args.store is None:
        temp = tempfile.mkdtemp(prefix="repro-obs-smoke-")
        root = temp
    else:
        root = _store_root(args)

    def free_port() -> int:
        with socket.socket() as sock:
            sock.bind(("127.0.0.1", 0))
            return sock.getsockname()[1]

    proc = None
    try:
        port = free_port()
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--host", "127.0.0.1", "--port", str(port),
             "--store", root, "--workers", "2"],
        )
        client = ServiceClient("127.0.0.1", port)
        deadline = time.monotonic() + 30.0
        while True:
            if proc.poll() is not None:
                print(f"error: server exited early "
                      f"(code {proc.returncode})", file=sys.stderr)
                return 1
            try:
                if client.healthz().get("ok"):
                    break
            except (ServiceClientError, OSError):
                pass
            if time.monotonic() > deadline:
                print("error: server never became healthy",
                      file=sys.stderr)
                return 1
            time.sleep(0.1)
        print(f"obs smoke @ {root} (port {port})")

        # One real job first, so the histograms/phase bars have data.
        reply = client.submit(_SERVE_SMOKE_SPEC)
        client.wait(reply["job"], timeout=120)
        client.close()
        base = f"http://127.0.0.1:{port}"

        with urllib.request.urlopen(
            f"{base}/metrics?format=prometheus", timeout=10
        ) as response:
            content_type = response.headers.get("Content-Type", "")
            text = response.read().decode("utf-8")
        if "text/plain" not in content_type:
            print(f"error: exposition served as {content_type!r}, "
                  f"want text/plain", file=sys.stderr)
            return 1
        try:
            checked = validate_exposition(text)
        except ValueError as exc:
            print(f"error: invalid exposition: {exc}", file=sys.stderr)
            return 1
        for required in ("repro_uptime_seconds",
                         "repro_http_request_duration_ms_bucket",
                         "repro_jobs"):
            if required not in text:
                print(f"error: exposition is missing {required}",
                      file=sys.stderr)
                return 1
        print(f"  prometheus exposition OK "
              f"({checked['metrics']} metrics, "
              f"{checked['samples']} samples)")

        with urllib.request.urlopen(
            f"{base}/dashboard", timeout=10
        ) as response:
            status = response.status
            page = response.read().decode("utf-8")
        if status != 200 or "<html" not in page \
                or "/metrics" not in page:
            print("error: /dashboard did not serve the dashboard page",
                  file=sys.stderr)
            return 1
        print(f"  dashboard OK ({len(page)} bytes, self-contained)")

        proc.send_signal(signal_module.SIGTERM)
        try:
            code = proc.wait(timeout=60)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()
            code = -9
        proc = None
        if code != 0:
            print(f"error: server exited {code} on SIGTERM",
                  file=sys.stderr)
            return 1
        print("obs smoke OK")
        return 0
    finally:
        if proc is not None:
            proc.kill()
            proc.wait()
        if temp is not None:
            shutil.rmtree(temp, ignore_errors=True)


def cmd_obs(args: argparse.Namespace) -> int:
    if args.action == "smoke":
        return _cmd_obs_smoke(args)
    raise AssertionError(f"unhandled obs action {args.action!r}")


#: The serve-smoke experiment: tiny, two workloads, trace engine.
_SERVE_SMOKE_SPEC = {
    "name": "serve-smoke",
    "workloads": ["fib", "gcd"],
    "base": {"codec": "shared-dict", "decompression": "ondemand"},
    "axes": {"grid": {"k_compress": [1, 2, "inf"]}},
    "engine": "trace",
}


def _cmd_serve_smoke(args: argparse.Namespace) -> int:
    """Boot a real server subprocess, round-trip a spec, drain it.

    The ``make serve-smoke`` / CI gate, asserting the service's core
    contracts end to end against a *separate process* (the in-process
    ``ServerThread`` path is covered by the test suite):

    1. the server boots and ``/healthz`` goes green;
    2. a submitted spec completes and its ``/result`` body is
       byte-identical to a local ``run_experiment`` on the same store;
    3. resubmitting dedups onto the finished job;
    4. SIGTERM drains gracefully (exit 0) and leaves a resumable
       journal — a second boot on the same store still dedups the spec.
    """
    import json
    import os
    import shutil
    import signal as signal_module
    import socket
    import subprocess
    import tempfile
    import time

    from .service import ServiceClient, ServiceClientError

    temp = None
    if args.store is None:
        temp = tempfile.mkdtemp(prefix="repro-serve-smoke-")
        root = temp
    else:
        root = _store_root(args)

    def free_port() -> int:
        with socket.socket() as sock:
            sock.bind(("127.0.0.1", 0))
            return sock.getsockname()[1]

    def boot(port: int) -> subprocess.Popen:
        return subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--host", "127.0.0.1", "--port", str(port),
             "--store", root, "--workers", "2"],
        )

    def wait_healthy(client: ServiceClient, proc: subprocess.Popen,
                     timeout: float = 30.0) -> None:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                raise RuntimeError(
                    f"server exited early (code {proc.returncode})"
                )
            try:
                if client.healthz().get("ok"):
                    return
            except (ServiceClientError, OSError):
                time.sleep(0.1)
        raise RuntimeError("server never became healthy")

    def drain(proc: subprocess.Popen) -> int:
        proc.send_signal(signal_module.SIGTERM)
        try:
            return proc.wait(timeout=60)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()
            return -9

    proc = None
    try:
        port = free_port()
        proc = boot(port)
        client = ServiceClient("127.0.0.1", port)
        wait_healthy(client, proc)
        print(f"serve smoke @ {root} (port {port})")

        reply = client.submit(_SERVE_SMOKE_SPEC)
        snapshot = client.wait(reply["job"], timeout=120)
        if snapshot["state"] != "done" or snapshot["error_rows"]:
            print(f"error: smoke job ended {snapshot['state']} "
                  f"({snapshot['error_rows'] or snapshot['error']})",
                  file=sys.stderr)
            return 1
        served = client.result(reply["job"])
        print(f"  job {reply['job']}: {snapshot['progress']['done']}"
              f"/{snapshot['progress']['total']} cells done")

        local = api.run_experiment(
            api.ExperimentSpec.from_dict(_SERVE_SMOKE_SPEC), store=root
        ).canonical_json()
        if served != local:
            print("error: served result differs from local "
                  "run_experiment on the same store", file=sys.stderr)
            return 1
        print("  result byte-identical to local run_experiment: yes")

        resubmit = client.submit(_SERVE_SMOKE_SPEC)
        if not resubmit["deduped"]:
            print("error: resubmitted spec was not deduplicated",
                  file=sys.stderr)
            return 1
        print("  resubmit deduplicated onto the finished job: yes")
        client.close()

        code = drain(proc)
        proc = None
        if code != 0:
            print(f"error: server exited {code} on SIGTERM "
                  f"(graceful drain failed)", file=sys.stderr)
            return 1
        journal_dir = os.path.join(root, "service", "jobs")
        entries = [p for p in os.listdir(journal_dir)
                   if p.endswith(".json")] \
            if os.path.isdir(journal_dir) else []
        if not entries:
            print("error: no resumable journal left under "
                  f"{journal_dir}", file=sys.stderr)
            return 1
        entry = json.load(open(os.path.join(journal_dir, entries[0])))
        print(f"  graceful shutdown: exit 0, journal "
              f"{len(entries)} entry(ies), state={entry['state']}")

        # Second boot on the same store: the journal + store must
        # still dedup the spec without recomputing anything.
        port = free_port()
        proc = boot(port)
        client = ServiceClient("127.0.0.1", port)
        wait_healthy(client, proc)
        again = client.submit(_SERVE_SMOKE_SPEC)
        if not again["deduped"]:
            print("error: spec recomputed after restart (journal "
                  "resume failed)", file=sys.stderr)
            return 1
        if client.result(again["job"]) != local:
            print("error: post-restart result differs", file=sys.stderr)
            return 1
        print("  post-restart resubmit deduplicated from the "
              "journal/store: yes")
        client.close()
        code = drain(proc)
        proc = None
        if code != 0:
            print(f"error: second server exited {code} on SIGTERM",
                  file=sys.stderr)
            return 1
        print("serve smoke OK")
        return 0
    finally:
        if proc is not None:
            proc.kill()
            proc.wait()
        if temp is not None:
            shutil.rmtree(temp, ignore_errors=True)


def cmd_serve(args: argparse.Namespace) -> int:
    if args.smoke:
        return _cmd_serve_smoke(args)
    from .service import JobManager, run_server

    try:
        manager = JobManager(
            store=_store_root(args),
            workers=args.workers,
            inner_jobs=args.jobs or 1,
            retry=_retry_from_args(args),
            queue_size=args.queue_size,
            resume=not args.no_resume,
        )
    except Exception as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    run_server(manager, host=args.host, port=args.port)
    return 0


#: Where ``repro docs`` writes/checks the generated CLI reference.
CLI_DOC_PATH = "docs/cli.md"

_CLI_DOC_HEADER = """\
# CLI reference

Generated from the live argparse tree by `python -m repro.cli docs`
(do **not** edit by hand — `make docs` regenerates and CI checks it is
in sync).  Every subcommand runs as `python -m repro <command> ...`
with `PYTHONPATH=src` (or the package installed).
"""


def _action_invocation(action: argparse.Action) -> str:
    """Readable flag/positional syntax for one argparse action."""
    if not action.option_strings:  # positional
        return action.metavar or action.dest.upper()
    metavar = ""
    if action.nargs != 0:
        name = action.metavar or action.dest.upper()
        metavar = f" [{name}]" if action.nargs == "?" else f" {name}"
    return ", ".join(
        f"{flag}{metavar}" for flag in action.option_strings
    )


def _action_doc_line(action: argparse.Action) -> str:
    """One markdown bullet documenting an argparse action."""
    parts = [f"- `{_action_invocation(action)}` — {action.help or ''}"]
    if action.choices is not None:
        names = ", ".join(str(c) for c in action.choices)
        parts.append(f" (one of: {names})")
    return "".join(parts)


def render_cli_docs() -> str:
    """The full markdown CLI reference, from the live parser tree.

    Deterministic for a given code state (no terminal-width dependent
    argparse formatting), so ``docs/cli.md`` can be checked for sync
    in CI: any flag/subcommand change regenerates the page.
    """
    parser = build_parser()
    lines = [_CLI_DOC_HEADER]
    subactions = [
        action for action in parser._actions
        if isinstance(action, argparse._SubParsersAction)
    ]
    for subaction in subactions:
        helps = {
            choice.dest: choice.help or ""
            for choice in subaction._choices_actions
        }
        for name, sub in subaction.choices.items():
            lines.append(f"## `repro {name}`")
            lines.append("")
            summary = helps.get(name, "")
            if summary:
                lines.append(summary[0].upper() + summary[1:] + ".")
                lines.append("")
            positionals = [
                a for a in sub._actions
                if not a.option_strings
                and not isinstance(a, argparse._SubParsersAction)
            ]
            options = [
                a for a in sub._actions
                if a.option_strings
                and not isinstance(a, argparse._HelpAction)
            ]
            if positionals:
                lines.append("Arguments:")
                lines.append("")
                for action in positionals:
                    lines.append(_action_doc_line(action))
                lines.append("")
            if options:
                lines.append("Options:")
                lines.append("")
                for action in options:
                    lines.append(_action_doc_line(action))
                lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def cmd_docs(args: argparse.Namespace) -> int:
    """Generate (or check) the argparse-derived CLI reference page."""
    text = render_cli_docs()
    path = args.output
    if args.check:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                current = handle.read()
        except OSError as exc:
            print(f"error: cannot read {path}: {exc}", file=sys.stderr)
            return 1
        if current != text:
            print(
                f"error: {path} is out of sync with the CLI; "
                f"regenerate with `python -m repro.cli docs`",
                file=sys.stderr,
            )
            return 1
        print(f"{path} is in sync with the CLI")
        return 0
    try:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
    except OSError as exc:
        print(f"error: cannot write {path}: {exc}", file=sys.stderr)
        return 1
    print(f"[CLI reference written to {path}]")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Access pattern-based code compression (DATE 2005) "
                    "— simulator CLI",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser(
        "list", help="list every pluggable component family"
    ).set_defaults(func=cmd_list)

    inspect_parser = subparsers.add_parser(
        "inspect", help="show a workload's CFG and static compression"
    )
    inspect_parser.add_argument("workload", choices=available_workloads())
    inspect_parser.add_argument(
        "--disasm", action="store_true", help="include full disassembly"
    )
    inspect_parser.set_defaults(func=cmd_inspect)

    run_parser = subparsers.add_parser(
        "run", help="simulate one workload under one configuration"
    )
    run_parser.add_argument("workload", choices=available_workloads())
    _add_config_arguments(run_parser)
    run_parser.set_defaults(func=cmd_run)

    sweep_parser = subparsers.add_parser(
        "sweep", help="k-edge sweep table for one workload"
    )
    sweep_parser.add_argument("workload", choices=available_workloads())
    sweep_parser.add_argument(
        "--k-values", default="1,2,4,8,16,inf", type=_parse_k_list,
        metavar="LIST",
        help="comma-separated positive k list; 'inf' or 'none' = never "
             "recompress (default: 1,2,4,8,16,inf)",
    )
    _add_config_arguments(sweep_parser)
    _add_engine_arguments(sweep_parser)
    sweep_parser.set_defaults(func=cmd_sweep)

    compare_parser = subparsers.add_parser(
        "compare", help="compare the decompression design space"
    )
    compare_parser.add_argument("workload",
                                choices=available_workloads())
    _add_config_arguments(compare_parser)
    _add_engine_arguments(compare_parser)
    compare_parser.set_defaults(func=cmd_compare)

    exp_parser = subparsers.add_parser(
        "exp", help="run a declarative JSON experiment spec"
    )
    exp_parser.add_argument(
        "--spec", required=True, metavar="FILE",
        help="JSON experiment spec (see README: repro.api quickstart)",
    )
    exp_parser.add_argument(
        "--engine", default=None, choices=api.available_engines(),
        help="override the spec's sweep engine",
    )
    exp_parser.add_argument(
        "--assignment", default=None, type=_parse_assignment,
        metavar="POLICY",
        help="override every cell's codec-assignment policy "
             f"({', '.join(available_assignments())}; colon "
             "parameters accepted, e.g. knapsack:0.9).  Spec cells "
             "carry no offline profile, so non-uniform policies use "
             "the static loop-nesting hotness estimate here — labels "
             "mark such runs '[static]'; run/sweep/compare profile "
             "the workload instead",
    )
    exp_parser.add_argument(
        "--executor", default=None, choices=api.EXECUTORS.names(),
        help="override the spec's executor",
    )
    exp_parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="override the spec's worker process count",
    )
    exp_parser.add_argument(
        "--output", default=None, metavar="PATH",
        help="write the versioned result JSON here",
    )
    exp_parser.add_argument(
        "--csv", default=None, metavar="PATH",
        help="write the flat result CSV here",
    )
    _add_cache_arguments(exp_parser)
    _add_retry_arguments(exp_parser)
    exp_parser.set_defaults(func=cmd_exp)

    store_parser = subparsers.add_parser(
        "store", help="manage the persistent experiment store"
    )
    store_parser.add_argument(
        "action", choices=("stats", "gc", "clear", "verify", "smoke"),
        help="stats: inventory + hit counters; gc: drop unreferenced "
             "blobs; clear: empty the store; verify: fsck every blob "
             "and ref (nonzero exit on damage unless --repair); "
             "smoke: run a tiny sweep twice and assert the second run "
             "is served from cache",
    )
    store_parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="store directory (default: $REPRO_STORE_DIR or "
             "~/.cache/repro-store; smoke defaults to a throwaway "
             "temp dir)",
    )
    store_parser.add_argument(
        "--repair", action="store_true",
        help="with verify: quarantine corrupt blobs (to quarantine/), "
             "prune dangling refs and stale temp files",
    )
    store_parser.add_argument(
        "--json", action="store_true",
        help="with stats: print the raw stats dict as JSON (the same "
             "numbers the service's GET /metrics reports under "
             "'store')",
    )
    store_parser.set_defaults(func=cmd_store)

    serve_parser = subparsers.add_parser(
        "serve", help="run the long-running sweep service "
                      "(JSON job API over HTTP; see docs/service.md)"
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", metavar="ADDR",
        help="bind address (default: 127.0.0.1)",
    )
    serve_parser.add_argument(
        "--port", type=int, default=8642, metavar="PORT",
        help="listen port; 0 picks a free one (default: 8642)",
    )
    serve_parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="experiment store backing the service (default: "
             "$REPRO_STORE_DIR or ~/.cache/repro-store; --smoke "
             "defaults to a throwaway temp dir)",
    )
    serve_parser.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="concurrent job worker threads (default: 2)",
    )
    serve_parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker *processes* per job for cell execution "
             "(default: in-thread serial)",
    )
    serve_parser.add_argument(
        "--queue-size", type=int, default=64, metavar="N",
        help="bounded job queue depth; a full queue replies 429 "
             "(default: 64)",
    )
    serve_parser.add_argument(
        "--no-resume", action="store_true",
        help="ignore the job journal from previous runs instead of "
             "re-enqueueing unfinished jobs at boot",
    )
    serve_parser.add_argument(
        "--smoke", action="store_true",
        help="boot a throwaway server subprocess, round-trip a spec, "
             "assert byte-equality with a local run and a graceful "
             "SIGTERM drain (the `make serve-smoke` / CI gate)",
    )
    _add_retry_arguments(serve_parser)
    serve_parser.set_defaults(func=cmd_serve)

    docs_parser = subparsers.add_parser(
        "docs", help="generate docs/cli.md from the argparse tree"
    )
    docs_parser.add_argument(
        "--check", action="store_true",
        help="verify the page matches the live CLI instead of writing "
             "(nonzero exit on drift; the `make docs` / CI gate)",
    )
    docs_parser.add_argument(
        "--output", default=CLI_DOC_PATH, metavar="PATH",
        help=f"where to write/check the page (default: {CLI_DOC_PATH})",
    )
    docs_parser.set_defaults(func=cmd_docs)

    bench_parser = subparsers.add_parser(
        "bench", help="run performance microbenchmarks "
                      "(writes BENCH_core.json)"
    )
    bench_parser.add_argument(
        "--smoke", action="store_true",
        help="fast CI mode: smaller corpus, fewer repeats",
    )
    bench_parser.add_argument(
        "--only", default=None, metavar="NAME",
        help="run a single named benchmark (see repro.analysis.bench."
             "BENCHMARKS); skips writing the default report file",
    )
    bench_parser.add_argument(
        "--repeat", type=int, default=1, metavar="N",
        help="run each selected benchmark N times and report the "
             "median (default: 1)",
    )
    bench_parser.add_argument(
        "--output", default=None, metavar="PATH",
        help="report path (default: ./BENCH_core.json)",
    )
    bench_parser.add_argument(
        "--no-write", action="store_true",
        help="print the report without writing the JSON file",
    )
    bench_parser.set_defaults(func=cmd_bench)

    trace_parser = subparsers.add_parser(
        "trace", help="simulate one cell with span tracing armed "
                      "(phase breakdown + Chrome trace export)"
    )
    trace_parser.add_argument(
        "action", choices=("run",),
        help="run: trace one workload/config cell",
    )
    trace_parser.add_argument("workload", choices=available_workloads())
    _add_config_arguments(trace_parser)
    trace_parser.add_argument(
        "--engine", default="machine", choices=api.available_engines(),
        help="engine to trace: interpret ('machine') or record + "
             "replay ('trace'); results are identical either way "
             "(default: machine)",
    )
    trace_parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the Chrome trace-event JSON here (load it in "
             "Perfetto or chrome://tracing)",
    )
    trace_parser.set_defaults(func=cmd_trace)

    obs_parser = subparsers.add_parser(
        "obs", help="observability gates (see docs/observability.md)"
    )
    obs_parser.add_argument(
        "action", choices=("smoke",),
        help="smoke: boot a throwaway server, validate the Prometheus "
             "text exposition and the /dashboard page "
             "(the `make obs-smoke` / CI gate)",
    )
    obs_parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="store directory backing the throwaway server "
             "(default: a temp dir, removed afterwards)",
    )
    obs_parser.set_defaults(func=cmd_obs)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
