"""The code-compression manager: the paper's three-thread runtime.

:class:`CodeCompressionManager` ties everything together the way Figure 4
of the paper draws it:

* the **execution thread** (the :class:`~repro.runtime.machine.Machine`)
  runs basic blocks;
* the **decompression thread** (a
  :class:`~repro.runtime.threads.BackgroundWorker`) materialises
  decompressed copies ahead of the execution thread according to the
  configured pre-decompression policy;
* the **compression thread** (another worker) trails behind, deleting
  decompressed copies the k-edge policy expires and patching the branches
  recorded in the remember sets.

The manager itself is a thin orchestrator over three composable
subsystems:

* :class:`~repro.core.timing.TimingModel` — the cycle clock, the two
  background workers, and the single charging site for every stall;
* :class:`~repro.core.residency.ResidencySubsystem` — the code image,
  unit geometry, ready clock, remember sets, budget eviction, and the
  footprint timeline;
* the configured :class:`~repro.memory.hierarchy.MemoryHierarchy` —
  per-level traffic and latency charged inside the residency layer.

Faults follow Section 5's scheme exactly: fetching a block with no
decompressed copy raises the memory-protection exception; the handler
decompresses into the separate area and patches the branch that jumped
there.  Re-entering a resident block whose incoming branch still aims at
the compressed area costs a *patch fault* (handler entry + patch, no
decompression) — that is Figure 5's steps (5)-(6).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Set, Tuple

from ..cfg.builder import ProgramCFG
from ..cfg.profile import EdgeProfile
from ..obs.tracer import Tracer, current_tracer
from ..runtime.events import EventKind, EventLog
from ..runtime.machine import Machine
from ..runtime.metrics import Counters, SimulationResult
from ..strategies.base import (
    STRATEGIES,
    CompressionPolicy,
    DecompressionPolicy,
)
from ..strategies.kedge import KEdgeCompression, NeverRecompress
from ..strategies.ondemand import OnDemandDecompression
from ..strategies.predecompress import PreDecompressAll, PreDecompressSingle
from ..strategies.predictor import make_predictor
from .config import SimulationConfig
from .replay import try_batched_replay
from .residency import ResidencySubsystem
from .timing import TimingModel

#: Cap on the stored block trace (the full trace of a long run can be
#: millions of entries; metrics never need more than this).  Runs that
#: hit the cap are flagged via ``SimulationResult.trace_truncated``.
_TRACE_CAP = 2_000_000


class CodeCompressionManager:
    """Simulates one program under one configuration.

    Typical use::

        cfg = build_cfg(assemble(source, "app"))
        result = CodeCompressionManager(cfg, SimulationConfig(
            codec="lzw", decompression="pre-single",
            k_compress=4, k_decompress=2,
        )).run()
        print(result.render())
    """

    def __init__(
        self,
        cfg: ProgramCFG,
        config: Optional[SimulationConfig] = None,
        compression_policy: Optional[CompressionPolicy] = None,
        decompression_policy: Optional[DecompressionPolicy] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.cfg = cfg
        self.config = config or SimulationConfig()
        self._compression_override = compression_policy
        self._decompression_override = decompression_policy
        self.machine = Machine(
            cfg,
            data_words=self.config.data_words,
            max_steps=self.config.max_steps,
        )
        self.log = EventLog(enabled=self.config.trace_events)
        self.counters = Counters()
        self.profile = EdgeProfile()  # online access pattern, always kept

        # ---- observability -----------------------------------------
        # Tracing is armed out-of-band (explicit argument or the
        # ambient tracing_scope), never via SimulationConfig: configs
        # feed store fingerprints, and tracing must leave results and
        # cache keys byte-identical.  The default is the inert
        # NULL_TRACER.
        self.tracer = (
            tracer if tracer is not None else current_tracer(cfg.name)
        )

        # ---- the composable core -----------------------------------
        self.timing = TimingModel(
            self.config, self.counters, self.tracer
        )
        self.residency = ResidencySubsystem(
            cfg, self.config, self.timing, self.counters, self.log
        )

        # ---- policies ----------------------------------------------
        # Policy instances may be injected for ablations (E12); the
        # config-driven defaults implement the paper's algorithms.
        if self._compression_override is not None:
            self.compression: CompressionPolicy = (
                self._compression_override
            )
        elif self.config.k_compress is None:
            self.compression = NeverRecompress()
        else:
            self.compression = KEdgeCompression(self.config.k_compress)
        self.compression.bind(self)

        if self._decompression_override is not None:
            self.decompression: DecompressionPolicy = (
                self._decompression_override
            )
        elif self.config.decompression == "pre-all":
            self.decompression = PreDecompressAll(
                self.config.k_decompress
            )
        elif self.config.decompression == "pre-single":
            self.decompression = PreDecompressSingle(
                self.config.k_decompress,
                make_predictor(self.config.predictor, self.config.profile),
            )
        elif self.config.decompression in ("ondemand", "none"):
            # "none" skips the image entirely; the policy is inert.
            self.decompression = OnDemandDecompression()
        else:
            # An externally registered strategy: the factory is called
            # with no arguments and may read the config through the
            # ManagerView after bind() (self.config / self.cfg).
            self.decompression = STRATEGIES.create(
                self.config.decompression
            )
        self.decompression.bind(self)

        # Residency notifies the compression policy when copies appear
        # and disappear, without knowing the policy layer exists.
        self.residency.on_unit_decompressed = (
            self.compression.on_unit_decompressed
        )
        self.residency.on_unit_released = (
            self.compression.on_unit_released
        )

        # ---- run-loop state ----------------------------------------
        self._pending_predictions: Deque[Tuple[int, int]] = deque()
        self._blocks_entered = 0
        self.block_trace: List[int] = []
        self.trace_truncated = False
        self._current_block: Optional[int] = None

    # ==================================================================
    # Subsystem views (back-compat attribute surface)
    # ==================================================================

    @property
    def now(self) -> int:
        """The global cycle clock (owned by the timing model)."""
        return self.timing.now

    @property
    def execution_cycles(self) -> int:
        """Pure compute cycles (owned by the timing model)."""
        return self.timing.execution_cycles

    @property
    def image(self):
        """The code image (owned by the residency subsystem)."""
        return self.residency.image

    @property
    def codec(self):
        """The (possibly trained) codec instance."""
        return self.residency.codec

    @property
    def budget(self):
        """The optional memory budget (owned by residency)."""
        return self.residency.budget

    @property
    def remember(self):
        """The remember sets (owned by residency)."""
        return self.residency.remember

    @property
    def footprint(self):
        """The footprint timeline (owned by residency)."""
        return self.residency.footprint

    @property
    def decompress_worker(self):
        """The background decompression thread (owned by timing)."""
        return self.timing.decompress_worker

    @property
    def compress_worker(self):
        """The background compression thread (owned by timing)."""
        return self.timing.compress_worker

    @property
    def _artifacts(self):
        return self.residency.artifacts

    # ==================================================================
    # Artifact export
    # ==================================================================

    def export_artifacts(self, store) -> Optional[str]:
        """Persist this run's compressed-image artifacts into ``store``.

        ``store`` is any object with the
        :meth:`repro.store.cas.ExperimentStore.put_artifact_bundle`
        interface (duck-typed so this layer never imports the store).
        Returns the content-addressed artifact key, or None in
        uncompressed mode (there is nothing to export).  The automatic
        path — the provider installed by the caching executor — makes
        this implicit for sweeps; the explicit hook serves one-off
        instrumented runs (:func:`repro.api.run_instrumented`).

        Mixed-codec runs (a non-uniform codec assignment) also return
        None: their payload list interleaves codecs, and storing it
        under the base codec's key would poison the bundle a later
        uniform run loads.  The per-codec bundles those payloads were
        assembled from are exported by the automatic provider path
        anyway.
        """
        artifacts = self.residency.artifacts
        if artifacts is None or artifacts.codec_map is not None:
            return None
        return store.put_artifact_bundle(
            self.config.codec,
            artifacts.block_data,
            artifacts.payloads,
        )

    # ==================================================================
    # ManagerView protocol (what policies can see)
    # ==================================================================

    def unit_of(self, block_id: int) -> int:
        """Compression unit owning ``block_id``."""
        return self.residency.unit_of(block_id)

    def unit_blocks(self, unit_id: int) -> Set[int]:
        """Blocks belonging to ``unit_id``."""
        return self.residency.unit_blocks(unit_id)

    def resident_units(self) -> Set[int]:
        """Units currently holding (or receiving) a decompressed copy."""
        return self.residency.resident_units()

    def is_unit_resident(self, unit_id: int) -> bool:
        """True when ``unit_id`` is decompressed or being decompressed."""
        return self.residency.is_unit_resident(unit_id)

    def unit_uncompressed_size(self, unit_id: int) -> int:
        """Uncompressed bytes of all blocks in ``unit_id``."""
        return self.residency.unit_uncompressed_size(unit_id)

    def _unit_decompress_latency(self, unit_id: int) -> int:
        return self.residency.unit_decompress_latency(unit_id)

    # ==================================================================
    # Fault handling (the Section 5 exception handler)
    # ==================================================================

    def _protected_units(self) -> Set[int]:
        if self._current_block is None:
            return set()
        return {self.unit_of(self._current_block)}

    def _ensure_executable(
        self, block_id: int, came_from: Optional[int]
    ) -> None:
        """Make ``block_id`` runnable, charging faults/stalls as needed.

        Implements the Section 5 exception handler plus the
        pre-decompression wait:

        * not resident  -> full fault: handler + synchronous decompression;
        * resident but decompression still in flight -> stall for the
          remainder;
        * resident and ready but the incoming branch still targets the
          compressed area -> patch fault (handler + patch only).
        """
        residency = self.residency
        timing = self.timing
        if residency.image is None:
            return
        unit_id = residency.unit_of(block_id)
        # A branch site can only be patched if the block holding the branch
        # still has a decompressed copy; otherwise the transfer goes via
        # the compressed-area address and faults (re-patched next time).
        site = None
        if came_from is not None and residency.is_unit_resident(
            residency.unit_of(came_from)
        ):
            site = residency.site_for(came_from)

        if not residency.is_unit_resident(unit_id):
            # Full memory-protection fault (Figure 5 steps 2, 4, 9).
            self.counters.faults += 1
            self.log.emit(timing.now, EventKind.FAULT, block_id)
            residency.enforce_budget(
                unit_id,
                protected=self._protected_units()
                | ({residency.unit_of(came_from)}
                   if came_from is not None else set()),
            )
            residency.materialise_unit(unit_id)
            residency.sample_footprint()
            stall = (
                self.config.fault_cycles
                + residency.unit_fill_cycles(unit_id)
            )
            timing.stall(stall)
            residency.mark_ready(unit_id, timing.now)
            self.log.emit(timing.now, EventKind.DECOMPRESS_DONE, unit_id,
                          stall)
            if site is not None:
                residency.remember.add_reference(block_id, site)
                self.counters.patches += 1
                self.log.emit(timing.now, EventKind.PATCH, block_id)
            return

        waited = timing.wait_until(residency.ready_at(unit_id))
        if waited:
            # Pre-decompression still in flight: we waited it out.
            self.log.emit(timing.now, EventKind.STALL, block_id, waited)
        timing.retire_decompressions()

        arrived_unpatched = came_from is not None and (
            site is None
            or not residency.remember.points_to(site, block_id)
        )
        if arrived_unpatched:
            # Patch fault: the copy exists but the branch that got us here
            # still aims at the compressed area (Figure 5 steps 5-6).
            self.counters.faults += 1
            timing.stall(
                self.config.fault_cycles, count_stall=False,
                kind="patch",
            )
            if site is not None:
                residency.remember.add_reference(block_id, site)
                self.counters.patches += 1
            self.log.emit(timing.now, EventKind.PATCH, block_id)

    # ==================================================================
    # Main loop
    # ==================================================================

    def run(self, max_blocks: Optional[int] = None) -> SimulationResult:
        """Execute the program to completion (or ``max_blocks``).

        Returns the :class:`~repro.runtime.metrics.SimulationResult` with
        all cycle and memory metrics filled in.
        """
        entry = self.cfg.entry
        residency = self.residency
        timing = self.timing
        residency.sample_footprint()

        # Pre-decompression may warm blocks before execution starts.
        if residency.image is not None and self.decompression.uses_thread:
            for block_id in self.decompression.on_program_start(
                entry.block_id
            ):
                residency.schedule_predecompression(
                    block_id, protected=self._protected_units()
                )

        self._ensure_executable(entry.block_id, came_from=None)
        current = entry
        self.profile.record_entry(entry.block_id)

        # Trace replays inside the batched kernel's envelope skip the
        # per-block loop entirely; everything else runs it unchanged.
        if max_blocks is None and try_batched_replay(self):
            return self._finish_run()

        while True:
            self._on_block_enter(current.block_id)
            outcome = self.machine.run_block(current)
            timing.advance_execution(outcome.cycles)
            timing.retire_decompressions()

            if outcome.next_block_id is None:
                break
            if max_blocks is not None and self._blocks_entered >= max_blocks:
                break

            next_id = outcome.next_block_id
            self._on_edge(current.block_id, next_id)
            self._ensure_executable(next_id, came_from=current.block_id)
            current = self.cfg.block(next_id)

        return self._finish_run()

    def _finish_run(self) -> SimulationResult:
        """Settle end-of-run accounting and assemble the result."""
        residency = self.residency
        timing = self.timing
        # Account contention: background busy cycles partially steal the
        # execution thread when configured.
        timing.finalize()
        residency.sample_footprint()

        registers = self.machine.registers
        result = SimulationResult(
            program=self.cfg.name,
            strategy=self.config.strategy_name,
            codec=self.config.codec,
            k_compress=self.config.k_compress,
            k_decompress=(
                self.config.k_decompress
                if self.config.decompression in ("pre-all", "pre-single")
                else None
            ),
            total_cycles=timing.now,
            execution_cycles=timing.execution_cycles,
            counters=self.counters,
            footprint=residency.footprint,
            uncompressed_size=self.cfg.total_size_bytes(),
            compressed_size=(
                residency.image.compressed_image_size
                if residency.image is not None
                else self.cfg.total_size_bytes()
            ),
            registers=list(registers) if registers is not None else None,
            block_trace=self.block_trace,
            trace_truncated=self.trace_truncated,
            engine=getattr(self.machine, "engine_name", "machine"),
        )
        if self.tracer.enabled:
            self.tracer.close(
                timing.execution_cycles, timing.now
            )
            # The phase breakdown rides on the live result only; it is
            # excluded from summary()/serialisation so traced and
            # untraced runs stay byte-identical.
            result.phases = self.tracer.phases()
        return result

    # ------------------------------------------------------------------
    # Loop steps
    # ------------------------------------------------------------------

    def _on_block_enter(self, block_id: int) -> None:
        residency = self.residency
        unit_id = residency.unit_of(block_id)
        self.counters.blocks_executed += 1
        self._blocks_entered += 1
        if self.config.record_trace:
            if len(self.block_trace) < _TRACE_CAP:
                self.block_trace.append(block_id)
            else:
                self.trace_truncated = True
        self.log.emit(self.timing.now, EventKind.BLOCK_ENTER, block_id)

        residency.mark_used(unit_id)
        self.compression.on_unit_enter(unit_id)
        if residency.image is None:
            residency.charge_uncompressed_entry(block_id)

        # Prediction accuracy: did a pending pre-decompress-single guess
        # come true within its window?
        if self._pending_predictions:
            matched = None
            for index, (predicted, expires) in enumerate(
                self._pending_predictions
            ):
                if predicted == block_id:
                    matched = index
                    break
            if matched is not None:
                self.counters.correct_predictions += 1
                del self._pending_predictions[matched]
            while (
                self._pending_predictions
                and self._pending_predictions[0][1] <= self._blocks_entered
            ):
                self._pending_predictions.popleft()

    def _on_edge(self, src_block: int, dst_block: int) -> None:
        residency = self.residency
        self._current_block = src_block
        self.profile.record_edge(src_block, dst_block)
        self.decompression.on_edge(src_block, dst_block)

        if residency.image is None:
            return

        src_unit = residency.unit_of(src_block)
        dst_unit = residency.unit_of(dst_block)

        # Compression side: tick the k-edge counters, expire units.
        for expired in self.compression.on_edge(src_unit, dst_unit):
            assert expired != dst_unit, (
                "compression policy tried to release the destination unit"
            )
            if residency.is_unit_resident(expired):
                residency.release_unit(expired, EventKind.RECOMPRESS)

        # Decompression side: let the policy request pre-decompressions.
        if self.decompression.uses_thread:
            targets = self.decompression.on_block_exit(src_block)
            choice = getattr(self.decompression, "last_choice", None)
            if choice is not None:
                self.counters.predictions += 1
                self._pending_predictions.append(
                    (choice,
                     self._blocks_entered + self.config.k_decompress + 1)
                )
                self.log.emit(self.timing.now, EventKind.PREDICT, choice)
            for block_id in targets:
                residency.schedule_predecompression(
                    block_id, protected=self._protected_units()
                )
