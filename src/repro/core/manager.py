"""The code-compression manager: the paper's three-thread runtime.

:class:`CodeCompressionManager` ties everything together the way Figure 4
of the paper draws it:

* the **execution thread** (the :class:`~repro.runtime.machine.Machine`)
  runs basic blocks;
* the **decompression thread** (a
  :class:`~repro.runtime.threads.BackgroundWorker`) materialises
  decompressed copies ahead of the execution thread according to the
  configured pre-decompression policy;
* the **compression thread** (another worker) trails behind, deleting
  decompressed copies the k-edge policy expires and patching the branches
  recorded in the remember sets.

Faults follow Section 5's scheme exactly: fetching a block with no
decompressed copy raises the memory-protection exception; the handler
decompresses into the separate area and patches the branch that jumped
there.  Re-entering a resident block whose incoming branch still aims at
the compressed area costs a *patch fault* (handler entry + patch, no
decompression) — that is Figure 5's steps (5)-(6).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Set, Tuple

from ..cfg.builder import ProgramCFG
from ..cfg.profile import EdgeProfile
from ..compress.codec import get_codec
from ..memory.image import (
    CodeImage,
    InPlaceImage,
    SeparateAreaImage,
    compression_artifacts,
)
from ..memory.remember_set import BranchSite, RememberSets
from ..runtime.events import EventKind, EventLog
from ..runtime.machine import Machine
from ..runtime.metrics import Counters, FootprintTimeline, SimulationResult
from ..runtime.threads import BackgroundWorker
from ..strategies.base import (
    STRATEGIES,
    CompressionPolicy,
    DecompressionPolicy,
)
from ..strategies.budget import MemoryBudget
from ..strategies.kedge import KEdgeCompression, NeverRecompress
from ..strategies.ondemand import OnDemandDecompression
from ..strategies.predecompress import PreDecompressAll, PreDecompressSingle
from ..strategies.predictor import make_predictor
from .config import SimulationConfig

#: Cap on the stored block trace (the full trace of a long run can be
#: millions of entries; metrics never need more than this).
_TRACE_CAP = 2_000_000


class CodeCompressionManager:
    """Simulates one program under one configuration.

    Typical use::

        cfg = build_cfg(assemble(source, "app"))
        result = CodeCompressionManager(cfg, SimulationConfig(
            codec="lzw", decompression="pre-single",
            k_compress=4, k_decompress=2,
        )).run()
        print(result.render())
    """

    def __init__(
        self,
        cfg: ProgramCFG,
        config: Optional[SimulationConfig] = None,
        compression_policy: Optional[CompressionPolicy] = None,
        decompression_policy: Optional[DecompressionPolicy] = None,
    ) -> None:
        self.cfg = cfg
        self.config = config or SimulationConfig()
        self._compression_override = compression_policy
        self._decompression_override = decompression_policy
        self.machine = Machine(
            cfg,
            data_words=self.config.data_words,
            max_steps=self.config.max_steps,
        )
        self.log = EventLog(enabled=self.config.trace_events)
        self.counters = Counters()
        self.footprint = FootprintTimeline()
        self.profile = EdgeProfile()  # online access pattern, always kept
        self.now = 0
        self.execution_cycles = 0

        self._uncompressed_mode = self.config.decompression == "none"

        # ---- compression units -------------------------------------
        if self.config.granularity == "function":
            self._unit_of: Dict[int, int] = dict(cfg.function_of)
            self._unit_blocks: Dict[int, Set[int]] = {
                unit: set(blocks) for unit, blocks in cfg.functions.items()
            }
        else:
            self._unit_of = {
                block.block_id: block.block_id for block in cfg.blocks
            }
            self._unit_blocks = {
                block.block_id: {block.block_id} for block in cfg.blocks
            }

        # Compression products (trained codec, payloads, plaintexts) are
        # pure functions of (cfg, codec name) and shared across managers,
        # so sweep grid cells never recompress identical block bytes.
        if self._uncompressed_mode:
            self.codec = get_codec(self.config.codec)
            self.image: Optional[CodeImage] = None
            self._artifacts = None
        else:
            artifacts = compression_artifacts(cfg, self.config.codec)
            self._artifacts = artifacts
            self.codec = artifacts.codec
            if self.config.image_scheme == "inplace":
                self.image = InPlaceImage(
                    cfg, self.codec, artifacts=artifacts
                )
            else:
                self.image = SeparateAreaImage(
                    cfg, self.codec, artifacts=artifacts
                )

        # ---- policies ----------------------------------------------
        # Policy instances may be injected for ablations (E12); the
        # config-driven defaults implement the paper's algorithms.
        if self._compression_override is not None:
            self.compression: CompressionPolicy = (
                self._compression_override
            )
        elif self.config.k_compress is None:
            self.compression = NeverRecompress()
        else:
            self.compression = KEdgeCompression(self.config.k_compress)
        self.compression.bind(self)

        if self._decompression_override is not None:
            self.decompression: DecompressionPolicy = (
                self._decompression_override
            )
        elif self.config.decompression == "pre-all":
            self.decompression = PreDecompressAll(
                self.config.k_decompress
            )
        elif self.config.decompression == "pre-single":
            self.decompression = PreDecompressSingle(
                self.config.k_decompress,
                make_predictor(self.config.predictor, self.config.profile),
            )
        elif self.config.decompression in ("ondemand", "none"):
            # "none" skips the image entirely; the policy is inert.
            self.decompression = OnDemandDecompression()
        else:
            # An externally registered strategy: the factory is called
            # with no arguments and may read the config through the
            # ManagerView after bind() (self.config / self.cfg).
            self.decompression = STRATEGIES.create(
                self.config.decompression
            )
        self.decompression.bind(self)

        self.budget: Optional[MemoryBudget] = None
        if self.config.memory_budget is not None:
            self.budget = MemoryBudget(
                self.config.memory_budget, self.config.eviction
            )

        # ---- background threads (Figure 4) -------------------------
        self.decompress_worker = BackgroundWorker(
            "decompression", contention=self.config.contention
        )
        self.compress_worker = BackgroundWorker(
            "compression", contention=self.config.contention
        )

        # ---- residency bookkeeping ---------------------------------
        self.remember = RememberSets()
        # Unit geometry is immutable; sizes/latencies memoize on first use.
        self._unit_size_cache: Dict[int, int] = {}
        self._unit_latency_cache: Dict[int, int] = {}
        # A block's terminator branch site never changes either.
        self._site_cache: Dict[int, BranchSite] = {}
        self._ready_at: Dict[int, int] = {}  # unit -> completion cycle
        self._used_since_decompress: Dict[int, bool] = {}
        self._pending_predictions: Deque[Tuple[int, int]] = deque()
        self._blocks_entered = 0
        self.block_trace: List[int] = []
        self._current_block: Optional[int] = None

    # ==================================================================
    # Artifact export
    # ==================================================================

    def export_artifacts(self, store) -> Optional[str]:
        """Persist this run's compressed-image artifacts into ``store``.

        ``store`` is any object with the
        :meth:`repro.store.cas.ExperimentStore.put_artifact_bundle`
        interface (duck-typed so this layer never imports the store).
        Returns the content-addressed artifact key, or None in
        uncompressed mode (there is nothing to export).  The automatic
        path — the provider installed by the caching executor — makes
        this implicit for sweeps; the explicit hook serves one-off
        instrumented runs (:func:`repro.api.run_instrumented`).
        """
        if self._artifacts is None:
            return None
        return store.put_artifact_bundle(
            self.config.codec,
            self._artifacts.block_data,
            self._artifacts.payloads,
        )

    # ==================================================================
    # ManagerView protocol (what policies can see)
    # ==================================================================

    def unit_of(self, block_id: int) -> int:
        """Compression unit owning ``block_id``."""
        return self._unit_of[block_id]

    def unit_blocks(self, unit_id: int) -> Set[int]:
        """Blocks belonging to ``unit_id``."""
        return set(self._unit_blocks[unit_id])

    def resident_units(self) -> Set[int]:
        """Units currently holding (or receiving) a decompressed copy."""
        return set(self._ready_at)

    def is_unit_resident(self, unit_id: int) -> bool:
        """True when ``unit_id`` is decompressed or being decompressed."""
        return unit_id in self._ready_at

    # ==================================================================
    # Unit geometry helpers
    # ==================================================================

    def unit_uncompressed_size(self, unit_id: int) -> int:
        """Uncompressed bytes of all blocks in ``unit_id``."""
        size = self._unit_size_cache.get(unit_id)
        if size is None:
            size = sum(
                self.cfg.block(block_id).size_bytes
                for block_id in self._unit_blocks[unit_id]
            )
            self._unit_size_cache[unit_id] = size
        return size

    def _unit_decompress_latency(self, unit_id: int) -> int:
        latency = self._unit_latency_cache.get(unit_id)
        if latency is None:
            latency = self.codec.costs.decompress_latency(
                self.unit_uncompressed_size(unit_id)
            )
            self._unit_latency_cache[unit_id] = latency
        return latency

    def _footprint_now(self) -> int:
        if self.image is None:
            return self.cfg.total_size_bytes()
        return self.image.footprint_bytes

    def _sample_footprint(self) -> None:
        self.footprint.record(self.now, self._footprint_now())

    # ==================================================================
    # Decompression / release mechanics
    # ==================================================================

    def _materialise_unit(self, unit_id: int) -> None:
        """Allocate and mark every block of ``unit_id`` decompressed."""
        assert self.image is not None
        for block_id in sorted(self._unit_blocks[unit_id]):
            self.image.decompress(block_id)
            # Materialise the actual bytes (discarding them): an
            # undecodable payload must fail on the executed path, not
            # only under verify_block.  The shared memo bounds the cost
            # to one decode per block per (cfg, codec) — repeated
            # faults, and other sweep cells, never re-run the codec.
            self.image.block_data(block_id)
            # Section 2 traffic model: materialisation streams the
            # compressed payload out of the target memory.
            self.counters.target_memory_bytes += (
                self.image.block(block_id).compressed_size
            )
        self.counters.decompressions += 1
        self._used_since_decompress[unit_id] = False
        self.compression.on_unit_decompressed(unit_id)
        if self.budget is not None:
            self.budget.on_unit_decompressed(unit_id)

    def _enforce_budget(self, unit_id: int, protected: Set[int]) -> None:
        """Evict units (LRU or configured policy) so ``unit_id`` fits."""
        if self.budget is None or self.image is None:
            return
        victims = self.budget.select_victims(
            needed_bytes=self.unit_uncompressed_size(unit_id),
            current_footprint=self.image.footprint_bytes,
            resident=self.resident_units(),
            protected=protected | {unit_id},
            size_of=self.unit_uncompressed_size,
        )
        for victim in victims:
            self._release_unit(victim, EventKind.EVICT)
            self.counters.evictions += 1

    def _release_unit(self, unit_id: int, reason: EventKind) -> None:
        """Delete ``unit_id``'s decompressed copy (Section 5: cheap —
        drop the copy, patch the remembered branches)."""
        assert self.image is not None
        self._ready_at.pop(unit_id, None)
        self.decompress_worker.cancel(unit_id, self.now)
        patches = 0
        for block_id in sorted(self._unit_blocks[unit_id]):
            if self.image.is_resident(block_id):
                self.image.release(block_id)
            patches += len(self.remember.drop_target(block_id))
            self.remember.drop_sites_in_block(block_id)
        self.counters.patches += patches
        self.counters.recompressions += 1
        if not self._used_since_decompress.pop(unit_id, True):
            self.counters.wasted_decompressions += 1
        # Patching runs on the background compression thread.
        self.compress_worker.schedule(
            self.now,
            unit_id,
            self.config.patch_cycles * patches,
        )
        self.compress_worker.retire_completed(self.now)
        self.compression.on_unit_released(unit_id)
        if self.budget is not None:
            self.budget.on_unit_released(unit_id)
        self.log.emit(self.now, reason, unit_id, patches)
        self._sample_footprint()

    def _schedule_predecompression(self, block_id: int) -> None:
        """Queue ``block_id``'s unit on the decompression thread.

        Requests are shed when the thread's backlog is full — the block
        simply stays compressed and, if actually reached, faults on demand.
        """
        unit_id = self.unit_of(block_id)
        if self.is_unit_resident(unit_id):
            return
        if (
            self.decompress_worker.backlog()
            >= self.config.max_prefetch_backlog
        ):
            self.counters.dropped_prefetches += 1
            return
        self._enforce_budget(unit_id, protected=self._protected_units())
        self._materialise_unit(unit_id)
        job = self.decompress_worker.schedule(
            self.now, unit_id, self._unit_decompress_latency(unit_id)
        )
        self._ready_at[unit_id] = job.completes_at
        self.counters.background_decompress_cycles += job.latency
        self.log.emit(self.now, EventKind.DECOMPRESS_START, unit_id)
        self._sample_footprint()

    def _protected_units(self) -> Set[int]:
        if self._current_block is None:
            return set()
        return {self.unit_of(self._current_block)}

    def _ensure_executable(self, block_id: int, came_from: Optional[int]) -> None:
        """Make ``block_id`` runnable, charging faults/stalls as needed.

        Implements the Section 5 exception handler plus the
        pre-decompression wait:

        * not resident  -> full fault: handler + synchronous decompression;
        * resident but decompression still in flight -> stall for the
          remainder;
        * resident and ready but the incoming branch still targets the
          compressed area -> patch fault (handler + patch only).
        """
        if self.image is None:
            return
        unit_id = self.unit_of(block_id)
        # A branch site can only be patched if the block holding the branch
        # still has a decompressed copy; otherwise the transfer goes via
        # the compressed-area address and faults (re-patched next time).
        site = None
        if came_from is not None and self.is_unit_resident(
            self.unit_of(came_from)
        ):
            site = self._site_cache.get(came_from)
            if site is None:
                terminator_index = len(self.cfg.block(came_from)) - 1
                site = BranchSite(came_from, terminator_index)
                self._site_cache[came_from] = site

        if not self.is_unit_resident(unit_id):
            # Full memory-protection fault (Figure 5 steps 2, 4, 9).
            self.counters.faults += 1
            self.log.emit(self.now, EventKind.FAULT, block_id)
            self._enforce_budget(
                unit_id,
                protected=self._protected_units()
                | ({self.unit_of(came_from)} if came_from is not None
                   else set()),
            )
            self._materialise_unit(unit_id)
            self._sample_footprint()
            latency = self._unit_decompress_latency(unit_id)
            stall = self.config.fault_cycles + latency
            self.now += stall
            self.counters.stall_cycles += stall
            self.counters.stalls += 1
            self._ready_at[unit_id] = self.now
            self.log.emit(self.now, EventKind.DECOMPRESS_DONE, unit_id,
                          stall)
            if site is not None:
                self.remember.add_reference(block_id, site)
                self.counters.patches += 1
                self.log.emit(self.now, EventKind.PATCH, block_id)
            return

        ready_at = self._ready_at.get(unit_id, 0)
        if ready_at > self.now:
            # Pre-decompression still in flight: wait out the remainder.
            stall = ready_at - self.now
            self.now = ready_at
            self.counters.stall_cycles += stall
            self.counters.stalls += 1
            self.log.emit(self.now, EventKind.STALL, block_id, stall)
        self.decompress_worker.retire_completed(self.now)

        arrived_unpatched = came_from is not None and (
            site is None or not self.remember.points_to(site, block_id)
        )
        if arrived_unpatched:
            # Patch fault: the copy exists but the branch that got us here
            # still aims at the compressed area (Figure 5 steps 5-6).
            self.counters.faults += 1
            self.now += self.config.fault_cycles
            self.counters.stall_cycles += self.config.fault_cycles
            if site is not None:
                self.remember.add_reference(block_id, site)
                self.counters.patches += 1
            self.log.emit(self.now, EventKind.PATCH, block_id)

    # ==================================================================
    # Main loop
    # ==================================================================

    def run(self, max_blocks: Optional[int] = None) -> SimulationResult:
        """Execute the program to completion (or ``max_blocks``).

        Returns the :class:`~repro.runtime.metrics.SimulationResult` with
        all cycle and memory metrics filled in.
        """
        entry = self.cfg.entry
        self._sample_footprint()

        # Pre-decompression may warm blocks before execution starts.
        if self.image is not None and self.decompression.uses_thread:
            for block_id in self.decompression.on_program_start(
                entry.block_id
            ):
                self._schedule_predecompression(block_id)

        self._ensure_executable(entry.block_id, came_from=None)
        current = entry
        self.profile.record_entry(entry.block_id)

        while True:
            self._on_block_enter(current.block_id)
            outcome = self.machine.run_block(current)
            self.now += outcome.cycles
            self.execution_cycles += outcome.cycles
            self.decompress_worker.retire_completed(self.now)

            if outcome.next_block_id is None:
                break
            if max_blocks is not None and self._blocks_entered >= max_blocks:
                break

            next_id = outcome.next_block_id
            self._on_edge(current.block_id, next_id)
            self._ensure_executable(next_id, came_from=current.block_id)
            current = self.cfg.block(next_id)

        # Account contention: background busy cycles partially steal the
        # execution thread when configured.
        contention = (
            self.decompress_worker.contention_cycles()
            + self.compress_worker.contention_cycles()
        )
        self.now += contention
        self.counters.stall_cycles += contention
        self.counters.background_compress_cycles = (
            self.compress_worker.busy_cycles
        )
        self._sample_footprint()

        return SimulationResult(
            program=self.cfg.name,
            strategy=self.config.strategy_name,
            codec=self.config.codec,
            k_compress=self.config.k_compress,
            k_decompress=(
                self.config.k_decompress
                if self.config.decompression in ("pre-all", "pre-single")
                else None
            ),
            total_cycles=self.now,
            execution_cycles=self.execution_cycles,
            counters=self.counters,
            footprint=self.footprint,
            uncompressed_size=self.cfg.total_size_bytes(),
            compressed_size=(
                self.image.compressed_image_size
                if self.image is not None
                else self.cfg.total_size_bytes()
            ),
            registers=list(self.machine.registers),
            block_trace=self.block_trace,
        )

    # ------------------------------------------------------------------
    # Loop steps
    # ------------------------------------------------------------------

    def _on_block_enter(self, block_id: int) -> None:
        unit_id = self.unit_of(block_id)
        self.counters.blocks_executed += 1
        self._blocks_entered += 1
        if self.config.record_trace and len(self.block_trace) < _TRACE_CAP:
            self.block_trace.append(block_id)
        self.log.emit(self.now, EventKind.BLOCK_ENTER, block_id)

        self._used_since_decompress[unit_id] = True
        self.compression.on_unit_enter(unit_id)
        if self.budget is not None:
            self.budget.on_unit_enter(unit_id)
        if self.image is None:
            # Uncompressed system: every entry streams the block's full
            # bytes from the target memory (Section 2 traffic model).
            self.counters.target_memory_bytes += (
                self.cfg.block(block_id).size_bytes
            )

        # Prediction accuracy: did a pending pre-decompress-single guess
        # come true within its window?
        if self._pending_predictions:
            matched = None
            for index, (predicted, expires) in enumerate(
                self._pending_predictions
            ):
                if predicted == block_id:
                    matched = index
                    break
            if matched is not None:
                self.counters.correct_predictions += 1
                del self._pending_predictions[matched]
            while (
                self._pending_predictions
                and self._pending_predictions[0][1] <= self._blocks_entered
            ):
                self._pending_predictions.popleft()

    def _on_edge(self, src_block: int, dst_block: int) -> None:
        self._current_block = src_block
        self.profile.record_edge(src_block, dst_block)
        self.decompression.on_edge(src_block, dst_block)

        if self.image is None:
            return

        src_unit = self.unit_of(src_block)
        dst_unit = self.unit_of(dst_block)

        # Compression side: tick the k-edge counters, expire units.
        for expired in self.compression.on_edge(src_unit, dst_unit):
            assert expired != dst_unit, (
                "compression policy tried to release the destination unit"
            )
            if self.is_unit_resident(expired):
                self._release_unit(expired, EventKind.RECOMPRESS)

        # Decompression side: let the policy request pre-decompressions.
        if self.decompression.uses_thread:
            targets = self.decompression.on_block_exit(src_block)
            choice = getattr(self.decompression, "last_choice", None)
            if choice is not None:
                self.counters.predictions += 1
                self._pending_predictions.append(
                    (choice,
                     self._blocks_entered + self.config.k_decompress + 1)
                )
                self.log.emit(self.now, EventKind.PREDICT, choice)
            for block_id in targets:
                self._schedule_predecompression(block_id)
