"""Core orchestration: configuration, manager, and the one-call helper."""

from typing import Optional, Union

from ..cfg.builder import ProgramCFG, build_cfg
from ..isa.program import Program
from .config import (
    ConfigError,
    DECOMPRESSION_STRATEGIES,
    EVICTION_POLICIES,
    GRANULARITIES,
    IMAGE_SCHEMES,
    SimulationConfig,
)
from .manager import CodeCompressionManager
from .residency import ResidencySubsystem
from .timing import TimingModel
from ..runtime.metrics import SimulationResult


def simulate(
    program: Union[Program, ProgramCFG],
    config: Optional[SimulationConfig] = None,
    max_blocks: Optional[int] = None,
) -> SimulationResult:
    """Run one simulation: the one-call public entry point.

    ``program`` may be a linked :class:`~repro.isa.program.Program` (the
    CFG is built automatically) or an already-built
    :class:`~repro.cfg.builder.ProgramCFG`.
    """
    cfg = program if isinstance(program, ProgramCFG) else build_cfg(program)
    manager = CodeCompressionManager(cfg, config)
    return manager.run(max_blocks=max_blocks)


__all__ = [
    "CodeCompressionManager",
    "ConfigError",
    "DECOMPRESSION_STRATEGIES",
    "EVICTION_POLICIES",
    "GRANULARITIES",
    "IMAGE_SCHEMES",
    "ResidencySubsystem",
    "SimulationConfig",
    "SimulationResult",
    "TimingModel",
    "simulate",
]
