"""The batched trace-replay kernel.

Replaying a recorded block trace through the layered
manager/timing/residency stack costs ~80 Python calls per block even
though the per-step work is a handful of integer/dict operations: tick
the k-edge counters, check the destination unit's residency, charge
cycles, and occasionally materialise or release a unit.  For sweep
replays — thousands of blocks times dozens of grid cells — that call
overhead dominates the whole experiment pipeline.

This module flattens the replay into a single loop over the
:class:`~repro.runtime.trace_sim.ReplayPlan` arrays with all hot state
in locals, and layers a window fast-forward on top: the plan
pre-aggregates fixed 32-step windows (cycle/step sums, distinct edges,
per-unit k-edge counter deltas), and whenever the current residency and
remember-set state proves the window cannot fault, release, or patch,
the whole window is charged in O(resident units) operations instead of
32 per-block iterations.

Exactness is the contract: the kernel replicates the per-block path's
operation order bit for bit (fault charging, footprint sample points,
remember-set mutations, compress-worker FIFO arithmetic) and settles
shared subsystem state on exit via the ``absorb_*`` hooks on the
timing model, the background worker, and the code image.  The
trace/machine equivalence suite pins this; anything outside the
kernel's envelope (pre-decompression policies, memory budgets, bounded
or in-place images, armed tracers/logs, injected policy objects) simply
declines to engage and runs on the layered path unchanged.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..obs.tracer import NULL_TRACER
from ..runtime.trace_sim import TraceMachine
from ..strategies.kedge import KEdgeCompression, NeverRecompress
from ..strategies.ondemand import OnDemandDecompression

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .manager import CodeCompressionManager


def try_batched_replay(manager: "CodeCompressionManager") -> bool:
    """Replay the manager's entire trace on the batched path.

    Returns True when the whole trace was consumed (the machine is
    halted and every subsystem holds exactly the state the per-block
    loop would have produced); False when the configuration is outside
    the kernel's envelope — the caller then runs the layered loop.

    Must be called from :meth:`CodeCompressionManager.run` right after
    the entry block was ensured executable and before the first
    ``_on_block_enter``.
    """
    machine = manager.machine
    if type(machine) is not TraceMachine or machine.position != 0:
        return False
    prepared = getattr(machine, "prepared", None)
    if prepared is None or machine.halted:
        return False
    config = manager.config
    if config.record_trace or manager.log.enabled:
        return False
    if manager.tracer is not NULL_TRACER and manager.tracer.enabled:
        return False
    if manager._pending_predictions:
        return False
    if type(manager.decompression) is not OnDemandDecompression:
        return False
    compression = manager.compression
    if type(compression) is KEdgeCompression:
        k = compression.k
    elif type(compression) is NeverRecompress:
        k = None
    else:
        return False
    residency = manager.residency
    timing = manager.timing
    if residency.budget is not None:
        return False
    if timing.decompress_worker.backlog():
        return False
    if timing.compress_worker.backlog():
        return False
    if residency.image is None:
        _replay_uncompressed(manager, prepared, k)
        return True
    # Compressed mode: only the paper's separate-area scheme with an
    # unbounded decompressed area (allocation can never fail, and the
    # footprint is a pure sum of aligned block sizes).
    from ..memory.image import SeparateAreaImage

    image = residency.image
    if type(image) is not SeparateAreaImage:
        return False
    if image.allocator.capacity is not None:
        return False
    _replay_compressed(manager, prepared, k)
    return True


def _replay_uncompressed(manager, prepared, k) -> None:
    """Uncompressed baseline (``decompression="none"``): no image, no
    faults, no releases — the whole replay reduces to aggregate sums."""
    residency = manager.residency
    config = manager.config
    plan = prepared.plan(config.granularity, residency._unit_of)
    trace = plan.trace
    n = len(trace)
    read_bytes, read_cycles = prepared.entry_charges(
        config.hierarchy, residency.hierarchy
    )
    visits = plan.block_visits
    bytes_total = 0
    stall_total = 0
    for block_id, count in visits.items():
        bytes_total += read_bytes[block_id] * count
        stall_total += read_cycles[block_id] * count

    counters = manager.counters
    counters.blocks_executed += n
    counters.target_memory_bytes += bytes_total
    counters.target_memory_accesses += n

    used_since = residency._used_since_decompress
    kcount = (
        manager.compression._counters if k is not None else None
    )
    for unit_id in plan.entered_units:
        used_since[unit_id] = True
        if kcount is not None:
            # No unit is ever resident, so the edge loop never
            # increments: every entered unit ends reset at zero.
            kcount[unit_id] = 0

    profile = manager.profile
    for (src, dst), count in plan.edge_items:
        profile.record_edge(src, dst, count)

    timing = manager.timing
    timing.absorb_replay(
        timing.now + plan.total_cycles + stall_total,
        plan.total_cycles,
        stall_total,
        0,
    )
    machine = manager.machine
    machine.steps += plan.total_instructions
    machine.position = n
    machine.halted = True
    manager._blocks_entered += n
    if n >= 2:
        manager._current_block = trace[n - 2]


def _replay_compressed(manager, prepared, k) -> None:
    """On-demand decompression over a separate-area image: the full
    fault/release/patch state machine, flattened."""
    residency = manager.residency
    timing = manager.timing
    config = manager.config
    image = residency.image
    plan = prepared.plan(config.granularity, residency._unit_of)
    trace = plan.trace
    usteps = plan.unit_steps
    cycles = plan.cycles
    sites = plan.sites
    n = len(trace)
    geometry = residency.replay_geometry()

    windows = plan.windows
    nwin = len(windows)
    width = plan.window_size
    wmask = width - 1
    wshift = width.bit_length() - 1

    kcount = manager.compression._counters if k is not None else None
    ready = residency._ready_at
    used_since = residency._used_since_decompress
    remember = residency.remember
    site_target = remember._site_target
    by_target = remember._by_target
    fp = residency.footprint._samples
    plain = image._plaintext
    base_size = image.compressed_image_size
    used = image.allocator.used_bytes
    fault_cycles = config.fault_cycles
    patch_cycles = config.patch_cycles

    # Which units already have every block's plaintext memoized (the
    # executed path must still fail on undecodable payloads).
    decoded = {
        unit_id: all(b in plain for b in geo[4])
        for unit_id, geo in geometry.items()
    }

    # Compress-worker FIFO arithmetic, simulated locally (exact same
    # schedule/dedup/retire rules as BackgroundWorker.schedule).
    worker = timing.compress_worker
    w_free = worker.free_at
    w_busy = 0
    w_sched = 0
    w_done = 0
    w_pending = {}

    now = timing.now
    stall_cycles = 0
    stalls = 0
    faults = 0
    decompressions = 0
    recompressions = 0
    patches = 0
    wasted = 0
    tmem_bytes = 0
    tmem_accesses = 0
    img_dec = 0
    img_rel = 0
    ec = {}

    pos = 0
    while True:
        # ---- window fast-forward --------------------------------
        if nwin and not (pos & wmask):
            wi = pos >> wshift
            while wi < nwin:
                win = windows[wi]
                wunits = win[2]
                ok = True
                for uu in wunits:
                    if uu not in ready:
                        ok = False
                        break
                if ok:
                    for (es, ed), _count in win[4]:
                        if site_target.get(sites[es]) != ed:
                            ok = False
                            break
                if ok and k is not None:
                    heads = win[6]
                    maxgaps = win[7]
                    dstc = win[5]
                    for ru in ready:
                        if ru in heads:
                            if (
                                kcount[ru] + heads[ru] >= k
                                or maxgaps[ru] >= k
                            ):
                                ok = False
                                break
                        elif kcount[ru] + width - dstc.get(ru, 0) >= k:
                            ok = False
                            break
                if not ok:
                    break
                now += win[0]
                for uu in win[3]:
                    used_since[uu] = True
                if k is not None:
                    tails = win[8]
                    dstc = win[5]
                    for ru in ready:
                        if ru in tails:
                            kcount[ru] = tails[ru]
                        else:
                            kcount[ru] += width - dstc.get(ru, 0)
                for edge, count in win[4]:
                    ec[edge] = ec.get(edge, 0) + count
                pos += width
                wi += 1

        # ---- one per-block step ---------------------------------
        b = trace[pos]
        u = usteps[pos]
        used_since[u] = True
        if kcount is not None:
            kcount[u] = 0
        now += cycles[pos]
        pos += 1
        if pos == n:
            break
        nb = trace[pos]
        nu = usteps[pos]
        edge = (b, nb)
        ec[edge] = ec.get(edge, 0) + 1

        # k-edge tick: every resident unit except the destination.
        if kcount is not None:
            expired = None
            for ru in ready:
                if ru == nu:
                    continue
                count = kcount[ru] + 1
                kcount[ru] = count
                if count >= k:
                    if expired is None:
                        expired = [ru]
                    else:
                        expired.append(ru)
            if expired is not None:
                if len(expired) > 1:
                    expired.sort()
                for ru in expired:
                    # Inline release_unit (recompression).
                    del ready[ru]
                    geo = geometry[ru]
                    released_patches = 0
                    for rb in geo[4]:
                        tset = by_target.pop(rb, None)
                        if tset:
                            for s in tset:
                                del site_target[s]
                            released_patches += len(tset)
                        rb_site = sites[rb]
                        tt = site_target.pop(rb_site, None)
                        if tt is not None:
                            by_target[tt].discard(rb_site)
                    remember.total_patches += released_patches
                    patches += released_patches
                    recompressions += 1
                    if not used_since.pop(ru, True):
                        wasted += 1
                    # schedule_patches: FIFO schedule + retire, local.
                    if ru not in w_pending:
                        latency = patch_cycles * released_patches
                        started = w_free if w_free > now else now
                        completes = started + latency
                        w_free = completes
                        w_busy += latency
                        w_sched += 1
                        w_pending[ru] = (latency, now, started, completes)
                    if w_pending:
                        done = [
                            uu for uu, job in w_pending.items()
                            if job[3] <= now
                        ]
                        for uu in done:
                            del w_pending[uu]
                            w_done += 1
                    kcount.pop(ru, None)
                    used -= geo[0]
                    value = base_size + used
                    if fp and fp[-1][0] == now:
                        fp[-1] = (now, value)
                    else:
                        fp.append((now, value))
                    img_rel += geo[3]

        # ---- ensure the next block is executable ----------------
        if nu not in ready:
            # Full fault: handler + synchronous decompression.
            faults += 1
            geo = geometry[nu]
            if not decoded[nu]:
                for rb in geo[4]:
                    image.block_data(rb)
                decoded[nu] = True
            tmem_bytes += geo[2]
            tmem_accesses += geo[3]
            decompressions += 1
            img_dec += geo[3]
            used_since[nu] = False
            if kcount is not None:
                kcount[nu] = 0
            used += geo[0]
            value = base_size + used
            if fp and fp[-1][0] == now:
                fp[-1] = (now, value)
            else:
                fp.append((now, value))
            stall = fault_cycles + geo[1]
            now += stall
            stall_cycles += stall
            stalls += 1
            ready[nu] = now
            if u in ready:
                # The faulting branch site gets patched.
                site = sites[b]
                previous = site_target.get(site)
                if previous != nb:
                    if previous is not None:
                        by_target[previous].discard(site)
                    targets = by_target.get(nb)
                    if targets is None:
                        by_target[nb] = {site}
                    else:
                        targets.add(site)
                    site_target[site] = nb
                    remember.total_patches += 1
                patches += 1
        elif u not in ready or site_target.get(sites[b]) != nb:
            # Patch fault: copy exists, branch still aims at the
            # compressed area.
            faults += 1
            now += fault_cycles
            stall_cycles += fault_cycles
            if u in ready:
                site = sites[b]
                previous = site_target.get(site)
                if previous != nb:
                    if previous is not None:
                        by_target[previous].discard(site)
                    targets = by_target.get(nb)
                    if targets is None:
                        by_target[nb] = {site}
                    else:
                        targets.add(site)
                    site_target[site] = nb
                    remember.total_patches += 1
                patches += 1

    # ---- settle shared state ------------------------------------
    counters = manager.counters
    counters.blocks_executed += n
    counters.faults += faults
    counters.decompressions += decompressions
    counters.recompressions += recompressions
    counters.patches += patches
    counters.wasted_decompressions += wasted
    counters.target_memory_bytes += tmem_bytes
    counters.target_memory_accesses += tmem_accesses
    timing.absorb_replay(now, plan.total_cycles, stall_cycles, stalls)
    worker.absorb_jobs(
        w_free, w_busy, w_sched, w_done,
        [
            (uu, job[0], job[1], job[2], job[3])
            for uu, job in w_pending.items()
        ],
    )
    resident_blocks = []
    for unit_id in ready:
        resident_blocks.extend(geometry[unit_id][4])
    image.absorb_replay(sorted(resident_blocks), img_dec, img_rel)
    profile = manager.profile
    for (src, dst), count in ec.items():
        profile.record_edge(src, dst, count)
    machine = manager.machine
    machine.steps += plan.total_instructions
    machine.position = n
    machine.halted = True
    manager._blocks_entered += n
    if n >= 2:
        manager._current_block = trace[n - 2]
