"""The residency subsystem: what is decompressed, where, and for whom.

:class:`ResidencySubsystem` owns everything about decompressed copies
that the manager god-object used to keep inline:

* the code **image** (separate-area or in-place) plus the shared
  compression artifacts;
* **unit geometry** — the block→unit map and the memoized per-unit
  sizes, decompression latencies, and fill costs;
* the **ready clock** (``unit -> completion cycle``) that says when an
  in-flight pre-decompression becomes usable;
* the **remember sets** and the per-block branch-site cache that drive
  Section 5's patching;
* the optional **memory budget** and its eviction mechanics;
* the **footprint timeline** (the paper's memory-space metric).

Materialisation traffic and fill latency are charged through the
configured :class:`~repro.memory.hierarchy.MemoryHierarchy`: each block
read streams its burst-rounded compressed payload out of the target
memory, and non-flat targets add bus-transfer cycles on top of the
codec's decompression latency.  Under the default ``flat`` preset both
charges reduce to the seed model exactly.

Under a non-uniform codec assignment (``config.assignment``, see
:mod:`repro.selection`) the image holds mixed-codec payloads and every
unit is charged *its own* codec's decompression latency
(:meth:`ResidencySubsystem.unit_codec`); units assigned ``"null"``
live uncompressed and fill for free.  The ``uniform`` default
short-circuits onto the single-codec artifact path, byte-identical to
the pre-selection behaviour.

Policies never see this class directly — the manager re-exports the
geometry queries through the existing
:class:`~repro.strategies.base.ManagerView` protocol.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Set

from ..cfg.builder import ProgramCFG
from ..compress.codec import get_codec
from ..memory.hierarchy import MemoryHierarchy, get_hierarchy
from ..memory.image import (
    CodeImage,
    InPlaceImage,
    SeparateAreaImage,
    compression_artifacts,
)
from ..memory.remember_set import BranchSite, RememberSets
from ..selection.assignment import (
    assignment_artifacts,
    build_assignment,
    unit_map,
)
from ..runtime.events import EventKind, EventLog
from ..runtime.metrics import Counters, FootprintTimeline
from ..strategies.budget import MemoryBudget
from .config import SimulationConfig
from .timing import TimingModel


class ResidencySubsystem:
    """Owns residency state and mechanics for one simulation run.

    ``on_unit_decompressed`` / ``on_unit_released`` are notification
    hooks the manager points at the compression policy, so the policy
    layer stays decoupled from the mechanics layer.
    """

    def __init__(
        self,
        cfg: ProgramCFG,
        config: SimulationConfig,
        timing: TimingModel,
        counters: Counters,
        log: EventLog,
    ) -> None:
        self.cfg = cfg
        self.config = config
        self.timing = timing
        self.counters = counters
        self.log = log
        self.hierarchy: MemoryHierarchy = get_hierarchy(config.hierarchy)
        self.footprint = FootprintTimeline()

        # Policy notification hooks (set by the orchestrator).
        self.on_unit_decompressed: Optional[Callable[[int], None]] = None
        self.on_unit_released: Optional[Callable[[int], None]] = None

        # ---- compression units -------------------------------------
        unit_of, unit_blocks = unit_map(cfg, config.granularity)
        self._unit_of: Dict[int, int] = unit_of
        self._unit_blocks: Dict[int, Set[int]] = {
            unit: set(blocks) for unit, blocks in unit_blocks.items()
        }

        # ---- image and shared artifacts ----------------------------
        # Compression products (trained codec, payloads, plaintexts) are
        # pure functions of (cfg, codec name) — or, under a non-uniform
        # codec assignment, of (cfg, assignment digest) — and shared
        # across managers, so sweep grid cells never recompress
        # identical block bytes.
        self.uncompressed_mode = config.decompression == "none"
        self.assignment = None
        if self.uncompressed_mode:
            self.codec = get_codec(config.codec)
            self.image: Optional[CodeImage] = None
            self.artifacts = None
        else:
            if config.assignment != "uniform":
                self.assignment = build_assignment(cfg, config)
                artifacts = assignment_artifacts(cfg, self.assignment)
            else:
                artifacts = compression_artifacts(cfg, config.codec)
            self.artifacts = artifacts
            self.codec = artifacts.codec
            if config.image_scheme == "inplace":
                self.image = InPlaceImage(
                    cfg, self.codec, artifacts=artifacts
                )
            else:
                self.image = SeparateAreaImage(
                    cfg, self.codec, artifacts=artifacts
                )
            # Observability: let the image report actual codec decode
            # dispatches (plaintext-memo misses) to an armed tracer.
            if timing.tracer.enabled:
                self.image.tracer = timing.tracer

        self.budget: Optional[MemoryBudget] = None
        if config.memory_budget is not None:
            self.budget = MemoryBudget(
                config.memory_budget, config.eviction
            )

        # ---- residency bookkeeping ---------------------------------
        self.remember = RememberSets()
        # Unit geometry is immutable; sizes/latencies memoize on first
        # use.  A block's terminator branch site never changes either.
        self._unit_size_cache: Dict[int, int] = {}
        self._unit_latency_cache: Dict[int, int] = {}
        self._unit_fill_cache: Dict[int, int] = {}
        self._site_cache: Dict[int, BranchSite] = {}
        self._ready_at: Dict[int, int] = {}  # unit -> completion cycle
        self._used_since_decompress: Dict[int, bool] = {}

    # ==================================================================
    # Geometry (the ManagerView surface)
    # ==================================================================

    def unit_of(self, block_id: int) -> int:
        """Compression unit owning ``block_id``."""
        return self._unit_of[block_id]

    def unit_blocks(self, unit_id: int) -> Set[int]:
        """Blocks belonging to ``unit_id``."""
        return set(self._unit_blocks[unit_id])

    def resident_units(self) -> Set[int]:
        """Units currently holding (or receiving) a decompressed copy."""
        return set(self._ready_at)

    def is_unit_resident(self, unit_id: int) -> bool:
        """True when ``unit_id`` is decompressed or being decompressed."""
        return unit_id in self._ready_at

    def unit_uncompressed_size(self, unit_id: int) -> int:
        """Uncompressed bytes of all blocks in ``unit_id``."""
        size = self._unit_size_cache.get(unit_id)
        if size is None:
            size = sum(
                self.cfg.block(block_id).size_bytes
                for block_id in self._unit_blocks[unit_id]
            )
            self._unit_size_cache[unit_id] = size
        return size

    def unit_codec(self, unit_id: int):
        """The codec that owns ``unit_id``'s payloads.

        Uniform runs return the one configured codec; mixed-codec runs
        (``config.assignment`` != "uniform") dispatch to the unit's
        assigned codec — every block of a unit shares one codec by
        construction.
        """
        if self.assignment is None or self.image is None:
            return self.codec
        return self.image.codec_for(next(iter(self._unit_blocks[unit_id])))

    def unit_decompress_latency(self, unit_id: int) -> int:
        """Modelled codec cycles to decompress all of ``unit_id``
        (charged with the unit's own codec under a mixed assignment)."""
        latency = self._unit_latency_cache.get(unit_id)
        if latency is None:
            latency = self.unit_codec(unit_id).costs.decompress_latency(
                self.unit_uncompressed_size(unit_id)
            )
            self._unit_latency_cache[unit_id] = latency
        return latency

    def unit_fill_cycles(self, unit_id: int) -> int:
        """Cycles to fill ``unit_id`` from the target memory.

        Codec decompression latency plus the hierarchy's bus-transfer
        cost for streaming each block's compressed payload out of the
        target level (zero under the ``flat`` preset).
        """
        cycles = self._unit_fill_cache.get(unit_id)
        if cycles is None:
            cycles = self.unit_decompress_latency(unit_id)
            if self.image is not None:
                cycles += sum(
                    self.hierarchy.target_read_cycles(
                        self.image.block(block_id).compressed_size
                    )
                    for block_id in self._unit_blocks[unit_id]
                )
            self._unit_fill_cache[unit_id] = cycles
        return cycles

    def replay_geometry(self) -> Dict[int, tuple]:
        """Per-unit geometry/timing table for the batched replay kernel.

        ``unit -> (alloc_bytes, fill_cycles, read_bytes, block_count,
        blocks_sorted)`` where ``alloc_bytes`` is the allocator-aligned
        decompressed footprint of the unit, ``fill_cycles`` matches
        :meth:`unit_fill_cycles` (the unit's own codec under a mixed
        assignment), and ``read_bytes`` is the burst-rounded target
        traffic one materialisation charges.  The table is memoized on
        the shared :class:`~repro.memory.image.CompressionArtifacts`
        keyed on (granularity, hierarchy), so every grid cell replaying
        the same program/codec pair reuses it.
        """
        assert self.image is not None
        artifacts = self.artifacts
        key = (self.config.granularity, self.config.hierarchy)
        table = artifacts.unit_timing.get(key)
        if table is None:
            align = self.image.allocator._align
            table = {}
            for unit_id, blocks in self._unit_blocks.items():
                blocks_sorted = tuple(sorted(blocks))
                alloc = 0
                read_bytes = 0
                for block_id in blocks_sorted:
                    image_block = self.image.block(block_id)
                    alloc += align(max(image_block.uncompressed_size, 1))
                    read_bytes += self.hierarchy.target_read_bytes(
                        image_block.compressed_size
                    )
                table[unit_id] = (
                    alloc,
                    self.unit_fill_cycles(unit_id),
                    read_bytes,
                    len(blocks_sorted),
                    blocks_sorted,
                )
            artifacts.unit_timing[key] = table
        return table

    def site_for(self, block_id: int) -> BranchSite:
        """The (memoized) terminator branch site of ``block_id``."""
        site = self._site_cache.get(block_id)
        if site is None:
            terminator_index = len(self.cfg.block(block_id)) - 1
            site = BranchSite(block_id, terminator_index)
            self._site_cache[block_id] = site
        return site

    def ready_at(self, unit_id: int) -> int:
        """Completion cycle of ``unit_id``'s (pre-)decompression."""
        return self._ready_at.get(unit_id, 0)

    def mark_ready(self, unit_id: int, cycle: int) -> None:
        """Record that ``unit_id`` is usable from ``cycle`` on."""
        self._ready_at[unit_id] = cycle

    def mark_used(self, unit_id: int) -> None:
        """A block of ``unit_id`` executed (for wasted-work accounting
        and budget recency)."""
        self._used_since_decompress[unit_id] = True
        if self.budget is not None:
            self.budget.on_unit_enter(unit_id)

    # ==================================================================
    # Footprint
    # ==================================================================

    def footprint_bytes(self) -> int:
        """Bytes of memory currently holding code."""
        if self.image is None:
            return self.cfg.total_size_bytes()
        return self.image.footprint_bytes

    def sample_footprint(self) -> None:
        """Record the current footprint on the timeline."""
        self.footprint.record(self.timing.now, self.footprint_bytes())

    # ==================================================================
    # Traffic accounting
    # ==================================================================

    def charge_uncompressed_entry(self, block_id: int) -> None:
        """Uncompressed system: every entry streams the block's full
        bytes from the target memory (Section 2 traffic model).

        Non-flat targets also charge their transfer latency here, so
        the uncompressed baseline pays for its target reads the same
        way materialisation does (zero under ``flat``).
        """
        nbytes = self.cfg.block(block_id).size_bytes
        self.counters.target_memory_bytes += (
            self.hierarchy.target_read_bytes(nbytes)
        )
        self.counters.target_memory_accesses += 1
        cycles = self.hierarchy.target_read_cycles(nbytes)
        if cycles:
            self.timing.stall(cycles, count_stall=False, kind="mem")

    # ==================================================================
    # Materialisation / release mechanics
    # ==================================================================

    def materialise_unit(self, unit_id: int) -> None:
        """Allocate and mark every block of ``unit_id`` decompressed."""
        assert self.image is not None
        for block_id in sorted(self._unit_blocks[unit_id]):
            self.image.decompress(block_id)
            # Materialise the actual bytes (discarding them): an
            # undecodable payload must fail on the executed path, not
            # only under verify_block.  The shared memo bounds the cost
            # to one decode per block per (cfg, codec) — repeated
            # faults, and other sweep cells, never re-run the codec.
            self.image.block_data(block_id)
            # Section 2 traffic model: materialisation streams the
            # compressed payload out of the target memory, in that
            # level's burst-rounded transactions (one access per block).
            self.counters.target_memory_bytes += (
                self.hierarchy.target_read_bytes(
                    self.image.block(block_id).compressed_size
                )
            )
            self.counters.target_memory_accesses += 1
        self.counters.decompressions += 1
        self._used_since_decompress[unit_id] = False
        if self.timing.tracer.enabled:
            self.timing.tracer.fill(
                self.timing.now, unit_id,
                self.unit_fill_cycles(unit_id),
            )
        if self.on_unit_decompressed is not None:
            self.on_unit_decompressed(unit_id)
        if self.budget is not None:
            self.budget.on_unit_decompressed(unit_id)

    def release_unit(self, unit_id: int, reason: EventKind) -> None:
        """Delete ``unit_id``'s decompressed copy (Section 5: cheap —
        drop the copy, patch the remembered branches).

        An in-flight pre-decompression job for the unit is cancelled
        with its unperformed work refunded, and the wasted-work counter
        is settled exactly once (the used-flag is popped, so a unit can
        never be counted wasted twice).
        """
        assert self.image is not None
        self._ready_at.pop(unit_id, None)
        self.timing.cancel_decompression(unit_id)
        patches = 0
        for block_id in sorted(self._unit_blocks[unit_id]):
            if self.image.is_resident(block_id):
                self.image.release(block_id)
            patches += len(self.remember.drop_target(block_id))
            self.remember.drop_sites_in_block(block_id)
        self.counters.patches += patches
        self.counters.recompressions += 1
        if not self._used_since_decompress.pop(unit_id, True):
            self.counters.wasted_decompressions += 1
        # Patching runs on the background compression thread.
        self.timing.schedule_patches(
            unit_id, self.config.patch_cycles * patches
        )
        if self.timing.tracer.enabled:
            self.timing.tracer.release(
                self.timing.now, unit_id, reason.name.lower(), patches
            )
        if self.on_unit_released is not None:
            self.on_unit_released(unit_id)
        if self.budget is not None:
            self.budget.on_unit_released(unit_id)
        self.log.emit(self.timing.now, reason, unit_id, patches)
        self.sample_footprint()

    def enforce_budget(self, unit_id: int, protected: Set[int]) -> None:
        """Evict units (LRU or configured policy) so ``unit_id`` fits."""
        if self.budget is None or self.image is None:
            return
        victims = self.budget.select_victims(
            needed_bytes=self.unit_uncompressed_size(unit_id),
            current_footprint=self.image.footprint_bytes,
            resident=self.resident_units(),
            protected=protected | {unit_id},
            size_of=self.unit_uncompressed_size,
        )
        for victim in victims:
            self.release_unit(victim, EventKind.EVICT)
            self.counters.evictions += 1

    def schedule_predecompression(
        self, block_id: int, protected: Set[int]
    ) -> None:
        """Queue ``block_id``'s unit on the decompression thread.

        Requests are shed when the thread's backlog is full — the block
        simply stays compressed and, if actually reached, faults on
        demand.
        """
        unit_id = self.unit_of(block_id)
        if self.is_unit_resident(unit_id):
            return
        if (
            self.timing.decompression_backlog()
            >= self.config.max_prefetch_backlog
        ):
            self.counters.dropped_prefetches += 1
            return
        self.enforce_budget(unit_id, protected=protected)
        self.materialise_unit(unit_id)
        job = self.timing.schedule_decompression(
            unit_id, self.unit_fill_cycles(unit_id)
        )
        self._ready_at[unit_id] = job.completes_at
        self.log.emit(
            self.timing.now, EventKind.DECOMPRESS_START, unit_id
        )
        self.sample_footprint()
