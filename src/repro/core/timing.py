"""The simulation's timing subsystem: one clock, one charging site.

:class:`TimingModel` owns the global cycle clock (``now``), the
execution-cycle tally, the two background workers of Figure 4, and every
mutation of the stall counters.  Before this subsystem existed the
manager charged fault and stall costs in three separate places; now
every penalty flows through :meth:`TimingModel.stall`, so the accounting
rules (when ``stall_cycles`` grows, when ``stalls`` increments) live in
exactly one method.

The model stays purely arithmetic — no real threads, no wall clock — so
simulations reproduce exactly on any machine.
"""

from __future__ import annotations

from ..obs.tracer import NULL_TRACER, Tracer
from ..runtime.metrics import Counters
from ..runtime.threads import BackgroundWorker, Job
from .config import SimulationConfig


class TimingModel:
    """Cycle clock + background-worker timelines + stall accounting.

    The execution thread advances the clock through
    :meth:`advance_execution`; every synchronous penalty (fault handler
    entry, synchronous decompression, waiting out an in-flight
    pre-decompression) goes through :meth:`stall`.  The decompression
    and compression workers share this clock, and
    :meth:`finalize` settles the optional contention charge at the end
    of a run.
    """

    def __init__(
        self,
        config: SimulationConfig,
        counters: Counters,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        self.config = config
        self.counters = counters
        self.tracer = tracer
        self.now = 0
        self.execution_cycles = 0
        self.decompress_worker = BackgroundWorker(
            "decompression", contention=config.contention
        )
        self.compress_worker = BackgroundWorker(
            "compression", contention=config.contention
        )

    # ------------------------------------------------------------------
    # Execution-thread time
    # ------------------------------------------------------------------

    def advance_execution(self, cycles: int) -> None:
        """The execution thread ran ``cycles`` of real work."""
        self.now += cycles
        self.execution_cycles += cycles

    def stall(
        self,
        cycles: int,
        *,
        count_stall: bool = True,
        kind: str = "decompress",
    ) -> None:
        """Charge the execution thread ``cycles`` of synchronous penalty.

        This is the single place ``now`` and ``stall_cycles`` grow for
        any fault/wait; ``count_stall=False`` charges the cycles without
        counting a discrete stall event (patch-only faults).  ``kind``
        attributes the cycles for tracing (one of
        :data:`repro.obs.tracer.STALL_KINDS`); callers that are not the
        decompression path must say which phase they are charging.
        """
        if self.tracer.enabled:
            self.tracer.stall(self.now, cycles, kind, count_stall)
        self.now += cycles
        self.counters.stall_cycles += cycles
        if count_stall:
            self.counters.stalls += 1

    def wait_until(self, ready_at: int) -> int:
        """Stall until ``ready_at`` if it is in the future.

        Returns the cycles waited (0 when already ready; nothing is
        charged in that case).
        """
        if ready_at <= self.now:
            return 0
        remainder = ready_at - self.now
        self.stall(remainder)
        return remainder

    # ------------------------------------------------------------------
    # Background workers
    # ------------------------------------------------------------------

    def schedule_decompression(self, unit_id: int, latency: int) -> Job:
        """Queue a background decompression; returns the worker job."""
        job = self.decompress_worker.schedule(self.now, unit_id, latency)
        self.counters.background_decompress_cycles += job.latency
        if self.tracer.enabled:
            self.tracer.worker_job(
                "decompression", unit_id, job.scheduled_at,
                job.started_at, job.completes_at,
            )
        return job

    def cancel_decompression(self, unit_id: int) -> None:
        """Cancel a pending decompression, refunding unperformed work."""
        if self.tracer.enabled:
            self.tracer.worker_cancel(
                self.now, "decompression", unit_id
            )
        self.decompress_worker.cancel(unit_id, self.now)

    def retire_decompressions(self) -> None:
        """Retire decompression jobs completed by ``now``."""
        self.decompress_worker.retire_completed(self.now)

    def schedule_patches(self, unit_id: int, cycles: int) -> None:
        """Queue branch patching on the background compression thread."""
        job = self.compress_worker.schedule(self.now, unit_id, cycles)
        if self.tracer.enabled:
            self.tracer.worker_job(
                "compression", unit_id, job.scheduled_at,
                job.started_at, job.completes_at,
            )
        self.compress_worker.retire_completed(self.now)

    def decompression_backlog(self) -> int:
        """Outstanding jobs on the decompression worker."""
        return self.decompress_worker.backlog()

    # ------------------------------------------------------------------
    # Bulk fast-forward (batched trace replay)
    # ------------------------------------------------------------------

    def absorb_replay(
        self,
        now: int,
        execution_delta: int,
        stall_cycles_delta: int,
        stalls_delta: int,
    ) -> None:
        """Absorb a batched replay's aggregate time accounting.

        The batched kernel (:mod:`repro.core.replay`) accumulates
        execution and stall cycles in local integers; this applies the
        whole run's totals in one call, landing on exactly the state a
        per-block sequence of :meth:`advance_execution`/:meth:`stall`
        calls would have produced.  Only ungated (tracer-off) replays
        use it, so no per-stall tracer hooks are skipped.
        """
        self.now = now
        self.execution_cycles += execution_delta
        self.counters.stall_cycles += stall_cycles_delta
        self.counters.stalls += stalls_delta

    # ------------------------------------------------------------------
    # End of run
    # ------------------------------------------------------------------

    def finalize(self) -> None:
        """Settle contention and the background-compression tally.

        Contention models a shared single-issue core: a configured
        fraction of every busy background cycle is charged to the
        execution thread, as one final stall-cycle block.
        """
        contention = (
            self.decompress_worker.contention_cycles()
            + self.compress_worker.contention_cycles()
        )
        if contention:
            self.stall(
                contention, count_stall=False, kind="contention"
            )
        self.counters.background_compress_cycles = (
            self.compress_worker.busy_cycles
        )
