"""Simulation configuration.

One :class:`SimulationConfig` fully determines a run (given a program):
codec, compression/decompression strategies and their k parameters,
granularity, memory budget, and the cost model.  Configs are immutable;
:meth:`SimulationConfig.replace` derives variants for parameter sweeps.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

from ..cfg.profile import EdgeProfile
from ..compress.codec import CodecError, resolve_codec_spec
from ..memory.hierarchy import HIERARCHIES
from ..selection.assignment import AssignmentError, validate_assignment
from ..strategies.base import STRATEGIES
from ..strategies.predictor import available_predictors

#: Decompression strategy names (Figure 3's design space plus the
#: uncompressed baseline).  Sourced from the unified registry so
#: externally registered strategies are accepted; the tuple is a
#: snapshot for display — validation checks the live registry.
DECOMPRESSION_STRATEGIES = tuple(STRATEGIES.names(sort=False))

#: Compression-unit granularities (paper vs. Debray-Evans baseline).
GRANULARITIES = ("block", "function")

#: Memory image schemes (paper's separate area vs. naive in-place).
IMAGE_SCHEMES = ("separate", "inplace")

#: Budget eviction policies.
EVICTION_POLICIES = ("lru", "fifo", "largest")


class ConfigError(ValueError):
    """Raised for inconsistent configuration values."""


@dataclass(frozen=True)
class SimulationConfig:
    """Everything a simulation run needs besides the program itself.

    Attributes:
        codec: registered codec name ("lzw", "huffman", "dictionary",
            "lz77", "rle", "mtf-rle", "null") or a layered pipeline
            spec — compact ``"delta|huffman"`` or JSON
            ``{"layers": [...], "entropy": "lzw"}`` form (see
            :mod:`repro.compress.pipeline`).  Pipeline specs are
            canonicalized to the compact form on construction.
        decompression: "ondemand", "pre-all", "pre-single", or "none"
            (the never-compressed baseline that skips the image entirely).
        k_compress: the compression-side k of the k-edge algorithm;
            ``None`` means never recompress (k = infinity).
        k_decompress: the decompression-side k (pre-decompression
            distance); ignored by "ondemand"/"none".
        predictor: predictor for pre-decompress-single.
        profile: offline edge profile, required by the "static-profile"
            predictor.
        granularity: "block" (the paper) or "function" (Debray-Evans
            baseline).
        memory_budget: optional cap in bytes on the total code footprint
            (compressed area + decompressed copies), Section 2 mode.
        eviction: victim selection under the budget ("lru", "fifo",
            "largest").
        image_scheme: "separate" (paper, Section 5) or "inplace" (E8
            comparison).
        hierarchy: named memory-hierarchy preset (see
            :mod:`repro.memory.hierarchy`); "flat" reproduces the seed
            cost model exactly, "spm-front"/"two-level-dram" add real
            target-memory geometry (burst rounding, bus latency,
            per-level energy).
        assignment: per-unit codec-assignment policy spec (see
            :mod:`repro.selection`); "uniform" (the default, byte-
            identical to single-codec behaviour), "hotness-threshold"
            (hot units stay uncompressed), or "knapsack" (cycles-saved
            maximisation under a compressed-size budget).  Specs accept
            colon parameters, e.g. "knapsack:0.9",
            "hotness-threshold:0.25:rle".
        fault_cycles: exception-handler entry/exit cost charged on every
            memory-protection fault (full faults and patch-only faults).
        patch_cycles: background cycles per branch patch performed by the
            compression thread.
        contention: fraction of background-thread busy cycles charged to
            the execution thread (0 = ideal parallel threads).
        max_prefetch_backlog: pre-decompression requests are dropped while
            the decompression thread already has this many jobs queued
            (real prefetchers shed load instead of queueing unboundedly;
            a dropped request simply faults on demand later).
        trace_events: keep the event log (disable for large sweeps).
        record_trace: keep the executed block-id sequence in the result.
        data_words: machine data memory size in 32-bit words.
        max_steps: instruction budget guard against runaway kernels.
        label: optional human-readable name shown in reports.
    """

    codec: str = "shared-dict"
    decompression: str = "ondemand"
    k_compress: Optional[int] = 2
    k_decompress: int = 2
    predictor: str = "online-profile"
    profile: Optional[EdgeProfile] = None
    granularity: str = "block"
    memory_budget: Optional[int] = None
    eviction: str = "lru"
    image_scheme: str = "separate"
    hierarchy: str = "flat"
    assignment: str = "uniform"
    fault_cycles: int = 50
    patch_cycles: int = 4
    contention: float = 0.0
    max_prefetch_backlog: int = 4
    trace_events: bool = True
    record_trace: bool = True
    data_words: int = 1 << 16
    max_steps: int = 50_000_000
    label: Optional[str] = None

    def __post_init__(self) -> None:
        # Accept flat codec names and layered pipeline specs (compact
        # or JSON form); the field is canonicalized in place so two
        # spellings of the same pipeline produce equal configs — and
        # therefore equal store fingerprints.
        try:
            canonical = resolve_codec_spec(self.codec)
        except CodecError as exc:
            raise ConfigError(str(exc)) from None
        if canonical != self.codec:
            object.__setattr__(self, "codec", canonical)
        if self.decompression not in STRATEGIES:
            raise ConfigError(
                f"unknown decompression strategy '{self.decompression}'; "
                f"available: {tuple(STRATEGIES.names(sort=False))}"
            )
        if self.k_compress is not None and self.k_compress < 1:
            raise ConfigError(
                f"k_compress must be >= 1 or None, got {self.k_compress}"
            )
        if self.k_decompress < 1:
            raise ConfigError(
                f"k_decompress must be >= 1, got {self.k_decompress}"
            )
        if self.predictor not in available_predictors():
            raise ConfigError(
                f"unknown predictor '{self.predictor}'; "
                f"available: {available_predictors()}"
            )
        if self.predictor == "static-profile" and self.profile is None \
                and self.decompression == "pre-single":
            raise ConfigError(
                "static-profile predictor requires an offline profile"
            )
        if self.granularity not in GRANULARITIES:
            raise ConfigError(
                f"unknown granularity '{self.granularity}'; "
                f"available: {GRANULARITIES}"
            )
        if self.memory_budget is not None and self.memory_budget <= 0:
            raise ConfigError(
                f"memory_budget must be positive, got {self.memory_budget}"
            )
        if self.eviction not in EVICTION_POLICIES:
            raise ConfigError(
                f"unknown eviction policy '{self.eviction}'; "
                f"available: {EVICTION_POLICIES}"
            )
        if self.image_scheme not in IMAGE_SCHEMES:
            raise ConfigError(
                f"unknown image scheme '{self.image_scheme}'; "
                f"available: {IMAGE_SCHEMES}"
            )
        if self.hierarchy not in HIERARCHIES:
            raise ConfigError(
                f"unknown memory hierarchy '{self.hierarchy}'; "
                f"available: {tuple(HIERARCHIES.names(sort=False))}"
            )
        try:
            validate_assignment(self.assignment)
        except AssignmentError as exc:
            raise ConfigError(str(exc)) from None
        if self.fault_cycles < 0 or self.patch_cycles < 0:
            raise ConfigError("cycle costs must be non-negative")
        if not 0.0 <= self.contention <= 1.0:
            raise ConfigError(
                f"contention must be in [0, 1], got {self.contention}"
            )
        if self.max_prefetch_backlog < 1:
            raise ConfigError(
                f"max_prefetch_backlog must be >= 1, got "
                f"{self.max_prefetch_backlog}"
            )

    def replace(self, **changes) -> "SimulationConfig":
        """Return a copy with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)

    @property
    def strategy_name(self) -> str:
        """Readable strategy description used in results and reports."""
        if self.label:
            return self.label
        if self.decompression == "none":
            return "uncompressed"
        kc = "inf" if self.k_compress is None else str(self.k_compress)
        name = f"{self.decompression}/kc={kc}"
        if self.decompression in ("pre-all", "pre-single"):
            name += f"/kd={self.k_decompress}"
        if self.decompression == "pre-single":
            name += f"/{self.predictor}"
        if self.granularity != "block":
            name += f"/{self.granularity}"
        if self.memory_budget is not None:
            name += f"/budget={self.memory_budget}"
        if self.hierarchy != "flat":
            name += f"/{self.hierarchy}"
        if self.assignment != "uniform":
            # Mark profile-less selective runs: the policy then ranks
            # units by the static loop-nesting estimate, which is a
            # different input than a recorded profile — rows must never
            # look silently comparable across the two.
            name += f"/{self.assignment}"
            if self.profile is None:
                name += "[static]"
        return name
