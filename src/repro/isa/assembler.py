"""Two-pass text assembler for the target ISA.

The accepted syntax is a conventional assembly dialect::

    ; comments start with ';' or '#'
    main:
        li   r1, 100
    loop:
        subi r1, r1, 1
        bne  r1, r0, loop
        halt

Operand forms:

* registers: ``r0`` .. ``r15``, plus aliases ``sp`` (r13) and ``ra`` (r15);
* immediates: decimal or ``0x`` hexadecimal, optionally negative;
* memory operands: ``imm(rN)`` for ``ld``/``st``;
* branch targets: label names.

The assembler produces a linked :class:`~repro.isa.program.Program`.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from .instructions import (
    CONDITIONAL_BRANCHES,
    REG_IMM_OPS,
    REG_REG_OPS,
    Instruction,
    Opcode,
    RA,
    SP,
)
from .program import Program, ProgramBuilder, ProgramError


class AssemblyError(ProgramError):
    """Raised on a syntax or semantic error, with line information."""

    def __init__(self, message: str, line_number: int, line: str) -> None:
        super().__init__(f"line {line_number}: {message}: '{line.strip()}'")
        self.line_number = line_number
        self.line = line


_REGISTER_ALIASES = {"sp": SP, "ra": RA}
_MEM_OPERAND = re.compile(r"^(-?(?:0x[0-9a-fA-F]+|\d+))\(\s*(\w+)\s*\)$")
_LABEL_DEF = re.compile(r"^([A-Za-z_.$][\w.$]*):\s*(.*)$")
_MNEMONIC_ALIASES = {"and": "and_", "or": "or_"}

_OPCODES_BY_NAME: Dict[str, Opcode] = {op.name.lower(): op for op in Opcode}


def _parse_register(token: str, line_number: int, line: str) -> int:
    token = token.strip().lower()
    if token in _REGISTER_ALIASES:
        return _REGISTER_ALIASES[token]
    if token.startswith("r") and token[1:].isdigit():
        index = int(token[1:])
        if 0 <= index < 16:
            return index
    raise AssemblyError(f"bad register '{token}'", line_number, line)


def _parse_immediate(token: str, line_number: int, line: str) -> int:
    token = token.strip()
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblyError(
            f"bad immediate '{token}'", line_number, line
        ) from None


def _split_operands(rest: str) -> List[str]:
    rest = rest.strip()
    if not rest:
        return []
    return [part.strip() for part in rest.split(",")]


def _parse_instruction(
    mnemonic: str, operands: List[str], line_number: int, line: str
) -> Instruction:
    opcode = _OPCODES_BY_NAME.get(mnemonic)
    if opcode is None:
        raise AssemblyError(f"unknown mnemonic '{mnemonic}'", line_number,
                            line)

    def need(count: int) -> None:
        if len(operands) != count:
            raise AssemblyError(
                f"'{mnemonic}' expects {count} operand(s), got "
                f"{len(operands)}",
                line_number,
                line,
            )

    if opcode in REG_REG_OPS:
        need(3)
        return Instruction(
            opcode,
            rd=_parse_register(operands[0], line_number, line),
            rs1=_parse_register(operands[1], line_number, line),
            rs2=_parse_register(operands[2], line_number, line),
        )
    if opcode in REG_IMM_OPS:
        need(3)
        return Instruction(
            opcode,
            rd=_parse_register(operands[0], line_number, line),
            rs1=_parse_register(operands[1], line_number, line),
            imm=_parse_immediate(operands[2], line_number, line),
        )
    if opcode in (Opcode.LI, Opcode.LUI):
        need(2)
        return Instruction(
            opcode,
            rd=_parse_register(operands[0], line_number, line),
            imm=_parse_immediate(operands[1], line_number, line),
        )
    if opcode is Opcode.MOV:
        need(2)
        return Instruction(
            opcode,
            rd=_parse_register(operands[0], line_number, line),
            rs1=_parse_register(operands[1], line_number, line),
        )
    if opcode in (Opcode.LD, Opcode.ST):
        need(2)
        match = _MEM_OPERAND.match(operands[1].replace(" ", ""))
        if not match:
            raise AssemblyError(
                f"bad memory operand '{operands[1]}'", line_number, line
            )
        imm = _parse_immediate(match.group(1), line_number, line)
        base = _parse_register(match.group(2), line_number, line)
        moved = _parse_register(operands[0], line_number, line)
        if opcode is Opcode.LD:
            return Instruction(opcode, rd=moved, rs1=base, imm=imm)
        return Instruction(opcode, rs2=moved, rs1=base, imm=imm)
    if opcode in CONDITIONAL_BRANCHES:
        need(3)
        return Instruction(
            opcode,
            rs1=_parse_register(operands[0], line_number, line),
            rs2=_parse_register(operands[1], line_number, line),
            target=operands[2],
        )
    if opcode in (Opcode.JMP, Opcode.CALL):
        need(1)
        return Instruction(opcode, target=operands[0])
    # NOP / RET / HALT
    need(0)
    return Instruction(opcode)


def assemble(
    source: str, name: str = "program", entry_label: str = "main"
) -> Program:
    """Assemble ``source`` text into a linked :class:`Program`.

    Raises :class:`AssemblyError` with line information on any malformed
    input, and :class:`~repro.isa.program.ProgramError` for program-level
    problems (missing entry label, undefined branch target).
    """
    builder = ProgramBuilder(name, entry_label=entry_label)
    for line_number, raw_line in enumerate(source.splitlines(), start=1):
        line = raw_line.split(";")[0].split("#")[0].strip()
        while line:
            label_match = _LABEL_DEF.match(line)
            if label_match:
                try:
                    builder.label(label_match.group(1))
                except ProgramError as exc:
                    raise AssemblyError(str(exc), line_number, raw_line) \
                        from exc
                line = label_match.group(2).strip()
                continue
            parts = line.split(None, 1)
            mnemonic = parts[0].lower()
            rest = parts[1] if len(parts) > 1 else ""
            operands = _split_operands(rest)
            builder.emit(
                _parse_instruction(mnemonic, operands, line_number, raw_line)
            )
            line = ""
    return builder.build()


def disassemble_to_source(program: Program) -> str:
    """Render ``program`` back into assembler-accepted text.

    Branch targets are rendered as labels where the program defines one at
    the destination, otherwise as synthesised ``.addr_<hex>`` labels.  The
    output re-assembles into an equivalent program (used for round-trip
    tests).
    """
    index_labels: Dict[int, str] = {}
    for label, index in program.labels.items():
        index_labels.setdefault(index, label)

    # Synthesise labels for branch destinations lacking one.
    for instr in program.instructions:
        if instr.is_branch:
            index = program.index_of_address(instr.imm)
            index_labels.setdefault(index, f".addr_{instr.imm:x}")

    lines: List[str] = []
    for index, instr in enumerate(program.instructions):
        if index in index_labels:
            lines.append(f"{index_labels[index]}:")
        if instr.is_branch:
            dest = index_labels[program.index_of_address(instr.imm)]
            if instr.is_conditional:
                lines.append(
                    f"    {instr.opcode.name.lower()} r{instr.rs1}, "
                    f"r{instr.rs2}, {dest}"
                )
            else:
                lines.append(f"    {instr.opcode.name.lower()} {dest}")
        else:
            lines.append(f"    {instr.render()}")
    return "\n".join(lines) + "\n"
