"""Instruction set definition for the embedded target machine.

The paper assumes an embedded CPU executing a conventional binary but never
pins down the ISA.  We define a small 32-bit fixed-width RISC-like ISA that
captures everything the compression study needs:

* fixed 4-byte instructions (so block sizes are proportional to instruction
  counts, as on ARM/MIPS targets the paper cites);
* explicit branch instructions whose encoded target addresses must be patched
  when a basic block moves between its compressed and decompressed locations
  (Section 5 of the paper);
* enough arithmetic/memory operations to write realistic embedded kernels.

Registers are named ``r0`` .. ``r15``.  By convention (enforced only by the
kernels, not the hardware):

* ``r13`` is the stack pointer (``sp``),
* ``r15`` is the link register (``ra``) written by ``CALL``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional

#: Number of general-purpose registers.
NUM_REGISTERS = 16

#: Size of every encoded instruction in bytes (fixed-width ISA).
INSTRUCTION_SIZE = 4

#: Conventional stack-pointer register index.
SP = 13

#: Conventional link-register index (written by CALL, read by RET).
RA = 15


class Opcode(enum.IntEnum):
    """Operation codes of the target ISA.

    The integer values are the encoded opcode bytes and are part of the
    binary format; do not renumber existing entries.
    """

    NOP = 0x00

    # Register-register ALU operations: rd <- rs1 op rs2
    ADD = 0x01
    SUB = 0x02
    MUL = 0x03
    DIV = 0x04
    MOD = 0x05
    AND = 0x06
    OR = 0x07
    XOR = 0x08
    SHL = 0x09
    SHR = 0x0A
    SLT = 0x0B  # rd <- 1 if rs1 < rs2 else 0 (signed)

    # Register-immediate ALU operations: rd <- rs1 op imm
    ADDI = 0x10
    SUBI = 0x11
    MULI = 0x12
    ANDI = 0x13
    ORI = 0x14
    XORI = 0x15
    SHLI = 0x16
    SHRI = 0x17
    SLTI = 0x18

    # Data movement
    LI = 0x20    # rd <- sign-extended 16-bit immediate
    LUI = 0x21   # rd <- imm << 16
    MOV = 0x22   # rd <- rs1

    # Memory access (word-granular data memory, byte addressed)
    LD = 0x30    # rd <- mem[rs1 + imm]
    ST = 0x31    # mem[rs1 + imm] <- rs2

    # Control flow (all are basic-block terminators except CALL)
    BEQ = 0x40   # if rs1 == rs2 goto target
    BNE = 0x41
    BLT = 0x42   # signed <
    BGE = 0x43   # signed >=
    JMP = 0x48   # unconditional goto target
    CALL = 0x49  # ra <- return address; goto target
    RET = 0x4A   # goto ra
    HALT = 0x4F


#: Opcodes taking rd, rs1, rs2.
REG_REG_OPS = frozenset(
    {
        Opcode.ADD,
        Opcode.SUB,
        Opcode.MUL,
        Opcode.DIV,
        Opcode.MOD,
        Opcode.AND,
        Opcode.OR,
        Opcode.XOR,
        Opcode.SHL,
        Opcode.SHR,
        Opcode.SLT,
    }
)

#: Opcodes taking rd, rs1, imm.
REG_IMM_OPS = frozenset(
    {
        Opcode.ADDI,
        Opcode.SUBI,
        Opcode.MULI,
        Opcode.ANDI,
        Opcode.ORI,
        Opcode.XORI,
        Opcode.SHLI,
        Opcode.SHRI,
        Opcode.SLTI,
    }
)

#: Conditional branch opcodes (two register sources + target).
CONDITIONAL_BRANCHES = frozenset(
    {Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE}
)

#: All opcodes that carry an encoded code address that must be patched when
#: the destination block is relocated.
BRANCH_OPS = CONDITIONAL_BRANCHES | {Opcode.JMP, Opcode.CALL}

#: Opcodes that terminate a basic block (control may not fall through, or may
#: fall through only as one of two successors).
BLOCK_TERMINATORS = CONDITIONAL_BRANCHES | {
    Opcode.JMP,
    Opcode.RET,
    Opcode.HALT,
}


class CycleCosts:
    """Per-instruction base cycle costs charged by the machine.

    Values follow a simple in-order embedded core model: single-cycle ALU,
    two-cycle memory, two-cycle taken control flow, multi-cycle multiply and
    divide.
    """

    ALU = 1
    MUL = 3
    DIV = 8
    MEM = 2
    BRANCH = 2
    CALL = 2
    RET = 2
    HALT = 1
    DEFAULT = 1

    _TABLE = {
        Opcode.MUL: MUL,
        Opcode.MULI: MUL,
        Opcode.DIV: DIV,
        Opcode.MOD: DIV,
        Opcode.LD: MEM,
        Opcode.ST: MEM,
        Opcode.BEQ: BRANCH,
        Opcode.BNE: BRANCH,
        Opcode.BLT: BRANCH,
        Opcode.BGE: BRANCH,
        Opcode.JMP: BRANCH,
        Opcode.CALL: CALL,
        Opcode.RET: RET,
        Opcode.HALT: HALT,
    }

    @classmethod
    def cost(cls, opcode: Opcode) -> int:
        """Return the base cycle cost of ``opcode``."""
        return cls._TABLE.get(opcode, cls.DEFAULT)


@dataclass(frozen=True)
class Instruction:
    """A single decoded instruction.

    ``target`` holds a *label name* between assembly and link time, and is
    resolved to a byte address stored in ``imm`` when the program is laid
    out.  After resolution ``target`` is kept for readability in traces.
    """

    opcode: Opcode
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0
    target: Optional[str] = None

    def __post_init__(self) -> None:
        for name in ("rd", "rs1", "rs2"):
            value = getattr(self, name)
            if not 0 <= value < NUM_REGISTERS:
                raise ValueError(
                    f"register operand {name}={value} out of range "
                    f"[0, {NUM_REGISTERS})"
                )
        if not -(1 << 31) <= self.imm < (1 << 31):
            raise ValueError(f"immediate {self.imm} does not fit in 32 bits")

    @property
    def is_branch(self) -> bool:
        """True if this instruction carries a patchable code address."""
        return self.opcode in BRANCH_OPS

    @property
    def is_conditional(self) -> bool:
        """True for the conditional branch opcodes."""
        return self.opcode in CONDITIONAL_BRANCHES

    @property
    def is_terminator(self) -> bool:
        """True if this instruction ends a basic block."""
        return self.opcode in BLOCK_TERMINATORS

    @property
    def cycles(self) -> int:
        """Base cycle cost of executing this instruction."""
        return CycleCosts.cost(self.opcode)

    def with_imm(self, imm: int) -> "Instruction":
        """Return a copy with ``imm`` replaced (used by the linker/patcher)."""
        return replace(self, imm=imm)

    def render(self) -> str:
        """Render a human-readable assembly form of this instruction."""
        op = self.opcode.name.lower()
        if self.opcode in REG_REG_OPS:
            return f"{op} r{self.rd}, r{self.rs1}, r{self.rs2}"
        if self.opcode in REG_IMM_OPS:
            return f"{op} r{self.rd}, r{self.rs1}, {self.imm}"
        if self.opcode in (Opcode.LI, Opcode.LUI):
            return f"{op} r{self.rd}, {self.imm}"
        if self.opcode is Opcode.MOV:
            return f"{op} r{self.rd}, r{self.rs1}"
        if self.opcode is Opcode.LD:
            return f"{op} r{self.rd}, {self.imm}(r{self.rs1})"
        if self.opcode is Opcode.ST:
            return f"{op} r{self.rs2}, {self.imm}(r{self.rs1})"
        if self.opcode in CONDITIONAL_BRANCHES:
            dest = self.target if self.target is not None else hex(self.imm)
            return f"{op} r{self.rs1}, r{self.rs2}, {dest}"
        if self.opcode in (Opcode.JMP, Opcode.CALL):
            dest = self.target if self.target is not None else hex(self.imm)
            return f"{op} {dest}"
        return op

    def __str__(self) -> str:  # pragma: no cover - convenience alias
        return self.render()


def _reg_reg(opcode: Opcode):
    def build(rd: int, rs1: int, rs2: int) -> Instruction:
        return Instruction(opcode, rd=rd, rs1=rs1, rs2=rs2)

    build.__name__ = opcode.name.lower()
    build.__doc__ = f"Build a ``{opcode.name}`` instruction."
    return build


def _reg_imm(opcode: Opcode):
    def build(rd: int, rs1: int, imm: int) -> Instruction:
        return Instruction(opcode, rd=rd, rs1=rs1, imm=imm)

    build.__name__ = opcode.name.lower()
    build.__doc__ = f"Build a ``{opcode.name}`` instruction."
    return build


# Convenience constructors used by hand-written kernels and tests.  They make
# kernel sources read close to assembly without going through text parsing.
add = _reg_reg(Opcode.ADD)
sub = _reg_reg(Opcode.SUB)
mul = _reg_reg(Opcode.MUL)
div = _reg_reg(Opcode.DIV)
mod = _reg_reg(Opcode.MOD)
and_ = _reg_reg(Opcode.AND)
or_ = _reg_reg(Opcode.OR)
xor = _reg_reg(Opcode.XOR)
shl = _reg_reg(Opcode.SHL)
shr = _reg_reg(Opcode.SHR)
slt = _reg_reg(Opcode.SLT)

addi = _reg_imm(Opcode.ADDI)
subi = _reg_imm(Opcode.SUBI)
muli = _reg_imm(Opcode.MULI)
andi = _reg_imm(Opcode.ANDI)
ori = _reg_imm(Opcode.ORI)
xori = _reg_imm(Opcode.XORI)
shli = _reg_imm(Opcode.SHLI)
shri = _reg_imm(Opcode.SHRI)
slti = _reg_imm(Opcode.SLTI)


def li(rd: int, imm: int) -> Instruction:
    """Build an ``LI`` (load immediate) instruction."""
    return Instruction(Opcode.LI, rd=rd, imm=imm)


def lui(rd: int, imm: int) -> Instruction:
    """Build an ``LUI`` (load upper immediate) instruction."""
    return Instruction(Opcode.LUI, rd=rd, imm=imm)


def mov(rd: int, rs1: int) -> Instruction:
    """Build a ``MOV`` instruction."""
    return Instruction(Opcode.MOV, rd=rd, rs1=rs1)


def ld(rd: int, rs1: int, imm: int = 0) -> Instruction:
    """Build an ``LD`` (load word) instruction: ``rd <- mem[rs1 + imm]``."""
    return Instruction(Opcode.LD, rd=rd, rs1=rs1, imm=imm)


def st(rs2: int, rs1: int, imm: int = 0) -> Instruction:
    """Build an ``ST`` (store word) instruction: ``mem[rs1 + imm] <- rs2``."""
    return Instruction(Opcode.ST, rs1=rs1, rs2=rs2, imm=imm)


def beq(rs1: int, rs2: int, target: str) -> Instruction:
    """Build a ``BEQ`` instruction branching to label ``target``."""
    return Instruction(Opcode.BEQ, rs1=rs1, rs2=rs2, target=target)


def bne(rs1: int, rs2: int, target: str) -> Instruction:
    """Build a ``BNE`` instruction branching to label ``target``."""
    return Instruction(Opcode.BNE, rs1=rs1, rs2=rs2, target=target)


def blt(rs1: int, rs2: int, target: str) -> Instruction:
    """Build a ``BLT`` instruction branching to label ``target``."""
    return Instruction(Opcode.BLT, rs1=rs1, rs2=rs2, target=target)


def bge(rs1: int, rs2: int, target: str) -> Instruction:
    """Build a ``BGE`` instruction branching to label ``target``."""
    return Instruction(Opcode.BGE, rs1=rs1, rs2=rs2, target=target)


def jmp(target: str) -> Instruction:
    """Build a ``JMP`` instruction to label ``target``."""
    return Instruction(Opcode.JMP, target=target)


def call(target: str) -> Instruction:
    """Build a ``CALL`` instruction to label ``target``."""
    return Instruction(Opcode.CALL, target=target)


def ret() -> Instruction:
    """Build a ``RET`` instruction."""
    return Instruction(Opcode.RET)


def halt() -> Instruction:
    """Build a ``HALT`` instruction."""
    return Instruction(Opcode.HALT)


def nop() -> Instruction:
    """Build a ``NOP`` instruction."""
    return Instruction(Opcode.NOP)
