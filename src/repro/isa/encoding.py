"""Binary encoding and decoding of instructions.

Every instruction encodes to exactly :data:`~repro.isa.instructions.INSTRUCTION_SIZE`
bytes laid out big-endian as::

    byte 0: opcode
    byte 1: (rd << 4) | rs1
    byte 2..3: 16-bit field

The 16-bit field carries, depending on the opcode class:

* ``rs2`` in the low nibble of byte 3 for register-register ALU ops;
* a signed 16-bit immediate for immediate ALU ops, loads and stores;
* an unsigned 16-bit *code byte address* for branch/jump/call targets.

The compressors in :mod:`repro.compress` operate on these encoded bytes, so
the encoding deliberately mirrors real RISC encodings: heavily repeated
opcode bytes and register nibbles produce the redundancy that dictionary and
entropy coders exploit on real binaries.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from .instructions import (
    BRANCH_OPS,
    INSTRUCTION_SIZE,
    REG_IMM_OPS,
    REG_REG_OPS,
    Instruction,
    Opcode,
)


class EncodingError(ValueError):
    """Raised when an instruction cannot be encoded or bytes decoded."""


#: Maximum encodable code address (branch targets are unsigned 16-bit).
MAX_CODE_ADDRESS = 0xFFFF

# Logical immediates are zero-extended (as on MIPS/RISC-V); arithmetic
# immediates, loads/stores and LI are sign-extended.
_UNSIGNED_IMM_OPS = frozenset({Opcode.ANDI, Opcode.ORI, Opcode.XORI})
_SIGNED_IMM_OPS = (
    (REG_IMM_OPS - _UNSIGNED_IMM_OPS) | {Opcode.LI, Opcode.LD, Opcode.ST}
)

# Opcodes whose rd nibble carries rs2 (they have no destination register).
from .instructions import CONDITIONAL_BRANCHES as _COND

_RS2_IN_RD_OPS = frozenset(_COND | {Opcode.ST})


def _check_signed16(value: int, instr: Instruction) -> int:
    if not -(1 << 15) <= value < (1 << 15):
        raise EncodingError(
            f"immediate {value} of '{instr.render()}' does not fit in a "
            f"signed 16-bit field"
        )
    return value & 0xFFFF


def _check_unsigned16(value: int, instr: Instruction) -> int:
    if not 0 <= value <= MAX_CODE_ADDRESS:
        raise EncodingError(
            f"address {value} of '{instr.render()}' does not fit in an "
            f"unsigned 16-bit field"
        )
    return value


def encode_instruction(instr: Instruction) -> bytes:
    """Encode ``instr`` into its 4-byte binary form.

    Branch instructions must already have their label resolved into ``imm``
    (the assembler does this); encoding an unresolved branch raises
    :class:`EncodingError`.
    """
    opcode = instr.opcode
    if opcode in BRANCH_OPS:
        if instr.target is not None and instr.imm == 0 and instr.target != "":
            # Resolved branches keep .target for readability; imm==0 with a
            # target is legitimate only when the target really is address 0,
            # which the assembler never produces (address 0 is the entry
            # label itself, never branched to before layout).  We accept it:
            # the assembler guarantees resolution, this guard documents it.
            pass
        field = _check_unsigned16(instr.imm, instr)
    elif opcode in _SIGNED_IMM_OPS:
        field = _check_signed16(instr.imm, instr)
    elif opcode in _UNSIGNED_IMM_OPS or opcode is Opcode.LUI:
        if not 0 <= instr.imm <= 0xFFFF:
            raise EncodingError(
                f"{opcode.name} immediate {instr.imm} must be unsigned "
                f"16-bit"
            )
        field = instr.imm
    elif opcode in REG_REG_OPS:
        field = instr.rs2 & 0xF
    else:
        field = 0

    # Conditional branches and stores have no destination register, so the
    # rd nibble carries rs2 instead (keeping the fixed 4-byte format).
    if opcode in _RS2_IN_RD_OPS:
        high_nibble = instr.rs2 & 0xF
    else:
        high_nibble = instr.rd & 0xF
    return bytes(
        (
            opcode & 0xFF,
            (high_nibble << 4) | (instr.rs1 & 0xF),
            (field >> 8) & 0xFF,
            field & 0xFF,
        )
    )


def decode_instruction(data: bytes, offset: int = 0) -> Instruction:
    """Decode one instruction from ``data`` starting at ``offset``."""
    if len(data) - offset < INSTRUCTION_SIZE:
        raise EncodingError(
            f"truncated instruction at offset {offset}: need "
            f"{INSTRUCTION_SIZE} bytes, have {len(data) - offset}"
        )
    raw_opcode = data[offset]
    try:
        opcode = Opcode(raw_opcode)
    except ValueError as exc:
        raise EncodingError(
            f"unknown opcode byte 0x{raw_opcode:02x} at offset {offset}"
        ) from exc

    rd = (data[offset + 1] >> 4) & 0xF
    rs1 = data[offset + 1] & 0xF
    field = (data[offset + 2] << 8) | data[offset + 3]

    rs2 = 0
    imm = 0
    if opcode in REG_REG_OPS:
        rs2 = field & 0xF
    elif (
        opcode in BRANCH_OPS
        or opcode is Opcode.LUI
        or opcode in _UNSIGNED_IMM_OPS
    ):
        imm = field
    elif opcode in _SIGNED_IMM_OPS:
        imm = field - 0x10000 if field >= 0x8000 else field
    # Conditional branches and stores pack rs2 into the rd nibble.
    if opcode in _RS2_IN_RD_OPS:
        rs2 = rd
        rd = 0
    return Instruction(opcode, rd=rd, rs1=rs1, rs2=rs2, imm=imm)


def encode_program(instructions: Sequence[Instruction]) -> bytes:
    """Encode a sequence of instructions into a contiguous byte image."""
    out = bytearray()
    for instr in instructions:
        out += encode_instruction(instr)
    return bytes(out)


def decode_program(data: bytes) -> List[Instruction]:
    """Decode a contiguous byte image back into instructions."""
    if len(data) % INSTRUCTION_SIZE:
        raise EncodingError(
            f"code image length {len(data)} is not a multiple of "
            f"{INSTRUCTION_SIZE}"
        )
    return [
        decode_instruction(data, offset)
        for offset in range(0, len(data), INSTRUCTION_SIZE)
    ]


def roundtrips(instructions: Iterable[Instruction]) -> bool:
    """Return True if encode→decode reproduces ``instructions`` exactly.

    Used by property-based tests; ``target`` labels are ignored in the
    comparison because the binary format stores resolved addresses only.
    """
    original = list(instructions)
    decoded = decode_program(encode_program(original))
    if len(original) != len(decoded):
        return False
    for a, b in zip(original, decoded):
        if (a.opcode, a.rd, a.rs1, a.rs2, a.imm) != (
            b.opcode,
            b.rd,
            b.rs1,
            b.rs2,
            b.imm,
        ):
            return False
    return True
