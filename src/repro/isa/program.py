"""Program container: instructions + labels + resolved layout.

A :class:`Program` is the unit handed to the CFG builder and to the memory
image.  It owns:

* the ordered instruction list,
* the label table (label name -> instruction index),
* the *layout*: each instruction's byte address in the original
  (uncompressed) image, with branch targets resolved into the encoded
  ``imm`` fields.

Programs are immutable after :meth:`Program.link`; relocation during
simulation is handled by the memory image, never by rewriting the program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence

from .encoding import MAX_CODE_ADDRESS, encode_program
from .instructions import INSTRUCTION_SIZE, Instruction, Opcode


class ProgramError(ValueError):
    """Raised for malformed programs (duplicate/undefined labels, etc.)."""


@dataclass
class Program:
    """An assembled, linked program.

    Use :class:`ProgramBuilder` or :func:`repro.isa.assembler.assemble` to
    construct one; the constructor expects already-consistent data.
    """

    name: str
    instructions: List[Instruction]
    labels: Dict[str, int]
    entry_label: str = "main"

    def __post_init__(self) -> None:
        if self.entry_label not in self.labels:
            raise ProgramError(
                f"program '{self.name}' has no entry label "
                f"'{self.entry_label}'"
            )
        for label, index in self.labels.items():
            if not 0 <= index <= len(self.instructions):
                raise ProgramError(
                    f"label '{label}' points outside the program "
                    f"({index} / {len(self.instructions)})"
                )
        self._resolved = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    @property
    def size_bytes(self) -> int:
        """Size of the uncompressed code image in bytes."""
        return len(self.instructions) * INSTRUCTION_SIZE

    @property
    def entry_index(self) -> int:
        """Instruction index of the entry point."""
        return self.labels[self.entry_label]

    def address_of_index(self, index: int) -> int:
        """Byte address of instruction ``index`` in the uncompressed image."""
        return index * INSTRUCTION_SIZE

    def index_of_address(self, address: int) -> int:
        """Instruction index corresponding to byte ``address``."""
        if address % INSTRUCTION_SIZE:
            raise ProgramError(f"misaligned code address {address:#x}")
        index = address // INSTRUCTION_SIZE
        if not 0 <= index < len(self.instructions):
            raise ProgramError(f"code address {address:#x} out of range")
        return index

    def label_at(self, index: int) -> Optional[str]:
        """Return a label defined at instruction ``index``, if any."""
        for label, label_index in self.labels.items():
            if label_index == index:
                return label
        return None

    # ------------------------------------------------------------------
    # Linking
    # ------------------------------------------------------------------

    def link(self) -> "Program":
        """Resolve every branch target label into a byte address.

        Returns ``self`` for chaining.  Idempotent.
        """
        if self._resolved:
            return self
        resolved: List[Instruction] = []
        for position, instr in enumerate(self.instructions):
            if instr.is_branch and instr.target is not None:
                if instr.target not in self.labels:
                    raise ProgramError(
                        f"undefined label '{instr.target}' referenced by "
                        f"instruction {position} ('{instr.render()}') in "
                        f"program '{self.name}'"
                    )
                address = self.address_of_index(self.labels[instr.target])
                if address > MAX_CODE_ADDRESS:
                    raise ProgramError(
                        f"program '{self.name}' too large: label "
                        f"'{instr.target}' at {address:#x} exceeds the "
                        f"16-bit branch range"
                    )
                resolved.append(instr.with_imm(address))
            else:
                resolved.append(instr)
        self.instructions = resolved
        self._resolved = True
        return self

    @property
    def is_linked(self) -> bool:
        """True once :meth:`link` has run."""
        return self._resolved

    def encode(self) -> bytes:
        """Encode the linked program into its binary image."""
        if not self._resolved:
            raise ProgramError(
                f"program '{self.name}' must be linked before encoding"
            )
        return encode_program(self.instructions)

    def disassemble(self) -> str:
        """Return a printable listing with labels and addresses."""
        index_to_label: Dict[int, List[str]] = {}
        for label, index in self.labels.items():
            index_to_label.setdefault(index, []).append(label)
        lines: List[str] = []
        for index, instr in enumerate(self.instructions):
            for label in sorted(index_to_label.get(index, ())):
                lines.append(f"{label}:")
            address = self.address_of_index(index)
            lines.append(f"  {address:#06x}  {instr.render()}")
        return "\n".join(lines)


class ProgramBuilder:
    """Incremental builder used by hand-written kernels and generators.

    Example::

        b = ProgramBuilder("count")
        b.label("main")
        b.emit(li(1, 10))
        b.label("loop")
        b.emit(subi(1, 1, 1))
        b.emit(bne(1, 0, "loop"))
        b.emit(halt())
        program = b.build()
    """

    def __init__(self, name: str, entry_label: str = "main") -> None:
        self.name = name
        self.entry_label = entry_label
        self._instructions: List[Instruction] = []
        self._labels: Dict[str, int] = {}
        self._fresh = 0

    def label(self, name: str) -> "ProgramBuilder":
        """Define ``name`` at the current position."""
        if name in self._labels:
            raise ProgramError(
                f"duplicate label '{name}' in program '{self.name}'"
            )
        self._labels[name] = len(self._instructions)
        return self

    def fresh_label(self, hint: str = "L") -> str:
        """Return a unique, not-yet-defined label name."""
        while True:
            name = f".{hint}{self._fresh}"
            self._fresh += 1
            if name not in self._labels:
                return name

    def emit(self, *instructions: Instruction) -> "ProgramBuilder":
        """Append one or more instructions."""
        self._instructions.extend(instructions)
        return self

    @property
    def position(self) -> int:
        """Index the next emitted instruction will occupy."""
        return len(self._instructions)

    def build(self, link: bool = True) -> Program:
        """Finalize into a :class:`Program` (linked by default)."""
        if not self._instructions:
            raise ProgramError(f"program '{self.name}' is empty")
        if self._instructions[-1].opcode not in (Opcode.HALT, Opcode.JMP,
                                                 Opcode.RET):
            raise ProgramError(
                f"program '{self.name}' must end with HALT, JMP or RET "
                f"(found '{self._instructions[-1].render()}')"
            )
        program = Program(
            name=self.name,
            instructions=list(self._instructions),
            labels=dict(self._labels),
            entry_label=self.entry_label,
        )
        return program.link() if link else program
