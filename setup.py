"""Setup shim.

The project metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` works on environments without the ``wheel`` package
(pip falls back to the legacy ``setup.py develop`` editable path).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    description=(
        "Access pattern-based code compression for memory-constrained "
        "embedded systems (DATE 2005 reproduction)"
    ),
    python_requires=">=3.9",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
)
