"""E7 — next-block predictor ablation for pre-decompress-single
(paper Section 4: "we predict the block... most likely to be reached").

Compares the predictor family on accuracy (fraction of pre-decompressed
blocks actually used within the kd window) and on the resulting overhead.
The static profile predictor is trained on a profiling run of the same
program (classic profile-guided setup).

Shape checks: accuracies are valid fractions; profile-guided prediction
is competitive (suite mean accuracy >= 30%); every predictor preserves
semantics (enforced by the sweep's oracle validation).
"""

from __future__ import annotations

from conftest import record_experiment

from repro import api
from repro.analysis import Table, mean, percent
from repro.cfg import build_cfg, profile_from_trace
from repro.core import SimulationConfig

PREDICTORS = ("online-profile", "last-successor", "markov")


def _offline_profile(cfg):
    """Train an edge profile by running the program once uncompressed."""
    _, result = api.run_instrumented(
        cfg,
        SimulationConfig(decompression="none", trace_events=False,
                         record_trace=True),
    )
    return profile_from_trace(result.block_trace)


def run_experiment(workloads):
    table = Table(
        "E7: predictor ablation (pre-single, kc=16, kd=2)",
        ["workload", "predictor", "accuracy", "overhead",
         "wasted_decompressions", "stall_cycles"],
    )
    accuracies = {name: [] for name in PREDICTORS + ("static-profile",)}
    for workload in workloads:
        cfg = build_cfg(workload.program)
        configs = [
            SimulationConfig(
                decompression="pre-single", k_compress=16,
                k_decompress=2, predictor=predictor,
                trace_events=False, record_trace=False,
            )
            for predictor in PREDICTORS
        ]
        configs.append(
            SimulationConfig(
                decompression="pre-single", k_compress=16,
                k_decompress=2, predictor="static-profile",
                profile=_offline_profile(cfg),
                trace_events=False, record_trace=False,
            )
        )
        for config in configs:
            run = api.run_cell(workload, config, cfg=cfg)
            assert run.ok, run.validation
            r = run.result
            table.add_row(
                workload.name, config.predictor,
                percent(r.counters.prediction_accuracy),
                percent(r.cycle_overhead),
                int(r.counters.wasted_decompressions),
                int(r.counters.stall_cycles),
            )
            accuracies[config.predictor].append(
                r.counters.prediction_accuracy
            )
    return table, accuracies


def test_e7_predictors(experiment_suite, benchmark):
    table, accuracies = run_experiment(experiment_suite)
    means = {name: mean(values) for name, values in accuracies.items()}
    table.add_note(
        "suite mean accuracy: "
        + ", ".join(f"{n}={v:.2f}" for n, v in sorted(means.items()))
    )
    for name, values in accuracies.items():
        assert all(0.0 <= v <= 1.0 for v in values), name
    # Profile-guided prediction must be genuinely informative.
    assert means["static-profile"] >= 0.3
    assert means["online-profile"] >= 0.3

    record_experiment("e7_predictors", table.render())

    workload = experiment_suite[3]  # fsm
    cfg = build_cfg(workload.program)
    benchmark.pedantic(
        lambda: api.run_cell(
            workload,
            SimulationConfig(
                decompression="pre-single", k_compress=16,
                k_decompress=2, trace_events=False, record_trace=False,
            ),
            cfg=cfg,
        ),
        rounds=1, iterations=1,
    )
