"""E4 — codec ablation (the paper leaves the compressor open; Section 5's
related systems use Huffman/CodePack and dictionary schemes).

For every workload and codec this reports (a) the static compressed-image
ratio and (b) the dynamic cycle overhead under the default strategy, so
the ratio/latency trade-off between codec families is visible.

Shape checks:

* the shared-model codecs beat their self-contained counterparts at basic
  block granularity (the motivation for CodePack-style global tables);
* RLE has the lowest modelled decompression latency (it anchors the fast
  end), Huffman-family the highest ratio cost on latency.
"""

from __future__ import annotations

from conftest import record_experiment

from repro import api
from repro.analysis import Table, mean, percent
from repro.cfg import build_cfg
from repro.compress import compare_codecs, get_codec
from repro.core import SimulationConfig

CODECS = (
    "shared-dict", "shared-fields", "shared-huffman",
    "dictionary", "huffman", "lzw", "lz77", "rle", "mtf-rle",
)

#: Codecs simulated dynamically (static ratios are reported for all).
DYNAMIC_CODECS = ("shared-dict", "shared-fields", "lzw", "rle")


def run_experiment(workloads):
    table = Table(
        "E4: codec ablation (static ratio + dynamic overhead, kc=16)",
        ["workload", "codec", "ratio", "saving", "dyn_overhead"],
    )
    ratios = {codec: [] for codec in CODECS}
    # One grid over the simulated codecs, via the repro.api facade.
    dynamic = api.run_grid(
        workloads,
        [
            SimulationConfig(
                codec=codec, decompression="ondemand", k_compress=16,
                trace_events=False, record_trace=False,
            )
            for codec in DYNAMIC_CODECS
        ],
    )
    for workload in workloads:
        cfg = build_cfg(workload.program)
        stats = compare_codecs(cfg.blocks, CODECS)
        overheads = {
            run.config.codec: percent(run.result.cycle_overhead)
            for run in dynamic.by_workload(workload.name)
        }
        for codec in CODECS:
            ratio = stats[codec].ratio
            ratios[codec].append(ratio)
            table.add_row(
                workload.name, codec, ratio,
                percent(stats[codec].space_saving),
                overheads.get(codec, "-"),
            )
    return table, ratios


def test_e4_codec_ablation(experiment_suite, benchmark):
    table, ratios = run_experiment(experiment_suite)
    mean_ratio = {codec: mean(values) for codec, values in ratios.items()}
    table.add_note(
        "suite mean ratios: "
        + ", ".join(f"{c}={r:.3f}" for c, r in sorted(mean_ratio.items()))
    )

    # Shared models beat per-block self-contained payloads on average.
    assert mean_ratio["shared-dict"] < mean_ratio["dictionary"]
    assert mean_ratio["shared-huffman"] < mean_ratio["huffman"]
    # The latency ordering of the cost model.
    assert get_codec("rle").costs.decompress_cycles_per_byte <= \
        get_codec("shared-dict").costs.decompress_cycles_per_byte
    assert get_codec("shared-huffman").costs.decompress_cycles_per_byte \
        >= get_codec("shared-dict").costs.decompress_cycles_per_byte

    record_experiment("e4_codec_ablation", table.render())

    cfg = build_cfg(experiment_suite[0].program)
    benchmark.pedantic(
        lambda: compare_codecs(cfg.blocks, ("shared-dict",)),
        rounds=1, iterations=1,
    )
