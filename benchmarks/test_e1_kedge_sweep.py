"""E1 — the k-edge compression trade-off (paper Section 3, Figure 1).

Sweeps the compression-side k under on-demand decompression and reports,
per workload, memory saving (peak and time-average vs. the uncompressed
image) and cycle overhead.

Paper's qualitative claims checked here:

* small k -> aggressive compression: most memory saved, highest overhead;
* large k -> delayed compression: less memory saved, lower overhead;
* both trends are monotone in k.
"""

from __future__ import annotations

from conftest import record_experiment

from repro.analysis import Series, Table, percent, sweep
from repro.core import SimulationConfig

K_VALUES = (1, 2, 4, 8, 16, 32, None)


def _config(k):
    return SimulationConfig(
        codec="shared-dict", decompression="ondemand", k_compress=k
    )


def run_experiment(workloads):
    # Shared-artifact trace engine: one interpreted run per workload,
    # the other k points replay its trace (identical metrics, much
    # faster — see repro.analysis.sweep).
    result = sweep(workloads, [_config(k) for k in K_VALUES],
                   engine="trace")
    assert not result.failures(), [
        run.validation for run in result.failures()
    ]

    table = Table(
        "E1: k-edge sweep (on-demand decompression, shared-dict)",
        ["workload", "k", "avg_saving", "peak_saving", "overhead",
         "faults", "recompressions"],
    )
    series = {}
    for name in result.workloads():
        mem = Series(name, "k", "avg_saving")
        ovh = Series(name, "k", "overhead")
        for run in result.by_workload(name):
            r = run.result
            k_label = "inf" if run.config.k_compress is None \
                else run.config.k_compress
            table.add_row(
                name, k_label,
                percent(r.average_saving), percent(r.peak_saving),
                percent(r.cycle_overhead),
                int(r.counters.faults), int(r.counters.recompressions),
            )
            x = 64 if run.config.k_compress is None \
                else run.config.k_compress
            mem.add(x, r.average_saving)
            ovh.add(x, r.cycle_overhead)
        series[name] = (mem, ovh)
    return table, series


def test_e1_kedge_sweep(experiment_suite, benchmark):
    table, series = run_experiment(experiment_suite)
    lines = [table.render(), ""]
    for name, (mem, ovh) in series.items():
        lines.append(mem.render())
        lines.append(ovh.render())
        # Section 3 shape: memory saving falls as k grows, overhead falls
        # as k grows (small numeric jitter tolerated).
        assert mem.is_monotone_nonincreasing(tolerance=0.02), name
        assert ovh.is_monotone_nonincreasing(tolerance=0.05), name
    record_experiment("e1_kedge_sweep", "\n".join(lines))

    # timing anchor: one representative simulation
    workload = experiment_suite[1]  # cold_paths
    benchmark.pedantic(
        lambda: sweep([workload], [_config(4)]), rounds=1, iterations=1
    )
