"""E1 — the k-edge compression trade-off (paper Section 3, Figure 1).

Sweeps the compression-side k under on-demand decompression and reports,
per workload, memory saving (peak and time-average vs. the uncompressed
image) and cycle overhead.

Paper's qualitative claims checked here:

* small k -> aggressive compression: most memory saved, highest overhead;
* large k -> delayed compression: less memory saved, lower overhead;
* both trends are monotone in k.
"""

from __future__ import annotations

from conftest import record_experiment

from repro import api
from repro.analysis import Table, percent
from repro.core import SimulationConfig

K_VALUES = (1, 2, 4, 8, 16, 32, None)


def _config(k):
    return SimulationConfig(
        codec="shared-dict", decompression="ondemand", k_compress=k
    )


def run_experiment(workloads):
    # Shared-artifact trace engine via the repro.api facade: one
    # interpreted run per workload, the other k points replay its trace
    # (identical metrics, much faster — see repro.analysis.sweep).
    result = api.run_grid(workloads, [_config(k) for k in K_VALUES],
                          engine="trace")
    assert not result.failures(), [
        run.validation for run in result.failures()
    ]

    table = Table(
        "E1: k-edge sweep (on-demand decompression, shared-dict)",
        ["workload", "k", "avg_saving", "peak_saving", "overhead",
         "faults", "recompressions"],
    )
    for run in result.runs:
        r = run.result
        k_label = "inf" if run.config.k_compress is None \
            else run.config.k_compress
        table.add_row(
            run.workload, k_label,
            percent(r.average_saving), percent(r.peak_saving),
            percent(r.cycle_overhead),
            int(r.counters.faults), int(r.counters.recompressions),
        )
    x_of = lambda k: 64 if k is None else k  # noqa: E731
    mem_series = result.series(x="k_compress", y="average_saving",
                               x_transform=x_of)
    ovh_series = result.series(x="k_compress", y="cycle_overhead",
                               x_transform=x_of)
    series = {}
    for name in result.workloads():
        mem, ovh = mem_series[name], ovh_series[name]
        mem.x_name, mem.y_name = "k", "avg_saving"
        ovh.x_name, ovh.y_name = "k", "overhead"
        series[name] = (mem, ovh)
    return table, series


def test_e1_kedge_sweep(experiment_suite, benchmark):
    table, series = run_experiment(experiment_suite)
    lines = [table.render(), ""]
    for name, (mem, ovh) in series.items():
        lines.append(mem.render())
        lines.append(ovh.render())
        # Section 3 shape: memory saving falls as k grows, overhead falls
        # as k grows (small numeric jitter tolerated).
        assert mem.is_monotone_nonincreasing(tolerance=0.02), name
        assert ovh.is_monotone_nonincreasing(tolerance=0.05), name
    record_experiment("e1_kedge_sweep", "\n".join(lines))

    # timing anchor: one representative simulation
    workload = experiment_suite[1]  # cold_paths
    benchmark.pedantic(
        lambda: api.run_grid([workload], [_config(4)]),
        rounds=1, iterations=1,
    )
