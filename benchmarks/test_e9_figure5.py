"""E9 — replay of the paper's Figure 5 walk-through as a benchmark.

Figure 5 traces the memory image through the access pattern
B0, B1, B0, B1, B3 with on-demand decompression and k=2: three
decompression exceptions, a patch-only exception on re-entering B0, a
free branch on re-entering B1, and the deletion of B0' as B3 is entered.

The benchmark regenerates the figure's event sequence (printed to the
results file) and times the scenario.
"""

from __future__ import annotations

from conftest import record_experiment

from repro import api
from repro.cfg import build_cfg
from repro.core import SimulationConfig
from repro.isa import assemble
from repro.runtime import EventKind

_FIGURE5_SOURCE = """
b0:
    addi r1, r1, 1
b1:
    addi r3, r3, 5
    slti r2, r1, 2
    bne  r2, r0, b0
b3:
    addi r4, r4, 7
    halt
"""


def run_scenario():
    program = assemble(_FIGURE5_SOURCE, "figure5", entry_label="b0")
    cfg = build_cfg(program)
    manager, _ = api.run_instrumented(
        cfg,
        SimulationConfig(
            codec="shared-dict", decompression="ondemand", k_compress=2
        ),
    )
    return manager


def test_e9_figure5(benchmark):
    manager = run_scenario()
    by_label = {
        b.label: b.block_id for b in manager.cfg.blocks if b.label
    }
    b0, b1, b3 = by_label["b0"], by_label["b1"], by_label["b3"]

    # The paper's exact access pattern.
    assert manager.block_trace == [b0, b1, b0, b1, b3]
    # Steps (2), (4), (9): three full decompressions, in that order.
    faults = [e.block_id for e in manager.log.of_kind(EventKind.FAULT)]
    assert faults == [b0, b1, b3]
    # Step (9): B0' deleted exactly when B3 is entered.
    recompressed = [
        e.block_id for e in manager.log.of_kind(EventKind.RECOMPRESS)
    ]
    assert recompressed == [b0]

    lines = [
        "Figure 5 scenario event trace "
        "(access pattern B0, B1, B0, B1, B3; k=2):",
        manager.log.render(),
        "",
        f"final footprint: {manager.image.footprint_bytes} B "
        f"(compressed image {manager.image.compressed_image_size} B)",
    ]
    record_experiment("e9_figure5", "\n".join(lines))

    benchmark.pedantic(run_scenario, rounds=3, iterations=1)
