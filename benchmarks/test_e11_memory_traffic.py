"""E11 (extension) — target-memory traffic and energy (paper Section 2).

"The proposed approach also brings reductions in memory access latency
(as we need to read less amount of data from the target memory) as well
as in the energy consumed in bus/memory accesses.  However, a detailed
study of these issues is beyond the scope of this paper."

We do the study the paper deferred.  Three systems are compared on
target-memory bytes read and modelled energy:

* ``stream``   — no front memory: every block entry streams its full
  uncompressed bytes from the target memory;
* ``cached``   — front memory holds decompressed copies, but blocks are
  stored uncompressed (null codec): each materialisation moves full
  block bytes;
* ``compressed`` — the paper's scheme: each materialisation moves the
  *compressed* payload.

Shape checks: compressed < cached < stream on traffic; the
compressed/cached traffic ratio tracks the static compression ratio.
"""

from __future__ import annotations

from conftest import record_experiment

from repro.analysis import EnergyModel, Table, percent
from repro.cfg import build_cfg
from repro.core import SimulationConfig
from repro.core.manager import CodeCompressionManager


def _run(cfg, codec, decompression="ondemand"):
    manager = CodeCompressionManager(
        cfg,
        SimulationConfig(
            codec=codec, decompression=decompression, k_compress=16,
            trace_events=False, record_trace=False,
        ),
    )
    return manager.run()


def run_experiment(workloads):
    model = EnergyModel()
    table = Table(
        "E11: target-memory traffic and energy (kc=16)",
        ["workload", "system", "bytes_read", "traffic_vs_stream",
         "energy_nj"],
    )
    shapes = []
    for workload in workloads:
        cfg = build_cfg(workload.program)
        stream = _run(cfg, "null", decompression="none")
        cached = _run(cfg, "null")
        compressed = _run(cfg, "shared-dict")
        rows = (
            ("stream", stream),
            ("cached-uncompressed", cached),
            ("compressed", compressed),
        )
        for label, result in rows:
            bytes_read = result.counters.target_memory_bytes
            table.add_row(
                workload.name, label, bytes_read,
                percent(1 - bytes_read
                        / max(1, stream.counters.target_memory_bytes)),
                round(model.total_energy(result), 1),
            )
        shapes.append(
            (workload.name,
             stream.counters.target_memory_bytes,
             cached.counters.target_memory_bytes,
             compressed.counters.target_memory_bytes)
        )
    return table, shapes


def test_e11_memory_traffic(small_suite, benchmark):
    table, shapes = run_experiment(small_suite)
    for name, stream, cached, compressed in shapes:
        # the front memory alone removes most re-fetch traffic...
        assert cached < stream, name
        # ...and compression removes a further, ratio-sized slice
        assert compressed < cached, name
    record_experiment("e11_memory_traffic", table.render())

    cfg = build_cfg(small_suite[0].program)
    benchmark.pedantic(
        lambda: _run(cfg, "shared-dict"), rounds=1, iterations=1
    )
