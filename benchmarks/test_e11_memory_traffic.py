"""E11 (extension) — target-memory traffic and energy (paper Section 2).

"The proposed approach also brings reductions in memory access latency
(as we need to read less amount of data from the target memory) as well
as in the energy consumed in bus/memory accesses.  However, a detailed
study of these issues is beyond the scope of this paper."

We do the study the paper deferred.  Three systems are compared on
target-memory bytes read and modelled energy:

* ``stream``   — no front memory: every block entry streams its full
  uncompressed bytes from the target memory;
* ``cached``   — front memory holds decompressed copies, but blocks are
  stored uncompressed (null codec): each materialisation moves full
  block bytes;
* ``compressed`` — the paper's scheme: each materialisation moves the
  *compressed* payload.

Shape checks: compressed < cached < stream on traffic; the
compressed/cached traffic ratio tracks the static compression ratio.
"""

from __future__ import annotations

from conftest import record_experiment

from repro import api
from repro.analysis import EnergyModel, Table, percent
from repro.core import SimulationConfig


def _config(codec, decompression="ondemand"):
    return SimulationConfig(
        codec=codec, decompression=decompression, k_compress=16,
        trace_events=False, record_trace=False,
    )


_CONFIGS = [
    _config("null", decompression="none"),
    _config("null"),
    _config("shared-dict"),
]


def run_experiment(workloads):
    model = EnergyModel()
    grid = api.run_grid(workloads, _CONFIGS)
    table = Table(
        "E11: target-memory traffic and energy (kc=16)",
        ["workload", "system", "bytes_read", "traffic_vs_stream",
         "energy_nj"],
    )
    shapes = []
    for name in grid.workloads():
        stream, cached, compressed = (
            run.result for run in grid.by_workload(name)
        )
        rows = (
            ("stream", stream),
            ("cached-uncompressed", cached),
            ("compressed", compressed),
        )
        for label, result in rows:
            bytes_read = result.counters.target_memory_bytes
            table.add_row(
                name, label, bytes_read,
                percent(1 - bytes_read
                        / max(1, stream.counters.target_memory_bytes)),
                round(model.total_energy(result), 1),
            )
        shapes.append(
            (name,
             stream.counters.target_memory_bytes,
             cached.counters.target_memory_bytes,
             compressed.counters.target_memory_bytes)
        )
    return table, shapes


def test_e11_memory_traffic(small_suite, benchmark):
    table, shapes = run_experiment(small_suite)
    for name, stream, cached, compressed in shapes:
        # the front memory alone removes most re-fetch traffic...
        assert cached < stream, name
        # ...and compression removes a further, ratio-sized slice
        assert compressed < cached, name
    record_experiment("e11_memory_traffic", table.render())

    benchmark.pedantic(
        lambda: api.run_grid([small_suite[0]],
                             [_config("shared-dict")]),
        rounds=1, iterations=1,
    )
