"""E6 — compression granularity comparison (paper Section 6).

Ours (basic-block units) vs. Debray-Evans-style function units, plus the
never-compress and naive always-compressed baselines.

Paper's claim checked here: "we can potentially save more memory space
when, for example, a particular basic block chain within a large function
is repeatedly executed" — on the ``cold_paths`` workload (2 hot arms in a
16-arm function) block granularity must hold a smaller average footprint
than function granularity.
"""

from __future__ import annotations

from conftest import record_experiment

from repro import api
from repro.analysis import Table, percent
from repro.strategies.baselines import (
    block_granularity,
    function_granularity,
    naive_always_compressed,
    uncompressed_baseline,
)

_CONFIGS = [
    uncompressed_baseline(),
    naive_always_compressed(),
    block_granularity(k_compress=8),
    function_granularity(k_compress=8),
]


def run_experiment(workloads):
    result = api.run_grid(workloads, _CONFIGS)
    assert not result.failures()
    table = Table(
        "E6: granularity comparison (shared-dict, on-demand, kc=8)",
        ["workload", "scheme", "avg_footprint", "avg_saving",
         "overhead", "faults"],
    )
    cells = {}
    for name in result.workloads():
        for run in result.by_workload(name):
            r = run.result
            table.add_row(
                name, run.config.label,
                int(r.average_footprint), percent(r.average_saving),
                percent(r.cycle_overhead), int(r.counters.faults),
            )
            cells[(name, run.config.label)] = r
    return table, cells


def test_e6_granularity(experiment_suite, benchmark):
    table, cells = run_experiment(experiment_suite)

    # Section 6 claim on the hot-chain-in-big-function workload.
    assert cells[("cold_paths", "block-ondemand")].average_footprint < \
        cells[("cold_paths", "function-ondemand")].average_footprint

    # Function granularity faults at most as often on the many-small-
    # functions workload (whole functions come in at once).
    assert cells[("modular", "function-ondemand")].counters.faults <= \
        cells[("modular", "block-ondemand")].counters.faults

    # The naive k=1 baseline is the memory-minimal, overhead-maximal
    # corner relative to the paper's operating point.
    for name in ("cold_paths", "composite"):
        assert cells[(name, "naive-k1")].average_footprint <= \
            cells[(name, "block-ondemand")].average_footprint + 1
        assert cells[(name, "naive-k1")].cycle_overhead >= \
            cells[(name, "block-ondemand")].cycle_overhead - 0.01

    # The uncompressed baseline never stalls.
    for name in ("cold_paths", "modular"):
        assert cells[(name, "uncompressed")].cycle_overhead == 0.0

    record_experiment("e6_granularity", table.render())

    benchmark.pedantic(
        lambda: api.run_grid([experiment_suite[2]], [_CONFIGS[3]]),
        rounds=1, iterations=1,
    )
