#!/usr/bin/env python
"""Run the performance microbenchmarks and write ``BENCH_core.json``
at the repository root.

This is a thin, path-independent wrapper around
``python -m repro.cli bench`` (see :mod:`repro.analysis.bench` for what
is measured): it can be invoked from any working directory and always
drops the report next to the repository's top-level files, so the perf
trajectory is comparable PR-over-PR.

Usage::

    python benchmarks/perf/run_bench.py [--smoke] [--no-write]

``--smoke`` is the fast CI mode (smaller corpus, fewer repeats); the
exit code is non-zero when a fast-path output diverges from the seed
implementation.
"""

import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cli import main  # noqa: E402  (path set up above)

if __name__ == "__main__":
    argv = ["bench", *sys.argv[1:]]
    if "--output" not in argv and "--no-write" not in argv:
        argv += ["--output", str(REPO_ROOT / "BENCH_core.json")]
    sys.exit(main(argv))
