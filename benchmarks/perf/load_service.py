#!/usr/bin/env python
"""Load-test the sweep service's cached fast path.

Boots an in-process server on a throwaway store (or targets a running
one via ``--url``), computes one small sweep, then hammers dedup
submits and ``/result`` reads from N client threads over keep-alive
connections.  Reports sustained requests/s; in ``--smoke`` mode the
exit code is non-zero below the 1000 cached-requests/s budget — the
same floor ``bench_service_cached_rps`` guards in ``BENCH_core.json``.

Usage::

    python benchmarks/perf/load_service.py [--smoke]
        [--requests N] [--clients N] [--url http://host:port]
"""

import argparse
import pathlib
import sys
import threading
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.service import ServiceClient  # noqa: E402

RPS_BUDGET = 1000.0

SPEC = {
    "name": "load-service",
    "workloads": ["fib"],
    "base": {"codec": "shared-dict", "decompression": "ondemand"},
    "axes": {"grid": {"k_compress": [1, "inf"]}},
    "engine": "trace",
}


def parse_args(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI mode: fewer requests, nonzero exit below "
             f"{RPS_BUDGET:.0f} req/s",
    )
    parser.add_argument(
        "--requests", type=int, default=None, metavar="N",
        help="total requests across all clients "
             "(default: 600 smoke / 4000 full)",
    )
    parser.add_argument(
        "--clients", type=int, default=4, metavar="N",
        help="concurrent client threads (default: 4)",
    )
    parser.add_argument(
        "--url", default=None, metavar="URL",
        help="target a running server (http://host:port) instead of "
             "booting a throwaway one",
    )
    return parser.parse_args(argv)


def hammer(host, port, job_id, requests, errors):
    client = ServiceClient(host, port)
    try:
        for i in range(requests):
            # Alternate the two cached read paths: dedup submit
            # (fingerprint fast path) and result fetch (blob read).
            if i % 2:
                client.result(job_id)
            else:
                reply = client.submit(SPEC)
                if not reply["deduped"]:
                    errors.append("submit was not deduplicated")
    except Exception as exc:  # noqa: BLE001 - report, don't hang
        errors.append(repr(exc))
    finally:
        client.close()


def run(host, port, total_requests, clients):
    warm = ServiceClient(host, port)
    reply = warm.submit(SPEC)
    warm.wait(reply["job"], timeout=300.0)
    job_id = reply["job"]
    warm.close()

    per_client = max(1, total_requests // clients)
    errors = []
    threads = [
        threading.Thread(
            target=hammer, args=(host, port, job_id, per_client, errors)
        )
        for _ in range(clients)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    return per_client * clients, elapsed, errors


def main(argv=None):
    args = parse_args(argv)
    total = args.requests or (600 if args.smoke else 4000)

    if args.url:
        stripped = args.url.rstrip("/").split("//")[-1]
        host, _, port = stripped.partition(":")
        requests, elapsed, errors = run(
            host, int(port or 80), total, args.clients
        )
        root = args.url
    else:
        import shutil
        import tempfile

        from repro.service import ServerThread

        root = tempfile.mkdtemp(prefix="repro-load-service-")
        try:
            with ServerThread(store=root) as server:
                requests, elapsed, errors = run(
                    server.host, server.port, total, args.clients
                )
        finally:
            shutil.rmtree(root, ignore_errors=True)

    rps = requests / elapsed if elapsed else float("inf")
    print(f"service load @ {root}: {requests} cached requests over "
          f"{args.clients} client(s) in {elapsed * 1000:.0f} ms "
          f"-> {rps:,.0f} req/s")
    if errors:
        print(f"error: {len(errors)} request failure(s); first: "
              f"{errors[0]}", file=sys.stderr)
        return 1
    if args.smoke and rps < RPS_BUDGET:
        print(f"error: {rps:,.0f} req/s is below the "
              f"{RPS_BUDGET:,.0f} req/s cached-path budget",
              file=sys.stderr)
        return 1
    if args.smoke:
        print(f"service load OK (budget >= {RPS_BUDGET:,.0f} req/s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
