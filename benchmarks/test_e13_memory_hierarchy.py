"""E13 (extension) — memory-hierarchy geometries x codecs.

The paper's Section 2 sketches a two-level memory picture (front memory
with the decompressed copies, target memory with the compressed image)
but never varies its geometry.  With the hierarchy now a first-class,
configurable layer (:mod:`repro.memory.hierarchy`), this experiment
sweeps the registered presets against two codecs and measures what the
geometry does to target-memory traffic, run time, and modelled energy:

* ``flat``          — the seed cost model: un-timed exact-byte reads;
* ``spm-front``     — scratchpad front over word-wide flash (burst 4 B,
  8-cycle access, 2 nJ/B);
* ``two-level-dram`` — cache front over burst-oriented DRAM (burst
  32 B, 40-cycle access): small compressed payloads over-fetch badly.

Shape checks: burst rounding strictly inflates target traffic with
burst size; non-flat targets add stall cycles; per-preset energy
numbers all differ.
"""

from __future__ import annotations

from conftest import record_experiment

from repro import api
from repro.analysis import EnergyModel, Table
from repro.core import SimulationConfig

_HIERARCHIES = ("flat", "spm-front", "two-level-dram")
_CODECS = ("shared-dict", "lzw")


def _config(hierarchy, codec):
    return SimulationConfig(
        codec=codec, decompression="ondemand", k_compress=16,
        hierarchy=hierarchy, trace_events=False, record_trace=False,
    )


_CONFIGS = [
    _config(hierarchy, codec)
    for hierarchy in _HIERARCHIES
    for codec in _CODECS
]


def run_experiment(workloads):
    grid = api.run_grid(workloads, _CONFIGS, engine="trace")
    assert not grid.failures()
    table = Table(
        "E13: memory-hierarchy presets x codecs (ondemand, kc=16)",
        ["workload", "hierarchy", "codec", "traffic_B", "total_cycles",
         "energy_nJ"],
    )
    shapes = []
    for name in grid.workloads():
        per_preset = {}
        for run in grid.by_workload(name):
            result = run.result
            hierarchy = run.config.hierarchy
            energy = EnergyModel.for_hierarchy(hierarchy)
            table.add_row(
                name, hierarchy, run.config.codec,
                int(result.counters.target_memory_bytes),
                int(result.total_cycles),
                round(energy.total_energy(result), 1),
            )
            per_preset.setdefault(hierarchy, []).append(
                (result.counters.target_memory_bytes,
                 result.total_cycles,
                 energy.total_energy(result))
            )
        shapes.append((name, per_preset))
    return table, shapes


def test_e13_memory_hierarchy(small_suite, benchmark):
    table, shapes = run_experiment(small_suite)
    for name, per_preset in shapes:
        for i, _codec in enumerate(_CODECS):
            flat_traffic, flat_cycles, flat_energy = \
                per_preset["flat"][i]
            spm_traffic, spm_cycles, spm_energy = \
                per_preset["spm-front"][i]
            dram_traffic, dram_cycles, dram_energy = \
                per_preset["two-level-dram"][i]
            # burst rounding strictly inflates target traffic...
            assert flat_traffic < spm_traffic < dram_traffic, name
            # ...slow targets stall the execution thread...
            assert flat_cycles < spm_cycles, name
            assert flat_cycles < dram_cycles, name
            # ...and every preset prices the same run differently.
            assert len({flat_energy, spm_energy, dram_energy}) == 3, \
                name
    record_experiment("e13_memory_hierarchy", table.render())

    benchmark.pedantic(
        lambda: api.run_grid(
            [small_suite[0]], [_config("spm-front", "shared-dict")]
        ),
        rounds=1, iterations=1,
    )
