"""E5 — memory-budget mode with LRU victims (paper Section 2).

"Check before each basic block decompression whether this decompression
could result in exceeding the maximum allowable memory space consumption,
and if so, compress one of the decompressed basic blocks... One could use
LRU or a similar strategy."

Sweeps the cap (as slack over the compressed image) and reports evictions
and overhead; also compares the three victim-selection policies.

Shape checks: the cap is never exceeded; tighter caps cause at least as
many evictions and at least as much overhead.
"""

from __future__ import annotations

from conftest import record_experiment

from repro import api
from repro.analysis import Table, percent
from repro.cfg import build_cfg
from repro.core import SimulationConfig
from repro.core.manager import CodeCompressionManager

#: Extra slack over the minimum viable budget (two largest blocks must be
#: simultaneously resident: the faulting block plus its protected source).
SLACK_STEPS = (600, 300, 120, 0)


def _slacks(cfg):
    largest = max(block.size_bytes for block in cfg.blocks)
    base = 2 * largest + 16
    return [base + step for step in SLACK_STEPS]


def _run(workload, cfg, budget, eviction="lru"):
    # One validated cell through the repro.api facade.
    return api.run_cell(
        workload,
        SimulationConfig(
            decompression="ondemand", k_compress=None,
            memory_budget=budget, eviction=eviction,
            trace_events=False, record_trace=False,
        ),
        cfg=cfg,
    )


def run_experiment(workloads):
    table = Table(
        "E5: memory budget sweep (k=inf, evictions only, LRU)",
        ["workload", "budget", "slack", "peak", "evictions",
         "overhead"],
    )
    shapes = []
    for workload in workloads:
        cfg = build_cfg(workload.program)
        image_size = CodeCompressionManager(
            cfg, SimulationConfig(trace_events=False)
        ).image.compressed_image_size
        evictions, overheads = [], []
        for slack in _slacks(cfg):
            budget = image_size + slack
            run = _run(workload, cfg, budget)
            assert run.ok, run.validation
            result = run.result
            assert result.peak_footprint <= budget, (
                workload.name, slack
            )
            table.add_row(
                workload.name, budget, slack,
                int(result.peak_footprint),
                int(result.counters.evictions),
                percent(result.cycle_overhead),
            )
            evictions.append(result.counters.evictions)
            overheads.append(result.cycle_overhead)
        shapes.append((workload.name, evictions, overheads))
    return table, shapes


def run_policy_comparison(workload):
    cfg = build_cfg(workload.program)
    image_size = CodeCompressionManager(
        cfg, SimulationConfig(trace_events=False)
    ).image.compressed_image_size
    table = Table(
        "E5b: eviction policy comparison (second-tightest budget)",
        ["policy", "evictions", "overhead"],
    )
    slack = _slacks(cfg)[2]
    for policy in ("lru", "fifo", "largest"):
        result = _run(workload, cfg, image_size + slack,
                      eviction=policy).result
        table.add_row(
            policy, int(result.counters.evictions),
            percent(result.cycle_overhead),
        )
    return table


def test_e5_memory_budget(small_suite, benchmark):
    table, shapes = run_experiment(small_suite)
    for name, evictions, overheads in shapes:
        # tighter budget -> monotonically more evictions
        assert evictions == sorted(evictions), (name, evictions)
        # ...and at least as much overhead at the extremes
        assert overheads[-1] >= overheads[0] - 0.01, (name, overheads)
    policy_table = run_policy_comparison(small_suite[0])
    record_experiment(
        "e5_memory_budget",
        table.render() + "\n\n" + policy_table.render(),
    )

    cfg = build_cfg(small_suite[0].program)
    image_size = CodeCompressionManager(
        cfg, SimulationConfig(trace_events=False)
    ).image.compressed_image_size
    benchmark.pedantic(
        lambda: _run(small_suite[0], cfg, image_size + 300),
        rounds=1, iterations=1,
    )
