"""E3 — pre-decompression timing (paper Section 4, second dimension).

Sweeps the decompression-side k ("when there are at most k edges to be
traversed before it could be reached") for both pre-decompression
strategies.

Paper's qualitative claims checked here:

* decompressing earlier (larger kd) does not increase stall cycles
  (it hides more latency) — checked with tolerance, because very large kd
  also floods the decompression thread and sheds requests;
* earlier decompression keeps at least as many blocks resident
  (pre-decompress-all's footprint grows with kd on the suite mean).
"""

from __future__ import annotations

from conftest import record_experiment

from repro import api
from repro.analysis import Series, Table, mean, percent
from repro.core import SimulationConfig

KD_VALUES = (1, 2, 3, 4)


def _configs(strategy):
    return [
        SimulationConfig(
            decompression=strategy, k_compress=16, k_decompress=kd,
            label=f"{strategy}/kd={kd}",
        )
        for kd in KD_VALUES
    ]


def run_experiment(workloads, strategy):
    result = api.run_grid(workloads, _configs(strategy))
    assert not result.failures()
    table = Table(
        f"E3: pre-decompression distance sweep ({strategy}, kc=16)",
        ["workload", "kd", "stall_cycles", "avg_footprint",
         "overhead", "dropped_prefetches", "wasted"],
    )
    stall_series = {}
    for name in result.workloads():
        series = Series(name, "kd", "stall_cycles")
        for kd, run in zip(KD_VALUES, result.by_workload(name)):
            r = run.result
            table.add_row(
                name, kd, int(r.counters.stall_cycles),
                int(r.average_footprint), percent(r.cycle_overhead),
                int(r.counters.dropped_prefetches),
                int(r.counters.wasted_decompressions),
            )
            series.add(kd, r.counters.stall_cycles)
        stall_series[name] = series
    return table, stall_series


def test_e3_predecomp_timing(experiment_suite, benchmark):
    sections = []
    for strategy in ("pre-all", "pre-single"):
        table, stall_series = run_experiment(experiment_suite, strategy)
        sections.append(table.render())
        # Shape: going from the latest (kd=1) to the earliest (kd=max)
        # pre-decompression must not hurt the suite's mean stalls.
        first = mean(s.ys()[0] for s in stall_series.values())
        last = mean(s.ys()[-1] for s in stall_series.values())
        assert last <= first * 1.05, (strategy, first, last)
    record_experiment("e3_predecomp_timing", "\n\n".join(sections))

    benchmark.pedantic(
        lambda: api.run_grid([experiment_suite[1]],
                             _configs("pre-all")[:1]),
        rounds=1, iterations=1,
    )
