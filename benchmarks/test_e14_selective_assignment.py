"""E14 (extension) — selective compression: per-unit codec assignment.

The paper's selectivity argument (hot code must stay cheap to enter,
cold code should compress hard — Sections 3-4) finally gets its own
sweep axis: :mod:`repro.selection` assigns each compression unit its
own codec, driven by an offline edge profile.  This experiment profiles
each workload once, then sweeps the assignment policies against the
uniform baseline across two memory hierarchies:

* ``uniform``            — today's single global codec;
* ``hotness-threshold``  — top-25% hottest units stay uncompressed
  (zero decompression latency), cold units never store an inflating
  payload;
* ``knapsack``           — cycles-saved maximisation under a
  compressed-size budget equal to the uniform image.

Shape checks (the PR's acceptance claim): under every hierarchy,
``knapsack`` beats uniform on decompression-stall cycles at an equal
or smaller compressed footprint for at least two workloads (it
dominates on all three here), and ``hotness-threshold`` always cuts
stall cycles (trading a slightly larger compressed area for it).
"""

from __future__ import annotations

from conftest import record_experiment

from repro import api
from repro.analysis import Table, percent
from repro.core import SimulationConfig

_POLICIES = ("uniform", "hotness-threshold", "knapsack")
_HIERARCHIES = ("flat", "spm-front")


def _configs(profile):
    return [
        SimulationConfig(
            codec="shared-dict", decompression="ondemand",
            k_compress=2, assignment=policy, hierarchy=hierarchy,
            profile=profile, trace_events=False, record_trace=False,
        )
        for hierarchy in _HIERARCHIES
        for policy in _POLICIES
    ]


def run_experiment(workloads):
    table = Table(
        "E14: codec-assignment policies x hierarchies "
        "(ondemand, shared-dict base, kc=2)",
        ["workload", "hierarchy", "assignment", "compressed_B",
         "stall_cycles", "total_cycles", "overhead"],
    )
    shapes = []
    for workload in workloads:
        profile = api.profile_workload(workload)
        grid = api.run_grid(
            [workload], _configs(profile), engine="trace"
        )
        assert not grid.failures()
        per_hierarchy = {}
        for run in grid.runs:
            result = run.result
            table.add_row(
                workload.name, run.config.hierarchy,
                run.config.assignment, int(result.compressed_size),
                int(result.counters.stall_cycles),
                int(result.total_cycles),
                percent(result.cycle_overhead),
            )
            per_hierarchy.setdefault(run.config.hierarchy, {})[
                run.config.assignment
            ] = result
        shapes.append((workload.name, per_hierarchy))
    return table, shapes


def test_e14_selective_assignment(small_suite, benchmark):
    table, shapes = run_experiment(small_suite)
    knapsack_dominates = 0
    for name, per_hierarchy in shapes:
        dominated_everywhere = True
        for hierarchy, results in per_hierarchy.items():
            uniform = results["uniform"]
            hot = results["hotness-threshold"]
            knapsack = results["knapsack"]
            # The selective image never exceeds the uniform budget...
            assert knapsack.compressed_size <= uniform.compressed_size, \
                (name, hierarchy)
            # ...and uncompressed hot units always cut stall cycles.
            assert hot.counters.stall_cycles \
                < uniform.counters.stall_cycles, (name, hierarchy)
            if not (knapsack.counters.stall_cycles
                    < uniform.counters.stall_cycles):
                dominated_everywhere = False
        if dominated_everywhere:
            knapsack_dominates += 1
    # The acceptance claim: fewer stalls at equal-or-smaller footprint
    # for at least two workloads.
    assert knapsack_dominates >= 2, knapsack_dominates
    record_experiment("e14_selective_assignment", table.render())

    profile = api.profile_workload(small_suite[0])
    benchmark.pedantic(
        lambda: api.run_grid(
            [small_suite[0]],
            [SimulationConfig(
                codec="shared-dict", decompression="ondemand",
                k_compress=2, assignment="knapsack", profile=profile,
                trace_events=False, record_trace=False,
            )],
        ),
        rounds=1, iterations=1,
    )
