"""E10 — three-thread cooperation (paper Figure 4, Section 3).

"The compression thread utilizes the idle cycles of the execution thread
to perform compressions" and the decompression thread runs ahead of the
execution thread.  This experiment quantifies the overlap:

* stall cycles absorbed by moving decompression to the background thread
  (on-demand vs. pre-all at the same k);
* the cost of sharing the core: contention factor sweep from a free
  second core (0.0) to fully serialised (1.0).

Shape checks: background decompression absorbs stalls; total cycles grow
monotonically with contention.
"""

from __future__ import annotations

from conftest import record_experiment

from repro import api
from repro.analysis import Series, Table, percent
from repro.core import SimulationConfig

CONTENTIONS = (0.0, 0.25, 0.5, 1.0)


def _config(decompression, contention=0.0):
    return SimulationConfig(
        decompression=decompression, k_compress=16, k_decompress=3,
        contention=contention,
        trace_events=False, record_trace=False,
    )


def run_experiment(workloads):
    grid = api.run_grid(
        workloads, [_config("ondemand"), _config("pre-all")]
    )
    table = Table(
        "E10: thread overlap (kc=16, kd=3)",
        ["workload", "mode", "stall_cycles", "bg_decompress_cycles",
         "total_cycles", "overhead"],
    )
    absorbed = {}
    for name in grid.workloads():
        ondemand, preall = (run.result for run in grid.by_workload(name))
        for label, result in (("sync (on-demand)", ondemand),
                              ("background (pre-all)", preall)):
            table.add_row(
                name, label,
                int(result.counters.stall_cycles),
                int(result.counters.background_decompress_cycles),
                int(result.total_cycles),
                percent(result.cycle_overhead),
            )
        absorbed[name] = (
            ondemand.counters.stall_cycles,
            preall.counters.stall_cycles,
        )
    return table, absorbed


def run_contention_sweep(workload):
    grid = api.run_grid(
        [workload],
        [_config("pre-all", contention) for contention in CONTENTIONS],
    )
    series = Series(workload.name, "contention", "total_cycles")
    table = Table(
        "E10b: contention sweep (pre-all)",
        ["contention", "total_cycles", "overhead"],
    )
    for contention, run in zip(CONTENTIONS, grid.runs):
        result = run.result
        series.add(contention, result.total_cycles)
        table.add_row(
            contention, int(result.total_cycles),
            percent(result.cycle_overhead),
        )
    return table, series


def test_e10_thread_overlap(small_suite, benchmark):
    table, absorbed = run_experiment(small_suite)
    # Background decompression absorbs stall cycles on the suite.
    assert sum(pre for _, pre in absorbed.values()) < \
        sum(on for on, _ in absorbed.values())

    contention_table, series = run_contention_sweep(small_suite[0])
    assert series.is_monotone_nondecreasing()

    record_experiment(
        "e10_thread_overlap",
        table.render() + "\n\n" + contention_table.render() + "\n"
        + series.render(),
    )

    benchmark.pedantic(
        lambda: api.run_grid([small_suite[0]], [_config("pre-all")]),
        rounds=1, iterations=1,
    )
