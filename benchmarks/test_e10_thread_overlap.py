"""E10 — three-thread cooperation (paper Figure 4, Section 3).

"The compression thread utilizes the idle cycles of the execution thread
to perform compressions" and the decompression thread runs ahead of the
execution thread.  This experiment quantifies the overlap:

* stall cycles absorbed by moving decompression to the background thread
  (on-demand vs. pre-all at the same k);
* the cost of sharing the core: contention factor sweep from a free
  second core (0.0) to fully serialised (1.0).

Shape checks: background decompression absorbs stalls; total cycles grow
monotonically with contention.
"""

from __future__ import annotations

from conftest import record_experiment

from repro.analysis import Series, Table, percent
from repro.cfg import build_cfg
from repro.core import SimulationConfig
from repro.core.manager import CodeCompressionManager

CONTENTIONS = (0.0, 0.25, 0.5, 1.0)


def _run(cfg, decompression, contention=0.0):
    manager = CodeCompressionManager(
        cfg,
        SimulationConfig(
            decompression=decompression, k_compress=16, k_decompress=3,
            contention=contention,
            trace_events=False, record_trace=False,
        ),
    )
    return manager.run()


def run_experiment(workloads):
    table = Table(
        "E10: thread overlap (kc=16, kd=3)",
        ["workload", "mode", "stall_cycles", "bg_decompress_cycles",
         "total_cycles", "overhead"],
    )
    absorbed = {}
    for workload in workloads:
        cfg = build_cfg(workload.program)
        ondemand = _run(cfg, "ondemand")
        preall = _run(cfg, "pre-all")
        for label, result in (("sync (on-demand)", ondemand),
                              ("background (pre-all)", preall)):
            table.add_row(
                workload.name, label,
                int(result.counters.stall_cycles),
                int(result.counters.background_decompress_cycles),
                int(result.total_cycles),
                percent(result.cycle_overhead),
            )
        absorbed[workload.name] = (
            ondemand.counters.stall_cycles,
            preall.counters.stall_cycles,
        )
    return table, absorbed


def run_contention_sweep(workload):
    cfg = build_cfg(workload.program)
    series = Series(workload.name, "contention", "total_cycles")
    table = Table(
        "E10b: contention sweep (pre-all)",
        ["contention", "total_cycles", "overhead"],
    )
    for contention in CONTENTIONS:
        result = _run(cfg, "pre-all", contention)
        series.add(contention, result.total_cycles)
        table.add_row(
            contention, int(result.total_cycles),
            percent(result.cycle_overhead),
        )
    return table, series


def test_e10_thread_overlap(small_suite, benchmark):
    table, absorbed = run_experiment(small_suite)
    # Background decompression absorbs stall cycles on the suite.
    assert sum(pre for _, pre in absorbed.values()) < \
        sum(on for on, _ in absorbed.values())

    contention_table, series = run_contention_sweep(small_suite[0])
    assert series.is_monotone_nondecreasing()

    record_experiment(
        "e10_thread_overlap",
        table.render() + "\n\n" + contention_table.render() + "\n"
        + series.render(),
    )

    cfg = build_cfg(small_suite[0].program)
    benchmark.pedantic(
        lambda: _run(cfg, "pre-all"), rounds=1, iterations=1
    )
