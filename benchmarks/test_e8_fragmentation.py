"""E8 — fragmentation: the paper's separate-area scheme vs. in-place
(paper Section 5's design rationale).

"An excessively fragmented free space either cannot be used for
allocating large objects or requires memory compaction... our current
implementation [keeps] the compressed versions as they are... the memory
space is not fragmented too much as the locations of the compressed
blocks do not change during execution."

We run the same workload/strategy on both image schemes and compare block
relocations, compactions, hole counts, and consumed address space.

Shape checks: the separate scheme relocates nothing and needs no
compaction; the in-place scheme relocates blocks (each relocation means
branch patching the separate scheme avoids).
"""

from __future__ import annotations

from conftest import record_experiment

from repro import api
from repro.analysis import Table, percent
from repro.cfg import build_cfg
from repro.core import SimulationConfig


def _run(cfg, scheme):
    # The live manager is needed for image introspection — the
    # instrumented entry point of the repro.api facade.
    return api.run_instrumented(
        cfg,
        SimulationConfig(
            decompression="ondemand", k_compress=2, image_scheme=scheme,
            trace_events=False, record_trace=False,
        ),
    )


def run_experiment(workloads):
    table = Table(
        "E8: image scheme comparison (on-demand, kc=2, shared-dict)",
        ["workload", "scheme", "relocations", "compactions",
         "holes", "address_space", "overhead"],
    )
    rows = {}
    for workload in workloads:
        cfg = build_cfg(workload.program)
        for scheme in ("separate", "inplace"):
            manager, result = _run(cfg, scheme)
            assert workload.validate(manager.machine) == []
            image = manager.image
            relocations = getattr(image, "relocations", 0)
            compactions = getattr(image, "compactions", 0)
            table.add_row(
                workload.name, scheme, relocations, compactions,
                image.allocator.hole_count, image.address_space_bytes,
                percent(result.cycle_overhead),
            )
            rows[(workload.name, scheme)] = (relocations, compactions,
                                             image)
    return table, rows


def test_e8_fragmentation(small_suite, benchmark):
    table, rows = run_experiment(small_suite)
    for workload in {name for name, _ in rows}:
        separate_relocs, _, _ = rows[(workload, "separate")]
        inplace_relocs, _, _ = rows[(workload, "inplace")]
        # Section 5: compressed block locations never change in the
        # paper's scheme...
        assert separate_relocs == 0
        # ...while the naive scheme shuffles blocks around constantly.
        assert inplace_relocs > 0, workload
    record_experiment("e8_fragmentation", table.render())

    cfg = build_cfg(small_suite[0].program)
    benchmark.pedantic(
        lambda: _run(cfg, "inplace"), rounds=1, iterations=1
    )
