"""E15 (extension) — layered codec pipelines and pipeline-search.

Layered pipelines (:mod:`repro.compress.pipeline`) compose reversible
transform layers — byte delta, move-to-front, stride regrouping, word
dictionaries — in front of any flat entropy codec, so the per-unit
codec space grows from the flat registry to its composition closure.
The ``pipeline-search`` assignment policy explores a curated slice of
that space per compression unit under the same footprint accounting the
``knapsack`` policy uses (payload bytes plus one model per distinct
codec, never exceeding the uniform base image).

This experiment sweeps every flat codec uniformly over the small suite,
then runs ``pipeline-search`` (base ``shared-dict``) on the same
workloads, and asserts the PR's acceptance claim: on at least one suite
workload the searched mixed-pipeline image has a *strictly smaller*
compressed footprint than the best flat codec at equal-or-better
decompression-stall cycles.  (On ``cold_paths`` the winning composition
is ``stride:4|shared-dict`` — regrouping instruction words by byte
position before the shared dictionary.)
"""

from __future__ import annotations

from conftest import record_experiment

from repro import api
from repro.analysis import Table, percent
from repro.cfg import build_cfg
from repro.core import SimulationConfig
from repro.selection import build_assignment

_FLAT_CODECS = (
    "huffman", "lzw", "shared-dict", "shared-fields", "shared-huffman",
)
_FAST = dict(trace_events=False, record_trace=False)


def _flat_configs():
    return [
        SimulationConfig(codec=name, **_FAST) for name in _FLAT_CODECS
    ]


def _search_config(profile):
    return SimulationConfig(
        codec="shared-dict", assignment="pipeline-search",
        profile=profile, **_FAST,
    )


def run_experiment(workloads):
    table = Table(
        "E15: pipeline-search vs uniform flat codecs "
        "(base shared-dict)",
        ["workload", "codec/policy", "compressed_B", "stall_cycles",
         "total_cycles", "overhead"],
    )
    shapes = []
    for workload in workloads:
        grid = api.run_grid([workload], _flat_configs(), engine="trace")
        assert not grid.failures()
        flats = {
            run.config.codec: run.result for run in grid.runs
        }
        profile = api.profile_workload(workload)
        search_cfg = _search_config(profile)
        searched = api.run_grid(
            [workload], [search_cfg], engine="trace"
        )
        assert not searched.failures()
        search = searched.runs[0].result
        summary = build_assignment(
            build_cfg(workload.program), search_cfg
        ).summary()
        for name in sorted(
            flats, key=lambda n: flats[n].compressed_size
        ):
            result = flats[name]
            table.add_row(
                workload.name, name, int(result.compressed_size),
                int(result.counters.stall_cycles),
                int(result.total_cycles),
                percent(result.cycle_overhead),
            )
        table.add_row(
            workload.name, "pipeline-search",
            int(search.compressed_size),
            int(search.counters.stall_cycles),
            int(search.total_cycles), percent(search.cycle_overhead),
        )
        shapes.append((workload.name, flats, search, summary))
    return table, shapes


def test_e15_pipeline_search(small_suite, benchmark):
    table, shapes = run_experiment(small_suite)
    wins = 0
    for name, flats, search, summary in shapes:
        best_flat = min(
            flats.values(), key=lambda r: r.compressed_size
        )
        # The searched image never exceeds the uniform base image...
        assert search.compressed_size \
            <= flats["shared-dict"].compressed_size, name
        if (search.compressed_size < best_flat.compressed_size
                and search.counters.stall_cycles
                <= best_flat.counters.stall_cycles):
            # ...and a win must come from an actual composition, not
            # just the hot-unit knapsack upgrades.
            assert any("|" in codec for codec in summary), (
                name, summary
            )
            wins += 1
    # The acceptance claim: on at least one suite workload a composed
    # pipeline strictly beats the best flat codec on footprint at
    # equal-or-better stall cycles.
    assert wins >= 1, [s[0] for s in shapes]
    record_experiment("e15_pipeline_search", table.render())

    workload = small_suite[1]  # cold_paths: the winning workload
    profile = api.profile_workload(workload)
    benchmark.pedantic(
        lambda: api.run_grid([workload], [_search_config(profile)]),
        rounds=1, iterations=1,
    )
