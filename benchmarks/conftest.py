"""Shared fixtures and helpers for the experiment benchmarks (E1-E10).

Every experiment module produces a table (and usually a series per
workload), asserts the paper's qualitative *shape* claims, records the
rendered output under ``benchmarks/results/``, and registers one
pytest-benchmark timing anchor so ``pytest benchmarks/ --benchmark-only``
reports a stable per-experiment runtime.

Opt-in cache reuse: every experiment runs through the ``repro.api``
facade, so pointing ``REPRO_STORE_DIR`` at a persistent experiment
store serves previously computed grid cells from disk instead of
re-simulating them::

    REPRO_STORE_DIR=~/.cache/repro-store pytest benchmarks/ -q

The store invalidates by content (code version, program bytes, full
config, engine — see ``repro/store/__init__.py``), so cached cells are
always byte-identical to recomputed ones; leave the variable unset for
cold-run timings.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.cfg import build_cfg
from repro.workloads import (
    GeneratorConfig,
    Workload,
    generate_sized_program,
    get_workload,
)
from repro.runtime.machine import Machine

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Kernels used by the headline experiments: medium-sized, loop- and
#: branch-rich, covering the paper's application shapes.
EXPERIMENT_KERNELS = (
    "composite",
    "cold_paths",
    "modular",
    "fsm",
    "dijkstra",
    "quicksort",
    "adpcm",
    "crc32",
)


def synthetic_workload(seed: int = 7, target_bytes: int = 6000) -> Workload:
    """A large generated application wrapped as a Workload.

    Generated programs have no hand-written oracle; ``check`` accepts any
    final state (transparency is asserted by the differential tests, not
    here).
    """
    program = generate_sized_program(seed=seed, target_bytes=target_bytes)

    def check(machine: Machine):
        return []

    return Workload(
        name=f"synth{target_bytes // 1000}k",
        description=f"generated app (~{program.size_bytes} B)",
        program=program,
        check=check,
    )


@pytest.fixture(scope="session")
def experiment_suite():
    """The kernel suite plus one large synthetic app."""
    workloads = [get_workload(name) for name in EXPERIMENT_KERNELS]
    workloads.append(synthetic_workload())
    return workloads


@pytest.fixture(scope="session")
def small_suite():
    """A cheaper three-workload suite for the expensive sweeps."""
    return [
        get_workload("composite"),
        get_workload("cold_paths"),
        synthetic_workload(target_bytes=4000),
    ]


def record_experiment(name: str, text: str) -> None:
    """Write an experiment's rendered output under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")
