"""E2 — the decompression design space (paper Figure 3, Section 4).

Compares the three decompression strategies at a fixed operating point
(k_compress=16, k_decompress=2) plus the uncompressed reference.

Paper's qualitative claims checked here:

* pre-decompress-all "favors performance over memory space consumption":
  fewest stall cycles, largest footprint of the three;
* pre-decompress-single "favors memory space consumption over
  performance": footprint at most pre-all's, stalls at most on-demand's;
* on-demand is the memory-minimal, stall-maximal corner.
"""

from __future__ import annotations

from conftest import record_experiment

from repro import api
from repro.analysis import Table, mean, percent
from repro.core import SimulationConfig

_CONFIGS = [
    SimulationConfig(decompression="none", codec="null",
                     label="uncompressed"),
    SimulationConfig(decompression="ondemand", k_compress=16,
                     label="on-demand"),
    SimulationConfig(decompression="pre-all", k_compress=16,
                     k_decompress=2, label="pre-all"),
    SimulationConfig(decompression="pre-single", k_compress=16,
                     k_decompress=2, label="pre-single"),
]


def run_experiment(workloads):
    # Trace engine via the repro.api facade: the uncompressed baseline
    # cell records the trace, the three compressed strategies replay it.
    result = api.run_grid(workloads, _CONFIGS, engine="trace")
    assert not result.failures()

    table = Table(
        "E2: decompression design space (kc=16, kd=2, shared-dict)",
        ["workload", "strategy", "avg_footprint", "avg_saving",
         "overhead", "stall_cycles", "decompressions"],
    )
    per_strategy = {c.label: [] for c in _CONFIGS}
    for name in result.workloads():
        for run in result.by_workload(name):
            r = run.result
            table.add_row(
                name, run.config.label,
                int(r.average_footprint), percent(r.average_saving),
                percent(r.cycle_overhead),
                int(r.counters.stall_cycles),
                int(r.counters.decompressions),
            )
            per_strategy[run.config.label].append(r)
    return table, per_strategy


def test_e2_design_space(experiment_suite, benchmark):
    table, per_strategy = run_experiment(experiment_suite)

    # Aggregate shape checks across the suite (paper's Figure 3 claims).
    stalls = {
        label: mean([r.counters.stall_cycles for r in results])
        for label, results in per_strategy.items()
    }
    footprints = {
        label: mean([r.average_footprint for r in results])
        for label, results in per_strategy.items()
    }
    assert stalls["uncompressed"] == 0
    assert stalls["pre-all"] < stalls["on-demand"]
    assert stalls["pre-single"] <= stalls["on-demand"] * 1.02
    assert footprints["pre-single"] <= footprints["pre-all"]
    assert footprints["on-demand"] <= footprints["pre-all"]

    table.add_note(
        f"suite means: stalls {stalls}, footprints "
        f"{ {k: int(v) for k, v in footprints.items()} }"
    )
    record_experiment("e2_design_space", table.render())

    benchmark.pedantic(
        lambda: api.run_grid([experiment_suite[0]], [_CONFIGS[2]]),
        rounds=1, iterations=1,
    )
